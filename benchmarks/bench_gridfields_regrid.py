"""AN-GF — the gridfields restrict/regrid commutation (§2.2).

Howe & Maier show "certain 'restriction' operations ... can commute with
the regrid operator, creating opportunities for optimization".  A fine
CORIE-style field is regridded onto a coarse target and restricted to a
spatial region; the two plan orders run with cell-level cost accounting.
Shape checks: identical results, with the commuted plan aggregating only
the surviving region's share of source cells (cost proportional to the
selectivity).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.gridfields import (
    GridField,
    plans_agree,
    regrid_then_restrict,
    regular_grid_2d,
    restrict_then_regrid,
)


def build_fields(nx: int, factor: int):
    fine = GridField(regular_grid_2d(nx, nx))
    fine.bind_by_function(
        2,
        "salinity",
        lambda cell: float(
            np.sin(cell[0] / 4.0) + np.cos(cell[1] / 3.0)
        ),
    )
    coarse = GridField(regular_grid_2d(nx // factor, nx // factor))
    assignment = lambda cell: (cell[0] // factor, cell[1] // factor)
    return fine, coarse, assignment


def run_experiment():
    rows = []
    savings = {}
    agreement = {}
    for nx, selectivity in ((16, 0.5), (24, 0.25), (32, 0.125)):
        factor = 4
        fine, coarse, assignment = build_fields(nx, factor)
        coarse_nx = nx // factor
        cutoff = max(int(coarse_nx * selectivity), 1)
        predicate = lambda cell, attrs, c=cutoff: cell[0] < c
        naive, naive_cost = regrid_then_restrict(
            fine, coarse, 2, 2, assignment, "salinity", predicate
        )
        pushed, pushed_cost = restrict_then_regrid(
            fine, coarse, 2, 2, assignment, "salinity", predicate
        )
        agreement[nx] = plans_agree(naive, pushed, 2, "salinity")
        ratio = naive_cost.values_aggregated / max(
            pushed_cost.values_aggregated, 1
        )
        savings[nx] = ratio
        rows.append(
            (
                f"{nx}x{nx}",
                selectivity,
                naive_cost.values_aggregated,
                pushed_cost.values_aggregated,
                ratio,
                agreement[nx],
            )
        )
    return rows, savings, agreement


def test_gridfields_regrid(benchmark):
    rows, savings, agreement = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "source grid",
            "selectivity",
            "values aggregated (regrid->restrict)",
            "values aggregated (restrict->regrid)",
            "saving",
            "results equal",
        ],
        rows,
    )
    save_report("AN-GF_gridfields_commutation", table)

    assert all(agreement.values()), "commuted plan must be equivalent"
    # The saving tracks the restriction selectivity: ~2x at 50%,
    # ~8x at 12.5%.
    assert savings[16] > 1.8
    assert savings[32] > 6.0
