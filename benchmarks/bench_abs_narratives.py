"""AN-ABS — the Section 1 agent-based narratives, quantified.

The paper's introduction rests on two classic ABS results: Bonabeau's
claim that behavior rules (accelerate / slow down / dawdle) *generate*
the traffic jams a data-only analysis can only correlate, and
Schelling's segregation model [48] as the root of the field.  Shape
checks: the traffic fundamental diagram has an interior flow peak with
spontaneous jams above the critical density; mild Schelling preferences
produce strong global segregation.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.abs import SchellingModel, fundamental_diagram
from repro.stats import make_rng


def run_experiment():
    densities = np.array([0.04, 0.08, 0.12, 0.2, 0.3, 0.45, 0.65, 0.85])
    diagram = fundamental_diagram(
        densities, ticks=250, warmup=80, length=150, seed=0
    )

    schelling_rows = []
    for tolerance in (0.3, 0.5):
        result = SchellingModel(size=30, tolerance=tolerance).run(
            150, make_rng(1)
        )
        schelling_rows.append(
            (
                tolerance,
                result.segregation_series[0],
                result.final_segregation,
                result.converged,
                result.ticks_run,
            )
        )
    return diagram, schelling_rows


def test_abs_narratives(benchmark):
    diagram, schelling_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = "traffic fundamental diagram (NaSch ring road):\n"
    table += format_table(
        ["density", "flow", "fraction stopped"], diagram
    )
    table += "\n\nSchelling segregation (30x30 torus):\n"
    table += format_table(
        [
            "tolerance",
            "initial like-neighbor frac",
            "final like-neighbor frac",
            "converged",
            "ticks",
        ],
        schelling_rows,
    )
    save_report("AN-ABS_traffic_schelling", table)

    flows = [flow for _, flow, _ in diagram]
    jams = [jam for _, _, jam in diagram]
    peak = int(np.argmax(flows))
    # Interior flow maximum: the signature of jam formation.
    assert 0 < peak < len(flows) - 1
    # Jams grow monotonically-ish with density past the peak.
    assert jams[-1] > jams[0] + 0.3
    # Mild preferences, strong segregation (the Schelling result).
    for _, initial, final, _, _ in schelling_rows:
        assert final > initial + 0.15
        assert initial < 0.6  # started mixed
