"""AN-TB — MCDB tuple bundles vs naive per-iteration execution (§2.1).

MCDB "employs query processing techniques that execute a query plan only
once, processing 'tuple bundles' rather than ordinary tuples".  The same
aggregation query over a stochastic table runs both ways at increasing
Monte Carlo counts.  Shape checks: identical estimates (same seed, same
distribution), with the bundled path's advantage growing with n_mc.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks._util import format_table, save_report
from repro.engine import Database, Schema
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec


def build_mcdb(num_rows: int = 150) -> MonteCarloDatabase:
    db = Database()
    db.create_table("patients", Schema.of(pid=int))
    for i in range(num_rows):
        db.table("patients").insert({"pid": i})
    db.create_table("sbp_param", Schema.of(mean=float, std=float))
    db.table("sbp_param").insert({"mean": 120.0, "std": 10.0})
    mcdb = MonteCarloDatabase(db, seed=3)
    mcdb.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters="SELECT mean, std FROM sbp_param",
            select={"pid": "outer.pid", "sbp": "vg.value"},
        )
    )
    return mcdb


def naive_query(instance):
    return instance.sql(
        "SELECT AVG(sbp) AS m FROM sbp_data WHERE sbp > 110"
    )[0]["m"]


def bundled_query(bundles, _db):
    return (
        bundles["sbp_data"]
        .filter(lambda row: row["sbp"] > 110.0)
        .aggregate_avg("sbp")
    )


def run_experiment():
    mcdb = build_mcdb()
    rows = []
    speedups = {}
    for n_mc in (10, 50, 200):
        start = time.perf_counter()
        naive = mcdb.run_naive(naive_query, n_mc)
        naive_time = time.perf_counter() - start
        start = time.perf_counter()
        bundled = mcdb.run_bundled(bundled_query, n_mc)
        bundled_time = time.perf_counter() - start
        speedup = naive_time / bundled_time
        speedups[n_mc] = speedup
        rows.append(
            (
                n_mc,
                naive.expectation(),
                bundled.expectation(),
                naive_time,
                bundled_time,
                speedup,
            )
        )
    return rows, speedups


def test_mcdb_tuple_bundles(benchmark):
    rows, speedups = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        [
            "n_mc",
            "E[Y] naive",
            "E[Y] bundled",
            "naive s",
            "bundled s",
            "speedup",
        ],
        rows,
    )
    save_report("AN-TB_mcdb_tuple_bundles", table)

    # Same distribution: expectations agree.
    for row in rows:
        assert row[1] == pytest.approx(row[2], abs=1.0)
    # Bundles win, and the win grows with the Monte Carlo count.
    assert speedups[200] > 5.0
    assert speedups[200] > speedups[10]
