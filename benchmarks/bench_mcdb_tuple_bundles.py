"""AN-TB — MCDB tuple bundles vs naive per-iteration execution (§2.1).

MCDB "employs query processing techniques that execute a query plan only
once, processing 'tuple bundles' rather than ordinary tuples".  The same
aggregation query over a stochastic table runs both ways at increasing
Monte Carlo counts.  Shape checks: identical estimates (same seed, same
distribution), with the bundled path's advantage growing with n_mc.

The naive path's Monte Carlo iterations are independent, so they run
through the configured :mod:`repro.parallel` backend (``--bench-backend``
/ ``REPRO_BENCH_BACKEND``); ``--quick`` shrinks table and iteration
counts for CI.
"""

from __future__ import annotations

import pytest

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
from repro.engine import Database, Schema
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec


def build_mcdb(num_rows: int = 150) -> MonteCarloDatabase:
    db = Database()
    db.create_table("patients", Schema.of(pid=int))
    for i in range(num_rows):
        db.table("patients").insert({"pid": i})
    db.create_table("sbp_param", Schema.of(mean=float, std=float))
    db.table("sbp_param").insert({"mean": 120.0, "std": 10.0})
    mcdb = MonteCarloDatabase(db, seed=3)
    mcdb.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters="SELECT mean, std FROM sbp_param",
            select={"pid": "outer.pid", "sbp": "vg.value"},
        )
    )
    return mcdb


def naive_query(instance):
    return instance.sql(
        "SELECT AVG(sbp) AS m FROM sbp_data WHERE sbp > 110"
    )[0]["m"]


def bundled_query(bundles, _db):
    return (
        bundles["sbp_data"]
        .filter(lambda row: row["sbp"] > 110.0)
        .aggregate_avg("sbp")
    )


def run_experiment(config: BenchConfig = BenchConfig()):
    num_rows = 40 if config.quick else 150
    mc_counts = (5, 20) if config.quick else (10, 50, 200)
    backend = None if config.backend == "serial" else config.backend
    mcdb = build_mcdb(num_rows)
    rows = []
    speedups = {}
    for n_mc in mc_counts:
        naive, naive_time = timed(
            mcdb.run_naive, naive_query, n_mc, backend=backend
        )
        bundled, bundled_time = timed(mcdb.run_bundled, bundled_query, n_mc)
        speedup = naive_time / bundled_time
        speedups[n_mc] = speedup
        rows.append(
            (
                n_mc,
                naive.expectation(),
                bundled.expectation(),
                naive_time,
                bundled_time,
                speedup,
            )
        )
    return rows, speedups


def test_mcdb_tuple_bundles(benchmark, bench_config):
    rows, speedups = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = [
        "n_mc",
        "E[Y] naive",
        "E[Y] bundled",
        "naive s",
        "bundled s",
        "speedup",
    ]
    save_report("AN-TB_mcdb_tuple_bundles", format_table(headers, rows))
    save_json(
        "AN-TB_mcdb_tuple_bundles",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
        },
    )

    # Same distribution: expectations agree.
    for row in rows:
        assert row[1] == pytest.approx(row[2], abs=1.0)
    # Bundles win, and the win grows with the Monte Carlo count.
    largest = max(speedups)
    smallest = min(speedups)
    assert speedups[largest] > (2.0 if bench_config.quick else 5.0)
    assert speedups[largest] > speedups[smallest]
