"""BENCH_delta — invalidation cones under single-factor perturbation.

The headline claim of the :mod:`repro.delta` subsystem: perturbing one
factor of a thousands-of-node DoE sweep recomputes **under 5%** of the
nodes, with every reused node's ``result_fingerprint`` byte-identical
to the cold run, on every :mod:`repro.parallel` backend.  This
benchmark records that claim as numbers:

* ``nodes_total`` / ``nodes_recomputed`` / ``recompute_fraction`` —
  the exact cone :func:`repro.delta.plan_delta` derived (must be the
  perturbed nodes only, i.e. fraction < 0.05);
* ``cold_seconds`` vs ``delta_seconds`` — materializing the sweep from
  scratch vs bringing it current after the perturbation;
* ``speedup`` — the incremental-recomputation factor;
* ``reused_identical`` — every reused node fingerprint-matches the
  cold run (the byte-identity acceptance bar).

Each backend gets its own *copy* of the cold store, so the first delta
execution cannot warm the store for the next backend and every row
measures the same perturbation against the same baseline.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
import repro.ensemble.scenarios  # noqa: F401 — registers response.surface
from repro.delta import execute_plan, perturb, plan_delta
from repro.ensemble import Ensemble, RunStore, result_fingerprint, run_ensemble

BACKENDS = ("serial", "thread", "process")

#: Full scale: a 1000-node Latin-hypercube sweep, 10 perturbed rows.
FULL_RUNS, FULL_PERTURBED = 1000, 10
QUICK_RUNS, QUICK_PERTURBED = 60, 2


def build_sweep(runs: int) -> Ensemble:
    return Ensemble.latin_hypercube(
        "response.surface",
        factors={"x1": (0.0, 1.0), "x2": (0.0, 1.0), "x3": (0.0, 1.0)},
        runs=runs,
        seed=11,
        name="lh",
    )


def run_experiment(config: BenchConfig = BenchConfig()):
    """Cold-materialize once, then delta-run the perturbation per backend.

    Returns ``(rows, acceptance)`` where each row is ``(backend,
    nodes_total, nodes_recomputed, recompute_fraction, cold_seconds,
    delta_seconds, speedup, reused_identical)`` and ``acceptance``
    aggregates the <5%-cone and byte-identity bars across backends.
    """
    runs = QUICK_RUNS if config.quick else FULL_RUNS
    perturbed = QUICK_PERTURBED if config.quick else FULL_PERTURBED
    base = build_sweep(runs)
    updates = {
        f"lh/{i:03d}": {"x1": 0.123456 + i * 1e-6}
        for i in range(0, runs, runs // perturbed)
    }
    target = perturb(base, params=updates, name="lh~perturbed")

    rows = []
    acceptance = {}
    with tempfile.TemporaryDirectory() as scratch:
        cold_root = Path(scratch) / "cold"
        cold_store = RunStore(cold_root)
        cold, cold_seconds = timed(
            run_ensemble, base, store=cold_store, backend=config.backend
        )
        cold.raise_if_failed()
        cold_prints = cold.fingerprints()

        for backend in BACKENDS:
            # A private copy: one backend's delta must not warm the next.
            root = Path(scratch) / backend
            shutil.copytree(cold_root, root)
            store = RunStore(root)
            plan = plan_delta(target, store, base=base)
            outcome, delta_seconds = timed(
                execute_plan, plan, store, backend=backend
            )
            outcome.raise_if_failed()
            identical = all(
                result_fingerprint(outcome.result(name)) == cold_prints[name]
                for name, report in outcome.reports.items()
                if report.status == "reused"
            )
            fraction = plan.recompute_fraction
            rows.append(
                (
                    backend,
                    plan.nodes_total,
                    plan.nodes_recomputed,
                    fraction,
                    cold_seconds,
                    delta_seconds,
                    cold_seconds / delta_seconds,
                    identical,
                )
            )
            acceptance[backend] = bool(
                identical
                and fraction < 0.05
                and plan.nodes_recomputed == len(updates)
                and outcome.nodes_run == len(updates)
            )
    return rows, acceptance


def test_delta_invalidation(benchmark, bench_config):
    rows, acceptance = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = [
        "backend",
        "nodes_total",
        "nodes_recomputed",
        "recompute_fraction",
        "cold_seconds",
        "delta_seconds",
        "speedup",
        "reused_identical",
    ]
    save_report("BENCH_delta", format_table(headers, rows))
    save_json(
        "BENCH_delta",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "cold_seconds materializes the whole Latin-hypercube "
                "sweep; delta_seconds brings it current after a "
                "single-factor perturbation via plan_delta/execute_plan "
                "over a copied cold store. The acceptance bar is "
                "recompute_fraction < 0.05 with every reused node "
                "fingerprint byte-identical to the cold run, per backend."
            ),
        },
    )
    # The cone must be exact and reuse byte-identical on every backend.
    assert all(acceptance.values()), acceptance
