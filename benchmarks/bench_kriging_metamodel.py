"""AN-KR — kriging vs polynomial metamodels; stochastic kriging (§4.1).

Fits both metamodel families to a nonlinear simulation response on an
NOLH design.  Shape checks: the GP interpolates the design points
exactly (deterministic case, the property the paper derives from Eq. 6);
kriging beats the quadratic polynomial off-design; stochastic kriging
smooths noisy responses toward the truth instead of interpolating noise;
the GP enables cheap "simulation on demand".
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._util import format_table, save_report
from repro.doe import nearly_orthogonal_lh, scale_design
from repro.metamodel import (
    GaussianProcessMetamodel,
    PolynomialMetamodel,
    StochasticKrigingMetamodel,
)
from repro.stats import make_rng


def response(x: np.ndarray) -> np.ndarray:
    """A two-factor nonlinear 'simulation' response."""
    return (
        np.sin(4.0 * x[:, 0]) * np.cos(2.0 * x[:, 1])
        + 0.5 * x[:, 0] * x[:, 1]
    )


def run_experiment():
    rng = make_rng(0)
    coded = nearly_orthogonal_lh(2, 33, rng, iterations=1000)
    design = scale_design(
        coded, lows=np.array([0.0, 0.0]), highs=np.array([1.5, 1.5])
    )
    y = response(design)

    gp = GaussianProcessMetamodel().fit(design, y)
    poly2 = PolynomialMetamodel(2, order=2).fit(design, y)

    query = rng.uniform(0.0, 1.5, size=(500, 2))
    truth = response(query)
    gp_rmse = float(np.sqrt(np.mean((gp.predict(query) - truth) ** 2)))
    poly_rmse = float(np.sqrt(np.mean((poly2.predict(query) - truth) ** 2)))
    interp_error = float(np.max(np.abs(gp.predict(design) - y)))

    # "Simulation on demand": metamodel evaluation cost per point.
    start = time.perf_counter()
    for _ in range(20):
        gp.predict(query)
    per_point = (time.perf_counter() - start) / (20 * query.shape[0])

    # Stochastic variant on noisy replications.
    noise_sd = 0.3
    replications = 8
    noisy_means = np.array(
        [
            float(
                (response(point[None, :]) + make_rng(100 + i).normal(
                    0, noise_sd, size=replications
                )).mean()
            )
            for i, point in enumerate(design)
        ]
    )
    sk = StochasticKrigingMetamodel().fit_noisy(
        design, noisy_means, np.full(design.shape[0], noise_sd**2 / replications)
    )
    sk_rmse = float(np.sqrt(np.mean((sk.predict(query) - truth) ** 2)))
    naive_gp = GaussianProcessMetamodel().fit(design, noisy_means)
    naive_rmse = float(
        np.sqrt(np.mean((naive_gp.predict(query) - truth) ** 2))
    )
    rows = [
        ("polynomial (order 2)", poly_rmse, "-"),
        ("kriging (GP, Eq. 6)", gp_rmse, f"{interp_error:.2e}"),
        ("kriging on noisy data", naive_rmse, "-"),
        ("stochastic kriging", sk_rmse, "-"),
    ]
    return rows, gp_rmse, poly_rmse, sk_rmse, naive_rmse, interp_error, per_point


def test_kriging_metamodel(benchmark):
    (
        rows,
        gp_rmse,
        poly_rmse,
        sk_rmse,
        naive_rmse,
        interp_error,
        per_point,
    ) = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["metamodel", "off-design RMSE", "design-point error"], rows
    )
    table += (
        f"\n\nsimulation-on-demand: {per_point * 1e6:.2f} us per "
        "metamodel evaluation"
    )
    save_report("AN-KR_kriging_metamodel", table)

    # GP interpolates design points (deterministic kriging property).
    assert interp_error < 1e-3
    # Kriging beats the polynomial on the nonlinear response.
    assert gp_rmse < poly_rmse / 2
    # Stochastic kriging beats naive interpolation of noisy data.
    assert sk_rmse < naive_rmse
