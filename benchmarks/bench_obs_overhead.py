"""BENCH_obs — the observability subsystem's overhead, on and off.

The :mod:`repro.obs` determinism/overhead contract has two measurable
halves:

* **disabled** (``REPRO_OBS`` unset): instrumented hot paths pay only a
  no-op observer lookup, so timings must sit within noise of the
  un-instrumented code — the ``obs_off_seconds`` column is that
  evidence, recorded next to ``obs_on_seconds`` for the same workload.
* **enabled**: outputs are unchanged (observability never perturbs a
  result), and the cost of full tracing + metrics stays small relative
  to real work.

Workloads cover the three instrumentation styles: the per-phase spans
of the MapReduce runtime, the per-step metrics of the particle filter,
and the per-operator iterator wrapping of the query engine (the most
instrumentation-dense path).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
from repro import obs


def _wc_mapper(_key, line):
    for word in line.split():
        yield word, 1


def _mapreduce_workload(config: BenchConfig):
    from repro.mapreduce.job import MapReduceJob, sum_reducer
    from repro.mapreduce.runtime import Cluster

    lines = [
        (None, f"alpha beta gamma delta w{i % 17}")
        for i in range(100 if config.quick else 1500)
    ]
    job = MapReduceJob("obs-bench-wc", _wc_mapper, sum_reducer)

    def run():
        return sorted(Cluster(num_workers=4).run(job, lines))

    return f"mapreduce_wordcount(lines={len(lines)})", run


def _particle_filter_workload(config: BenchConfig):
    from repro.assimilation import LinearGaussianSSM, particle_filter
    from repro.stats import make_rng

    steps = 10 if config.quick else 40
    n_particles = 200 if config.quick else 2000
    ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
    _, observations = ssm.simulate(steps, make_rng(0))
    model = ssm.to_state_space_model()

    def run():
        result = particle_filter(
            model, observations, n_particles, rng=make_rng(1)
        )
        return result.filtered_means

    return f"particle_filter(steps={steps}, N={n_particles})", run


def _engine_workload(config: BenchConfig):
    from repro.engine import Database

    db = Database()
    db.sql("CREATE TABLE cells (cid int, region int, load float)")
    for i in range(50 if config.quick else 400):
        db.sql(f"INSERT INTO cells VALUES ({i}, {i % 5}, {float(i % 11)})")
    query = (
        "SELECT region, avg(load) AS mean_load, count(*) AS n "
        "FROM cells WHERE cid > 2 GROUP BY region ORDER BY region"
    )
    repeats = 5 if config.quick else 25

    def run():
        rows = None
        for _ in range(repeats):
            rows = db.sql(query)
        return [tuple(sorted(r.items())) for r in rows]

    return f"engine_query(x{repeats})", run


def run_experiment(config: BenchConfig = BenchConfig()):
    """Time each workload with obs disabled and enabled.

    Returns ``(rows, outputs_identical)`` where each row is
    ``(workload, obs_off_seconds, obs_on_seconds, on_off_ratio)`` and
    ``outputs_identical`` records that enabling observability never
    changed a result.
    """
    was_enabled = obs.is_enabled()
    rows = []
    identical = {}
    try:
        for name, run in (
            _mapreduce_workload(config),
            _particle_filter_workload(config),
            _engine_workload(config),
        ):
            obs.disable()
            run()  # warm caches/pools outside both timed regions
            off_output, off_seconds = timed(run)
            observer = obs.enable()
            observer.reset()
            on_output, on_seconds = timed(run)
            obs.disable()
            identical[name] = bool(
                np.array_equal(np.asarray(off_output), np.asarray(on_output))
            )
            rows.append(
                (name, off_seconds, on_seconds, on_seconds / off_seconds)
            )
    finally:
        if was_enabled:
            obs.enable()
        else:
            obs.disable()
    return rows, identical


def test_obs_overhead(benchmark, bench_config):
    rows, identical = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = ["workload", "obs_off_seconds", "obs_on_seconds", "on/off"]
    save_report("BENCH_obs", format_table(headers, rows))
    save_json(
        "BENCH_obs",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "obs_off_seconds is the instrumented code with REPRO_OBS "
                "unset (the near-zero-overhead no-op path); obs_on_seconds "
                "pays full metrics + tracing. Outputs are identical either "
                "way."
            ),
        },
    )
    # Observability must never change results.
    assert all(identical.values()), identical
