"""FIG2 — result caching for the Figure 2 composite model (Section 2.3).

Sweep the replication fraction alpha for the demand→queue composite,
comparing the analytic work-variance product g(alpha) against the
measured c * Var[U(c)] from replicated budget-constrained runs.  Shape
checks: an interior optimum near the alpha* formula, measured curve
tracking the analytic one, and caching beating both extremes.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.composite import (
    ArrivalProcessModel,
    QueueModel,
    estimate_statistics,
    g_approx,
    g_exact,
    measure_estimator_variance,
    optimal_alpha,
)
from repro.stats import make_rng

BUDGET = 600.0
REPLICATIONS = 80


def run_experiment():
    m1 = ArrivalProcessModel(cost=5.0)
    m2 = QueueModel(cost=0.5)
    stats = estimate_statistics(
        m1, m2, make_rng(0), pilot_m1_runs=120, m2_runs_per_m1=6
    )
    alpha_star = optimal_alpha(stats)
    alphas = [0.02, 0.05, 0.1, 0.2, alpha_star, 0.6, 1.0]
    rows = []
    measured = {}
    for alpha in alphas:
        mean, g_measured = measure_estimator_variance(
            m1, m2, budget=BUDGET, alpha=alpha,
            replications=REPLICATIONS, seed=1,
        )
        measured[alpha] = g_measured
        rows.append(
            (
                round(alpha, 4),
                g_exact(alpha, stats),
                g_approx(alpha, stats),
                g_measured,
                mean,
            )
        )
    return stats, alpha_star, alphas, rows, measured


def test_fig2_result_caching(benchmark):
    stats, alpha_star, alphas, rows, measured = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        ["alpha", "g exact", "g approx", "c*Var[U(c)] measured", "mean"],
        rows,
    )
    table += (
        f"\n\nS = (c1={stats.c1}, c2={stats.c2}, "
        f"V1={stats.v1:.3f}, V2={stats.v2:.3f})"
        f"\nalpha* = sqrt((c2/c1)/(V1/V2 - 1)) = {alpha_star:.4f}"
    )
    save_report("FIG2_result_caching", table)

    # Interior optimum: alpha* strictly inside (0, 1) …
    assert 0.0 < alpha_star < 1.0
    # … analytic curve is minimized near alpha* over the sweep …
    g_values = {a: g_exact(a, stats) for a in alphas}
    assert g_values[alpha_star] == min(g_values.values())
    # … and the measured curve agrees: alpha* beats the tiny-alpha
    # extreme decisively and is never worse than alpha=1 by much.
    assert measured[alpha_star] < measured[0.02]
    assert measured[alpha_star] < measured[1.0] * 1.25
