"""AN-SB — factor screening by sequential bifurcation (§4.3).

A simulator with k of 100 positive main effects is screened three ways:
sequential bifurcation, one-at-a-time probing, and GP theta-based
screening on an LH design.  Shape checks: SB classifies perfectly with
far fewer runs than OAT when the important set is sparse, and its run
count grows with the number of important factors, not the total.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.doe import randomized_lh, scale_design
from repro.metamodel import (
    SequentialBifurcation,
    gp_screening,
    one_at_a_time_screening,
)
from repro.stats import make_rng

NUM_FACTORS = 100
EFFECT = 2.0
NOISE_SD = 0.3
THRESHOLD = 1.0


def make_simulator(important):
    beta = np.zeros(NUM_FACTORS)
    beta[list(important)] = EFFECT

    def simulate(levels, rng):
        return float(levels @ beta + rng.normal(0, NOISE_SD))

    return simulate


def run_experiment():
    rows = []
    sb_runs = {}
    for k, important in (
        (1, {37}),
        (3, {5, 41, 88}),
        (6, {3, 17, 29, 55, 71, 93}),
    ):
        simulate = make_simulator(important)
        sb = SequentialBifurcation(
            simulate, NUM_FACTORS, THRESHOLD, replications=3, seed=k
        ).run()
        oat = one_at_a_time_screening(
            simulate, NUM_FACTORS, THRESHOLD, replications=3, seed=k + 50
        )
        sb_correct = set(sb.important) == important
        oat_correct = set(oat.important) == important
        sb_runs[k] = sb.runs_used
        rows.append(
            (
                k,
                sb.runs_used,
                oat.runs_used,
                oat.runs_used / sb.runs_used,
                sb_correct,
                oat_correct,
            )
        )

    # GP screening on a space-filling design (smaller problem: GP fit
    # cost grows fast with dimensionality).
    rng = make_rng(9)
    small_important = {2, 7}
    beta = np.zeros(10)
    beta[list(small_important)] = EFFECT
    design = scale_design(
        randomized_lh(10, 40, rng),
        lows=np.full(10, -1.0),
        highs=np.full(10, 1.0),
    )
    responses = design @ beta + rng.normal(0, NOISE_SD, size=40)
    gp_found = set(gp_screening(design, responses, top_k=2))
    return rows, sb_runs, gp_found, small_important


def test_screening(benchmark):
    rows, sb_runs, gp_found, small_important = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "important k (of 100)",
            "SB runs",
            "OAT runs",
            "OAT/SB",
            "SB exact",
            "OAT exact",
        ],
        rows,
    )
    table += (
        f"\n\nGP theta-screening (10 factors, 40 runs): found "
        f"{sorted(gp_found)}, truth {sorted(small_important)}"
    )
    save_report("AN-SB_sequential_bifurcation", table)

    # Perfect classification everywhere.
    assert all(row[4] for row in rows)
    # Group testing beats one-at-a-time by a wide margin when sparse.
    assert rows[0][3] > 5.0
    # SB cost grows with the number of important factors.
    assert sb_runs[1] < sb_runs[3] < sb_runs[6]
    assert gp_found == small_important
