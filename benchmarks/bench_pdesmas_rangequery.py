"""AN-RQ — range queries in distributed agent simulations (§2.4).

PDES-MAS ALPs progress through simulated time at different rates, so
"answering range queries correctly becomes extremely challenging".  The
scenario sweeps the clock-rate skew and compares the timestamped
(consistent) and latest-value (cheap) query algorithms, then measures the
effect of SSV migration on communication for a skewed access pattern.
Shape checks: result discrepancy between algorithms grows with the LVT
spread; migration cuts query hop counts substantially.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.pdesmas import PdesMasScenario

CYCLES = 15


def run_experiment():
    skew_rows = []
    discrepancies = {}
    for skew in (1.0, 4.0, 16.0):
        scenario = PdesMasScenario(
            num_alps=8, agents_per_alp=8, rate_skew=skew, seed=3
        )
        report = scenario.run(cycles=CYCLES, queries_per_cycle=3)
        discrepancies[skew] = report.mean_discrepancy
        skew_rows.append(
            (
                skew,
                report.mean_lvt_spread,
                report.mean_discrepancy,
                report.timestamped_hops,
                report.latest_hops,
            )
        )

    migration_rows = []
    hops = {}
    for migrate in (None, 5):
        scenario = PdesMasScenario(
            num_alps=8, agents_per_alp=8, rate_skew=4.0, seed=4
        )
        report = scenario.run(
            cycles=CYCLES, queries_per_cycle=3,
            migrate_every=migrate, query_from_leaf=0,
        )
        query_hops = report.timestamped_hops + report.latest_hops
        hops[migrate] = (query_hops, report.publish_hops)
        migration_rows.append(
            (
                "every 5 cycles" if migrate else "never",
                query_hops,
                report.publish_hops,
                query_hops + report.publish_hops,
                report.migrations,
            )
        )
    return skew_rows, discrepancies, migration_rows, hops


def test_pdesmas_rangequery(benchmark):
    skew_rows, discrepancies, migration_rows, hops = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = "clock-rate skew vs query consistency:\n"
    table += format_table(
        [
            "rate skew",
            "mean LVT spread",
            "mean result discrepancy",
            "hops (timestamped)",
            "hops (latest)",
        ],
        skew_rows,
    )
    table += "\n\nSSV migration under a pinned query origin (leaf 0):\n"
    table += format_table(
        [
            "migration",
            "query hops",
            "publish hops",
            "total hops",
            "migrations",
        ],
        migration_rows,
    )
    save_report("AN-RQ_pdesmas_rangequery", table)

    # More clock skew -> the cheap algorithm diverges more from the
    # consistent one.
    assert discrepancies[16.0] > discrepancies[1.0]
    # Migration pays for itself: total communication drops.
    no_mig_total = sum(hops[None])
    mig_total = sum(hops[5])
    assert mig_total < no_mig_total
