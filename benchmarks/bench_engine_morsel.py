"""BENCH_engine_morsel — fused, morsel-parallel columnar execution.

Runs the PR 5 workloads through five execution configurations of
:mod:`repro.engine` — the row interpreter, the plain columnar executor
(the *disabled path*: no ``REPRO_ENGINE_MORSEL``), the fused
single-worker morsel executor (one morsel, serial backend: isolates
kernel fusion + the scan-batch cache), and morsel-parallel execution on
the thread and process backends — verifying the byte-identity contract
(identical ``result_fingerprint``, identical ``ExecutionMetrics``,
byte-identical obs ``values`` snapshots) and recording wall-clock
speedups to ``benchmarks/results/BENCH_engine_morsel.json``.

Headline claims (asserted at full size):

* fused single-worker >= 1.3x over the plain columnar executor on the
  100k-row filter+aggregate workload;
* morsel-parallel >= 1.5x over plain columnar when ``usable_cpus > 1``
  (reported either way, asserted only with real parallelism);
* the disabled path keeps PR 5's columnar speedup over row mode to
  within 1.1x (gate: >= 3.0/1.1 at 100k rows, quick-mode scaled).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    host_info,
    save_json,
    save_report,
    timed,
)
from repro import obs
from repro.engine import Database, ExecutionMetrics, Schema
from repro.engine.morsel import _SCAN_CACHE
from repro.ensemble.store import result_fingerprint

REGIONS = ["east", "west", "north", "south"]


def build_database(num_rows: int, seed: int = 7) -> Database:
    """The PR 5 synthetic workload table plus a small join dimension."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, num_rows)
    ys = rng.integers(0, 100, num_rows)
    db = Database()
    db.create_table(
        "big", Schema.of(pid=int, region=str, x=float, y=int)
    )
    big = db.table("big")
    for i in range(num_rows):
        big.insert(
            {
                "pid": i,
                "region": REGIONS[i % 4] if i % 11 else None,
                "x": float(xs[i]),
                "y": int(ys[i]) if i % 13 else None,
            }
        )
    db.create_table("dim", Schema.of(region=str, weight=float))
    for j, name in enumerate(REGIONS):
        db.table("dim").insert({"region": name, "weight": 0.5 + 0.25 * j})
    return db


def workloads(num_rows: int):
    return [
        (
            f"filter_aggregate(rows={num_rows})",
            "SELECT count(*) AS n, sum(x) AS s, avg(x) AS m, max(y) AS hi "
            "FROM big WHERE x > 0.25 AND y < 80",
        ),
        (
            f"group_by(rows={num_rows})",
            "SELECT region, count(*) AS n, sum(x) AS s FROM big "
            "WHERE y IS NOT NULL GROUP BY region",
        ),
        (
            f"join_group(rows={num_rows})",
            "SELECT d.region, count(*) AS n FROM big b JOIN dim d "
            "ON b.region = d.region WHERE b.x > 0.5 GROUP BY d.region",
        ),
    ]


def _modes(num_rows: int, parallel_size: int):
    """(name, sql kwargs, backend spec) per execution configuration."""
    return [
        ("row", {"execution": "row"}, None),
        ("columnar", {"execution": "columnar"}, None),
        ("fused", {"morsel_size": num_rows}, "serial"),
        ("morsel-thread", {"morsel_size": parallel_size}, "thread"),
        ("morsel-process", {"morsel_size": parallel_size}, "process"),
    ]


def _run_mode(db, sql, kwargs, backend_spec):
    import os

    if backend_spec is None:
        return db.sql(sql, **kwargs)
    previous = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend_spec
    try:
        return db.sql(sql, **kwargs)
    finally:
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def run_experiment(config: BenchConfig = BenchConfig()):
    num_rows = 5_000 if config.quick else 100_000
    usable = host_info()["usable_cpus"]
    parallel_size = max(1, num_rows // max(2 * usable, 2))
    db = build_database(num_rows)
    modes = _modes(num_rows, parallel_size)

    rows = []
    speedups = {}
    identical = {}
    obs_identical = {}
    metrics_identical = {}
    for workload_name, sql in workloads(num_rows):
        fingerprints = {}
        seconds = {}
        for mode, kwargs, backend_spec in modes:
            _SCAN_CACHE.clear()
            _run_mode(db, sql, kwargs, backend_spec)  # warm-up
            result, elapsed = timed(
                _run_mode, db, sql, kwargs, backend_spec
            )
            fingerprints[mode] = result_fingerprint(result)
            seconds[mode] = elapsed
        # Identity sweep (untimed): fingerprints, ExecutionMetrics, and
        # the deterministic obs ``values`` snapshot must not depend on
        # the execution configuration.
        values_snaps = {}
        metrics_snaps = {}
        for mode, kwargs, backend_spec in modes:
            observer = obs.enable()
            observer.reset()
            db.metrics.reset()
            try:
                _run_mode(db, sql, kwargs, backend_spec)
                values_snaps[mode] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
            m = db.metrics
            metrics_snaps[mode] = (
                m.rows_scanned, m.rows_joined,
                m.join_pairs_examined, m.rows_output,
            )
        identical[workload_name] = (
            len(set(fingerprints.values())) == 1
        )
        obs_identical[workload_name] = all(
            snap == values_snaps["row"] for snap in values_snaps.values()
        )
        metrics_identical[workload_name] = all(
            snap == metrics_snaps["row"] for snap in metrics_snaps.values()
        )
        speedups[workload_name] = {
            "row_vs_columnar": seconds["row"] / seconds["columnar"],
            "fused_vs_columnar": seconds["columnar"] / seconds["fused"],
            "thread_vs_columnar": seconds["columnar"]
            / seconds["morsel-thread"],
            "process_vs_columnar": seconds["columnar"]
            / seconds["morsel-process"],
        }
        rows.append(
            (
                workload_name,
                seconds["row"],
                seconds["columnar"],
                seconds["fused"],
                seconds["morsel-thread"],
                seconds["morsel-process"],
                speedups[workload_name]["fused_vs_columnar"],
                identical[workload_name] and obs_identical[workload_name],
            )
        )
    return {
        "rows": rows,
        "speedups": speedups,
        "identical": identical,
        "obs_identical": obs_identical,
        "metrics_identical": metrics_identical,
        "usable_cpus": usable,
        "num_rows": num_rows,
        "parallel_morsel_size": parallel_size,
    }


HEADERS = [
    "workload", "row s", "columnar s", "fused s",
    "thread s", "process s", "fusedx", "identical",
]


def _record(outcome, quick):
    save_report("BENCH_engine_morsel", format_table(HEADERS, outcome["rows"]))
    save_json(
        "BENCH_engine_morsel",
        {
            "config": {
                "quick": quick,
                "num_rows": outcome["num_rows"],
                "parallel_morsel_size": outcome["parallel_morsel_size"],
            },
            "columns": HEADERS,
            "rows": [list(row) for row in outcome["rows"]],
            "speedups": outcome["speedups"],
            "identical": outcome["identical"],
            "obs_identical": outcome["obs_identical"],
            "metrics_identical": outcome["metrics_identical"],
            "note": (
                "fused = one morsel on the serial backend (kernel fusion "
                "+ scan-batch cache, no parallelism); morsel-thread/"
                "process split into parallel_morsel_size-row morsels; "
                "speedups are relative to the plain columnar executor "
                "(the disabled path); identity covers result_fingerprint "
                "+ obs values snapshots + ExecutionMetrics"
            ),
        },
    )


def _assert_claims(outcome, quick):
    assert all(outcome["identical"].values()), outcome["identical"]
    assert all(outcome["obs_identical"].values()), outcome["obs_identical"]
    assert all(
        outcome["metrics_identical"].values()
    ), outcome["metrics_identical"]
    headline = next(
        s for name, s in outcome["speedups"].items()
        if "filter_aggregate" in name
    )
    # Fused single-worker >= 1.3x over the plain columnar executor.
    assert headline["fused_vs_columnar"] >= (1.1 if quick else 1.3), headline
    # Morsel-parallel >= 1.5x, asserted only with real parallelism.
    if outcome["usable_cpus"] > 1 and not quick:
        best_parallel = max(
            headline["thread_vs_columnar"], headline["process_vs_columnar"]
        )
        assert best_parallel >= 1.5, headline
    # Disabled path: PR 5's >= 3.0x columnar-over-row headline may not
    # degrade by more than 1.1x on the same workload.
    assert headline["row_vs_columnar"] >= (
        1.2 / 1.1 if quick else 3.0 / 1.1
    ), headline


def test_engine_morsel(benchmark, bench_config):
    outcome = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    _record(outcome, bench_config.quick)
    _assert_claims(outcome, bench_config.quick)


if __name__ == "__main__":
    config = BenchConfig.from_env()
    result = run_experiment(config)
    _record(result, config.quick)
    _assert_claims(result, config.quick)
