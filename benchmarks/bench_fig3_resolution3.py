"""FIG3 — the resolution III fractional factorial of paper Figure 3.

Regenerates the 8-run, 7-parameter design table exactly as printed in
the paper, and verifies its defining properties: column orthogonality,
balance, and the III-vs-IV aliasing structure (main effects confounded
with two-factor interactions until the design is folded over).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.doe import (
    confounded_pairs,
    is_orthogonal,
    resolution_iii,
    resolution_iv,
    resolution_v,
)

PAPER_FIGURE3 = np.array(
    [
        [-1, -1, -1, 1, 1, 1, -1],
        [1, -1, -1, -1, -1, 1, 1],
        [-1, 1, -1, -1, 1, -1, 1],
        [1, 1, -1, 1, -1, -1, -1],
        [-1, -1, 1, 1, -1, -1, 1],
        [1, -1, 1, -1, 1, -1, -1],
        [-1, 1, 1, -1, -1, 1, -1],
        [1, 1, 1, 1, 1, 1, 1],
    ],
    dtype=float,
)


def run_experiment():
    design = resolution_iii(7)
    return (
        design,
        is_orthogonal(design),
        confounded_pairs(design),
        resolution_iv(7).shape[0],
        resolution_v(7).shape[0],
    )


def test_fig3_resolution3(benchmark):
    design, orthogonal, aliases, res4_runs, res5_runs = benchmark(
        run_experiment
    )
    rows = [
        [run + 1] + [int(level) for level in design[run]]
        for run in range(design.shape[0])
    ]
    table = format_table(
        ["Run", "x1", "x2", "x3", "x4", "x5", "x6", "x7"], rows
    )
    table += (
        f"\n\ncolumns orthogonal : {orthogonal}"
        f"\nmain-effect/2fi aliases (resolution III): {len(aliases)}"
        f"\nrun counts: res III = {design.shape[0]}, "
        f"res IV = {res4_runs}, res V = {res5_runs} "
        f"(paper: 8 / 16 / 32; full factorial 128)"
    )
    save_report("FIG3_resolution3_design", table)

    np.testing.assert_array_equal(design, PAPER_FIGURE3)
    assert orthogonal
    assert len(aliases) > 0
    assert (design.shape[0], res4_runs, res5_runs) == (8, 16, 32)
