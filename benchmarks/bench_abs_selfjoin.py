"""AN-SJ — agent interaction as a self-join, full vs partitioned (§2.1).

Wang et al.'s observation: an ABS step is a self-join, and because agents
interact only with nearby agents the join can be partitioned spatially.
Both physical strategies run the same interaction step over growing agent
populations.  Shape checks: identical neighbor sets and updated states;
pairs examined O(n^2) for the full join vs near-linear for the grid join.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.abs import (
    SelfJoinStats,
    averaging_update,
    full_selfjoin_step,
    grid_selfjoin_step,
    random_spatial_agents,
)
from repro.stats import make_rng

RADIUS = 1.0
DENSITY = 2.0  # agents per unit area


def run_experiment():
    rows = []
    ratios = {}
    for n in (200, 400, 800, 1600):
        extent = float(np.sqrt(n / DENSITY))
        agents = random_spatial_agents(
            n, extent, make_rng(n),
            extra_state=lambda i, rng: {"v": float(rng.normal())},
        )
        full_stats = SelfJoinStats()
        full_out = full_selfjoin_step(
            agents, RADIUS, averaging_update("v"), full_stats
        )
        grid_stats = SelfJoinStats()
        grid_out = grid_selfjoin_step(
            agents, RADIUS, averaging_update("v"), grid_stats
        )
        identical = all(
            abs(a["v"] - b["v"]) < 1e-12
            for a, b in zip(full_out, grid_out)
        )
        ratio = full_stats.pairs_examined / max(grid_stats.pairs_examined, 1)
        ratios[n] = ratio
        rows.append(
            (
                n,
                full_stats.pairs_examined,
                grid_stats.pairs_examined,
                grid_stats.cells_used,
                ratio,
                identical,
            )
        )
    return rows, ratios


def test_abs_selfjoin(benchmark):
    rows, ratios = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        [
            "agents",
            "pairs (full join)",
            "pairs (grid join)",
            "grid cells",
            "reduction",
            "identical states",
        ],
        rows,
    )
    save_report("AN-SJ_abs_selfjoin", table)

    # Correctness: the partitioned join computes the same step.
    assert all(row[5] for row in rows)
    # The reduction factor grows with population (full is O(n^2),
    # grid is ~O(n) at constant density).
    assert ratios[1600] > ratios[200]
    assert ratios[1600] > 20.0
