"""BENCH_serve — throughput and deduplication of the simulation service.

The :mod:`repro.serve` layer claims that concurrency is free twice
over: distinct requests pipeline through the admission-controlled
executor pool, and *identical* concurrent requests cost one execution
(single-flight dedup + result cache) while every client still receives
byte-identical payloads.  This benchmark records both claims as
numbers, plus the load-shedding behaviour that keeps the server from
queueing unboundedly:

* ``throughput_rps`` — distinct SQL requests per second through one
  server (client threads x requests each, all unique cache keys);
* ``dedupe_ratio`` — fraction of identical concurrent requests served
  without execution (``1 - executions/requests``), with the byte-
  identity of every response asserted;
* ``shed`` — requests explicitly rejected ``overloaded`` by a
  deliberately tiny (1 in-flight, 2 queued) server under a burst, with
  zero deadlocks (every request gets *an* answer).
"""

from __future__ import annotations

import threading
import time

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
)
from repro.serve import Client, ReproServer, ServeConfig
from repro.serve.protocol import ServeError
from repro.serve.server import build_demo_catalog, serve_in_thread

MCDB_REQUEST = {
    "tables": [
        {
            "name": "noise",
            "vg": "normal",
            "outer_table": "person",
            "parameters": {"mean": 0.0, "std": 1.0},
        }
    ],
    "statement": "SELECT AVG(value) AS v FROM noise",
    "seed": 17,
}


def _fanout(n_threads, worker):
    """Run ``worker(slot)`` on ``n_threads`` threads; re-raise failures."""
    errors = []

    def body(slot):
        try:
            worker(slot)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(slot,))
        for slot in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _throughput(host, port, clients, requests_each):
    """Distinct-key SQL requests per second across concurrent clients."""

    def worker(slot):
        with Client(host, port) as client:
            for i in range(requests_each):
                # unique constant per request -> unique cache key ->
                # every request actually executes
                client.sql(
                    "SELECT region, COUNT(*) AS n FROM person "
                    f"WHERE age < {slot * requests_each + i + 200} "
                    "GROUP BY region ORDER BY region"
                )

    start = time.perf_counter()
    _fanout(clients, worker)
    seconds = time.perf_counter() - start
    total = clients * requests_each
    return total, seconds, total / seconds if seconds > 0 else 0.0


def _dedupe(host, port, clients, requests_each, n_mc):
    """Identical mcdb requests from many clients: one execution total."""
    body = dict(MCDB_REQUEST, n_mc=n_mc)
    payloads = set()
    payload_lock = threading.Lock()
    with Client(host, port) as client:
        before = client.stats()["cache"]

    def worker(slot):
        with Client(host, port) as client:
            for _ in range(requests_each):
                outcome = client.mcdb(**body)
                with payload_lock:
                    payloads.add(outcome.result_bytes)

    start = time.perf_counter()
    _fanout(clients, worker)
    seconds = time.perf_counter() - start
    with Client(host, port) as client:
        after = client.stats()["cache"]
    total = clients * requests_each
    executions = after["misses"] - before["misses"]
    ratio = 1.0 - executions / total if total else 0.0
    return {
        "requests": total,
        "executions": executions,
        "hits": after["hits"] - before["hits"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "dedupe_ratio": ratio,
        "seconds": seconds,
        "byte_identical": len(payloads) == 1,
    }


def _shedding(backend, burst):
    """Burst a tiny server; every request must resolve, some as shed."""
    config = ServeConfig(
        port=0, max_in_flight=1, max_queue=2, backend=backend
    )
    server = ReproServer(config, catalog=build_demo_catalog())
    answered = []
    shed = []
    lock = threading.Lock()
    with serve_in_thread(server) as (host, port):

        def worker(slot):
            with Client(host, port) as client:
                try:
                    client.ping(delay=0.2)
                    with lock:
                        answered.append(slot)
                except ServeError as exc:
                    if exc.code != "overloaded":
                        raise
                    with lock:
                        shed.append(slot)

        _fanout(burst, worker)
    return {
        "burst": burst,
        "answered": len(answered),
        "shed": len(shed),
        "all_resolved": len(answered) + len(shed) == burst,
    }


def run_experiment(config: BenchConfig = BenchConfig()):
    """Measure serve throughput, dedupe ratio, and load shedding.

    Returns ``(rows, dedupe, shed)``: display rows plus the dedupe and
    shedding detail dicts.
    """
    clients = 2 if config.quick else 6
    requests_each = 4 if config.quick else 25
    dedupe_requests_each = 2 if config.quick else 8
    n_mc = 8 if config.quick else 60
    burst = 4 if config.quick else 12

    server = ReproServer(
        ServeConfig(port=0, max_in_flight=4, backend=config.backend),
        catalog=build_demo_catalog(),
    )
    with serve_in_thread(server) as (host, port):
        total, seconds, rps = _throughput(host, port, clients, requests_each)
        dedupe = _dedupe(host, port, clients, dedupe_requests_each, n_mc)
    shed = _shedding(config.backend, burst)

    rows = [
        ("throughput", total, seconds, f"{rps:.0f} req/s"),
        (
            "dedupe",
            dedupe["requests"],
            dedupe["seconds"],
            f"{dedupe['dedupe_ratio']:.2f} deduped "
            f"({dedupe['executions']} exec)",
        ),
        (
            "shedding",
            shed["burst"],
            0.0,
            f"{shed['shed']} shed / {shed['answered']} answered",
        ),
    ]
    return rows, dedupe, shed


def _persist(config: BenchConfig, rows, dedupe, shed) -> None:
    table = format_table(
        ("workload", "requests", "seconds", "outcome"), rows
    )
    save_report("BENCH_serve", table)
    save_json(
        "BENCH_serve",
        {
            "quick": config.quick,
            "backend": config.backend,
            "throughput": {
                "requests": rows[0][1],
                "seconds": rows[0][2],
                "requests_per_second": rows[0][1] / rows[0][2]
                if rows[0][2]
                else 0.0,
            },
            "dedupe": dedupe,
            "shedding": shed,
        },
    )


def test_serve(benchmark, bench_config):
    rows, dedupe, shed = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    _persist(bench_config, rows, dedupe, shed)
    # The dedupe acceptance bar: N identical concurrent requests cost
    # exactly one execution and every response is byte-identical.
    assert dedupe["executions"] == 1, dedupe
    assert dedupe["byte_identical"], dedupe
    # Load shedding is explicit, never a hang: every request resolved.
    assert shed["all_resolved"], shed


def main() -> None:
    config = BenchConfig.from_env()
    rows, dedupe, shed = run_experiment(config)
    _persist(config, rows, dedupe, shed)


if __name__ == "__main__":
    main()
