"""ABL-WF/SJ — ablations: sensor confidence and self-join cell size.

1. **Sensor confidence sweep (wildfire PF).**  The [57] proposal keeps
   the sensor-adjusted state with a confidence probability gamma;
   gamma = 0 degenerates to the bootstrap filter, gamma = 1 trusts the
   sensors maximally.  We sweep gamma and report accuracy — the useful
   regime is interior when sensors are noisy.
2. **Grid cell size (ABS self-join).**  Cells must be >= the interaction
   radius for correctness; larger cells examine more candidate pairs but
   use fewer cells.  We sweep the cell-size multiple and report pair
   counts (all settings must produce identical interaction results).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.abs import (
    SelfJoinStats,
    averaging_update,
    grid_selfjoin_step,
    random_spatial_agents,
)
from repro.assimilation import (
    WildfireModel,
    WildfireParameters,
    wildfire_sensor_filter,
)
from repro.stats import make_rng

STEPS = 10
PARTICLES = 30


def run_experiment():
    # --- sensor confidence sweep ---
    params = WildfireParameters(height=9, width=9, sensor_fraction=0.5)
    confidence_rows = []
    errors_by_gamma = {}
    for gamma in (0.0, 0.25, 0.5, 0.75, 1.0):
        errors = []
        for replicate in range(3):
            model = WildfireModel(params, seed=replicate)
            rng = make_rng(50 + replicate)
            truth = model.simulate(STEPS, rng)
            obs = [model.observe(s, rng) for s in truth[1:]]
            result = wildfire_sensor_filter(
                model, obs, truth[1:], PARTICLES,
                make_rng(500 + replicate),
                sensor_confidence=gamma, kde_samples=5,
            )
            errors.append(result.average_error)
        errors_by_gamma[gamma] = float(np.mean(errors))
        confidence_rows.append((gamma, errors_by_gamma[gamma]))

    # --- self-join cell size sweep ---
    agents = random_spatial_agents(
        600, 20.0, make_rng(0),
        extra_state=lambda i, rng: {"v": float(rng.normal())},
    )
    radius = 1.0
    reference = None
    cell_rows = []
    for multiple in (1.0, 2.0, 4.0, 8.0):
        stats = SelfJoinStats()
        out = grid_selfjoin_step(
            agents, radius, averaging_update("v"), stats,
            cell_size=radius * multiple,
        )
        values = [row["v"] for row in out]
        if reference is None:
            reference = values
        identical = np.allclose(values, reference)
        cell_rows.append(
            (multiple, stats.cells_used, stats.pairs_examined, identical)
        )
    return confidence_rows, errors_by_gamma, cell_rows


def test_ablation_proposals(benchmark):
    confidence_rows, errors_by_gamma, cell_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = "wildfire PF accuracy vs sensor confidence gamma:\n"
    table += format_table(
        ["gamma", "mean cell error"], confidence_rows
    )
    table += "\n\nself-join pairs examined vs cell size (radius = 1):\n"
    table += format_table(
        ["cell size / radius", "cells", "pairs examined", "identical"],
        cell_rows,
    )
    save_report("ABL-WF-SJ_proposal_cellsize", table)

    # Some sensor use should not hurt badly relative to none; full trust
    # in noisy sensors should not be the unique best either.
    baseline = errors_by_gamma[0.0]
    best_gamma = min(errors_by_gamma, key=errors_by_gamma.get)
    assert errors_by_gamma[best_gamma] <= baseline + 0.01
    # Cell size: correctness for every multiple; pair count grows with
    # cell size (less pruning).
    assert all(row[3] for row in cell_rows)
    pairs = [row[2] for row in cell_rows]
    assert pairs[0] < pairs[-1]
