"""ALG2 — the particle filter of paper Algorithm 2.

Validates the implementation on a linear-Gaussian state-space model where
the exact filtering distribution comes from the Kalman filter.  Shape
checks: RMSE to the exact posterior mean decreases with the particle
count; the paper's optimal proposal q* improves the effective sample size
over the bootstrap proposal; SIS *without* resampling collapses.

The convergence sweep runs in the filter's sharded parallel mode through
the configured :mod:`repro.parallel` backend (``--bench-backend`` /
``REPRO_BENCH_BACKEND``); ``--quick`` shrinks the horizon and particle
counts for CI.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
)
from repro.assimilation import (
    LinearGaussianSSM,
    effective_sample_size,
    kalman_filter,
    normalize_log_weights,
    particle_filter,
)
from repro.stats import make_rng

STEPS = 60


def sis_without_resampling(ssm, observations, n, rng):
    """Plain SIS: weights accumulate multiplicatively (no resampling)."""
    model = ssm.to_state_space_model()
    particles = model.initial_sampler(rng, n)
    log_w = np.zeros(n)
    ess = []
    for y in observations:
        particles = model.transition_sampler(particles, rng)
        log_w = log_w + model.observation_log_density(particles, y)
        ess.append(effective_sample_size(normalize_log_weights(log_w)))
    return np.asarray(ess)


def run_experiment(config: BenchConfig = BenchConfig()):
    steps = 20 if config.quick else STEPS
    particle_counts = (25, 100, 400) if config.quick else (25, 100, 400, 1600)
    seeds = 2 if config.quick else 3
    ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
    _, observations = ssm.simulate(steps, make_rng(0))
    kalman_means, _ = kalman_filter(ssm, observations)
    model = ssm.to_state_space_model()

    rows = []
    rmse_by_n = {}
    for n in particle_counts:
        errors = []
        ess = []
        for seed in range(seeds):
            result = particle_filter(
                model,
                observations,
                n,
                backend=config.backend,
                seed=10 + seed,
            )
            errors.append(
                float(
                    np.sqrt(
                        np.mean(
                            (result.filtered_means[:, 0] - kalman_means) ** 2
                        )
                    )
                )
            )
            ess.append(float(result.effective_sample_sizes.mean()))
        rmse_by_n[n] = float(np.mean(errors))
        rows.append((n, rmse_by_n[n], np.mean(ess)))

    bootstrap = particle_filter(model, observations, 400, make_rng(1))
    optimal = particle_filter(
        model, observations, 400, make_rng(1),
        proposal=ssm.optimal_proposal(),
    )
    sis_ess = sis_without_resampling(ssm, observations, 400, make_rng(2))
    return rows, rmse_by_n, bootstrap, optimal, sis_ess


def test_alg2_particle_filter(benchmark, bench_config):
    rows, rmse_by_n, bootstrap, optimal, sis_ess = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    table = format_table(
        ["particles", "RMSE vs Kalman", "mean ESS"], rows
    )
    table += "\n\nproposal comparison at N=400:\n"
    table += format_table(
        ["proposal", "mean ESS"],
        [
            ("bootstrap p(x|x_prev)",
             bootstrap.effective_sample_sizes.mean()),
            ("optimal q* ∝ p(x|x_prev) p(y|x)",
             optimal.effective_sample_sizes.mean()),
        ],
    )
    table += (
        f"\n\nSIS without resampling: ESS after step 1 = {sis_ess[0]:.1f}, "
        f"after step {len(sis_ess)} = {sis_ess[-1]:.1f} "
        "(weight collapse the paper's resampling step prevents)"
    )
    save_report("ALG2_particle_filter", table)
    save_json(
        "ALG2_particle_filter",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": ["particles", "rmse_vs_kalman", "mean_ess"],
            "rows": [list(row) for row in rows],
        },
    )

    # Convergence in N toward the exact (Kalman) answer.
    largest = max(rmse_by_n)
    assert rmse_by_n[largest] < rmse_by_n[min(rmse_by_n)]
    assert rmse_by_n[largest] < (0.2 if bench_config.quick else 0.08)
    # The optimal proposal dominates the bootstrap on ESS.
    assert (
        optimal.effective_sample_sizes.mean()
        > bootstrap.effective_sample_sizes.mean()
    )
    # SIS degeneracy: ESS collapses by the end of the horizon.
    assert sis_ess[-1] < sis_ess[0] / 10
