"""AN-CAL — MSM calibration of the herding market model (§3.1).

Calibrates the agent-based market against moments of a known-parameter
return series with four strategies: random theta sampling (the paper's
straw man), Nelder-Mead and a genetic algorithm (Fabretti), and the
NOLH+kriging metamodel method (Salle & Yildizoglu).  Shape checks: every
heuristic beats random search at comparable budget; the kriging method
reaches competitive J with the fewest simulator calls.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.calibration import (
    HerdingMarketModel,
    HerdingParameters,
    MSMProblem,
    genetic_algorithm,
    kriging_calibrate,
    make_msm_simulator,
    nelder_mead,
    random_search,
    standard_market_moments,
)
from repro.stats import make_rng

BOUNDS = [(1e-4, 0.02), (0.0, 0.3)]
TRUE = HerdingParameters(idiosyncratic_rate=0.002, herding_rate=0.08)


def fresh_problem(observed) -> MSMProblem:
    simulator = make_msm_simulator(TRUE, num_traders=100, steps=400)
    problem = MSMProblem(
        simulator, observed, simulations_per_theta=4, seed=5
    )
    problem.estimate_weight_matrix(np.array([0.003, 0.05]), replications=20)
    return problem


def run_experiment():
    model = HerdingMarketModel(TRUE, num_traders=100)
    observed = standard_market_moments(
        model.simulate_returns(3000, make_rng(0))
    )

    results = {}

    problem = fresh_problem(observed)
    nm = nelder_mead(
        problem.objective, [0.005, 0.03], bounds=BOUNDS, max_iterations=35
    )
    results["Nelder-Mead"] = (nm.x, nm.value, problem.simulation_calls)

    problem = fresh_problem(observed)
    ga = genetic_algorithm(
        problem.objective, BOUNDS, make_rng(1),
        population_size=12, generations=8,
    )
    results["genetic"] = (ga.x, ga.value, problem.simulation_calls)

    problem = fresh_problem(observed)
    kr = kriging_calibrate(
        problem.objective, BOUNDS, make_rng(2),
        design_runs=15, refinement_rounds=3,
    )
    results["NOLH+kriging"] = (kr.x, kr.value, problem.simulation_calls)

    problem = fresh_problem(observed)
    rs = random_search(problem.objective, BOUNDS, make_rng(3), evaluations=40)
    results["random"] = (rs.x, rs.value, problem.simulation_calls)

    return observed, results


def test_msm_calibration(benchmark):
    observed, results = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        (
            name,
            theta[0],
            theta[1],
            abs(theta[1] - TRUE.herding_rate),
            value,
            calls,
        )
        for name, (theta, value, calls) in results.items()
    ]
    table = format_table(
        ["method", "a_hat", "b_hat", "|b err|", "J", "sim calls"], rows
    )
    table += (
        f"\n\ntrue theta: a={TRUE.idiosyncratic_rate}, "
        f"b={TRUE.herding_rate}; observed moments "
        f"{np.array_str(observed, precision=4)}"
    )
    save_report("AN-CAL_msm_calibration", table)

    j_values = {name: value for name, (_, value, _) in results.items()}
    calls = {name: c for name, (_, _, c) in results.items()}
    # Structured methods beat random sampling of theta.
    assert j_values["Nelder-Mead"] < j_values["random"]
    assert j_values["NOLH+kriging"] < j_values["random"]
    # The metamodel route is the cheapest in simulator calls.
    assert calls["NOLH+kriging"] <= min(
        calls["Nelder-Mead"], calls["genetic"]
    )
    # The herding parameter is recovered to the right order.
    for name in ("Nelder-Mead", "NOLH+kriging"):
        b_hat = results[name][0][1]
        assert 0.02 < b_hat < 0.2
