"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure, algorithm, or
analytical claim), prints the paper-style rows, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can cite measured numbers —
as text reports (:func:`save_report`) and, for machine consumers such as
perf-trajectory tooling, as JSON (:func:`save_json`).

Benchmarks take a :class:`BenchConfig` knob: ``quick`` shrinks problem
sizes so CI can exercise the harness in seconds (the ``--quick`` pytest
flag, see ``benchmarks/conftest.py``), and ``backend`` selects the
:mod:`repro.parallel` execution backend for the parallelized hot paths
(``--bench-backend`` flag or ``REPRO_BENCH_BACKEND`` environment
variable).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Sequence, Tuple

from repro.obs import get_observer

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment fallbacks for the pytest flags, so plain scripts and the
#: CI smoke test can steer benchmarks without pytest options.
QUICK_ENV_VAR = "REPRO_BENCH_QUICK"
BACKEND_ENV_VAR = "REPRO_BENCH_BACKEND"


@dataclass(frozen=True)
class BenchConfig:
    """Execution knobs shared by every benchmark script."""

    quick: bool = False
    backend: str = "serial"

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Resolve the knobs from environment variables."""
        quick = os.environ.get(QUICK_ENV_VAR, "").lower() in (
            "1",
            "true",
            "yes",
            "on",
        )
        backend = os.environ.get(BACKEND_ENV_VAR, "serial").strip() or "serial"
        return cls(quick=quick, backend=backend)


def timed(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, wall seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def host_info() -> Dict[str, Any]:
    """Host metadata persisted with measured timings.

    Wall-clock numbers are meaningless without the CPU budget they were
    measured under — a process-backend "speedup" of 1.0x on a one-core
    container is expected, not a regression.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def git_commit() -> str:
    """The repository's current commit hash, or ``"unknown"``.

    Recorded in every JSON artifact so perf-trajectory tooling can pin a
    measurement to the code that produced it, even after the results
    directory outlives the checkout.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def env_knobs() -> Dict[str, Any]:
    """The ``repro`` environment knobs active for this process.

    ``REPRO_BACKEND``, ``REPRO_FAULTS``, and the engine execution knobs
    silently reshape what a benchmark measures (which executor ran,
    whether work was morsel-parallel, whether failures were being
    injected and retried); recording them — alongside ``usable_cpus``
    in the host header — makes two results files comparable at a glance.
    """
    return {
        name: os.environ.get(name)
        for name in (
            "REPRO_BACKEND",
            "REPRO_FAULTS",
            "REPRO_OBS",
            "REPRO_ENGINE_EXECUTION",
            "REPRO_ENGINE_MORSEL",
        )
    }


def save_report(experiment_id: str, text: str) -> None:
    """Print a report and persist it to ``benchmarks/results/<id>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"==== {experiment_id} ====\n"
    print("\n" + banner + text)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(banner + text + "\n")


def save_json(experiment_id: str, payload: Dict[str, Any]) -> Path:
    """Persist machine-readable rows to ``benchmarks/results/<id>.json``.

    The payload is wrapped with a provenance header — experiment id,
    host metadata, the producing git commit, and the active
    ``REPRO_BACKEND``/``REPRO_FAULTS`` environment knobs — so a results
    file is self-describing; returns the written path.  When the
    :mod:`repro.obs` subsystem is live (``REPRO_OBS=1``), the current
    metrics snapshot rides along under ``obs_metrics``, so a recorded
    benchmark carries the telemetry that explains its numbers.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    document = {
        "experiment": experiment_id,
        "host": host_info(),
        "git_commit": git_commit(),
        "env": env_knobs(),
        **payload,
    }
    observer = get_observer()
    if observer.enabled:
        document.setdefault("obs_metrics", observer.metrics.snapshot())
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max([len(h)] + [len(r[i]) for r in rows]) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)
