"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure, algorithm, or
analytical claim), prints the paper-style rows, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can cite measured numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(experiment_id: str, text: str) -> None:
    """Print a report and persist it to ``benchmarks/results/<id>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"==== {experiment_id} ====\n"
    print("\n" + banner + text)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(banner + text + "\n")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max([len(h)] + [len(r[i]) for r in rows]) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)
