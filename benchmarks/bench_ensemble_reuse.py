"""BENCH_ensemble — warm-store reuse in the ensemble orchestration layer.

The content-addressed :class:`~repro.ensemble.store.RunStore` promises
that re-running an unchanged ensemble does *zero* recomputation: every
node's run key (callable + canonical params + seed + upstream keys)
hits the store, and the decoded results are byte-identical to the cold
run.  This benchmark records that claim as numbers:

* ``cold_seconds`` — first run, every node executed and persisted;
* ``warm_seconds`` — identical rerun, every node served from disk;
* ``speedup`` — the warm-store reuse factor (grows with node cost);
* ``warm_nodes_run`` — must be 0 (the zero-recompute acceptance bar).

Workloads are the two registered experiment families: the epidemic
branching ensemble (one Markov-chain prefix feeding three intervention
timelines) and the composite-model caching sweep (pilot statistics
feeding per-alpha estimators).
"""

from __future__ import annotations

import tempfile

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
from repro.ensemble import RunStore, run_ensemble
from repro.ensemble.scenarios import (
    composite_caching_ensemble,
    epidemic_branching_ensemble,
)


def run_experiment(config: BenchConfig = BenchConfig()):
    """Time a cold and a warm run of each ensemble family.

    Returns ``(rows, reuse_ok)`` where each row is ``(ensemble, nodes,
    cold_seconds, warm_seconds, speedup, warm_nodes_run)`` and
    ``reuse_ok`` records, per family, that the warm run executed zero
    nodes and reproduced the cold fingerprints byte for byte.
    """
    rows = []
    reuse_ok = {}
    for name, builder in (
        ("epidemic-branching", epidemic_branching_ensemble),
        ("composite-caching", composite_caching_ensemble),
    ):
        with tempfile.TemporaryDirectory() as scratch:
            store = RunStore(scratch)
            cold, cold_seconds = timed(
                run_ensemble,
                builder(seed=0, quick=config.quick),
                store=store,
                backend=config.backend,
            )
            warm, warm_seconds = timed(
                run_ensemble,
                builder(seed=0, quick=config.quick),
                store=store,
                backend=config.backend,
            )
        cold.raise_if_failed()
        warm.raise_if_failed()
        reuse_ok[name] = bool(
            warm.nodes_run == 0
            and warm.nodes_cached == warm.nodes
            and warm.fingerprints() == cold.fingerprints()
        )
        rows.append(
            (
                name,
                cold.nodes,
                cold_seconds,
                warm_seconds,
                cold_seconds / warm_seconds,
                warm.nodes_run,
            )
        )
    return rows, reuse_ok


def test_ensemble_reuse(benchmark, bench_config):
    rows, reuse_ok = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = [
        "ensemble",
        "nodes",
        "cold_seconds",
        "warm_seconds",
        "speedup",
        "warm_nodes_run",
    ]
    save_report("BENCH_ensemble", format_table(headers, rows))
    save_json(
        "BENCH_ensemble",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "cold_seconds executes and persists every node; "
                "warm_seconds reruns the identical ensemble against the "
                "populated store. The acceptance bar is warm_nodes_run "
                "== 0 with fingerprints byte-identical to the cold run "
                "(Fig. 2 reuse claim: ensemble.store.hits == nodes)."
            ),
        },
    )
    # Warm reuse must be total: zero re-executions, identical bytes.
    assert all(reuse_ok.values()), reuse_ok
