"""BENCH_faults — the fault-injection/recovery layer's overhead.

The :mod:`repro.faults` contract has two measurable halves:

* **disabled** (no plan installed, no retry policy): every backend runs
  the legacy zero-overhead execution path, so timings must sit within
  noise of the pre-faults code — the ``faults_off_seconds`` column is
  that evidence, recorded next to ``faults_on_seconds`` for the same
  workload (the acceptance bar is off ≤ 1.1× the plain baseline).
* **enabled** (a seeded :class:`~repro.faults.plan.FaultPlan` killing
  real tasks, recovered by the default retry policy): outputs are
  byte-identical to the failure-free run — recovery never perturbs a
  result, it only costs the re-executed attempts.

Workloads cover the fan-outs the recovery layer threads through: a
MapReduce wordcount (map + reduce task retry) and a sharded particle
filter (shard retry on pre-spawned streams).
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
from repro.faults import FaultPlan, injected


def _wc_mapper(_key, line):
    for word in line.split():
        yield word, 1


def _mapreduce_workload(config: BenchConfig):
    from repro.mapreduce.job import MapReduceJob, sum_reducer
    from repro.mapreduce.runtime import Cluster

    lines = [
        (None, f"alpha beta gamma delta w{i % 17}")
        for i in range(100 if config.quick else 1500)
    ]
    job = MapReduceJob("faults-bench-wc", _wc_mapper, sum_reducer)

    def run():
        return sorted(
            Cluster(num_workers=4, backend=config.backend).run(job, lines)
        )

    plan = FaultPlan(
        failures={("mapreduce.map", 1): 1, ("mapreduce.reduce", 2): 1}
    )
    return f"mapreduce_wordcount(lines={len(lines)})", run, plan


def _particle_filter_workload(config: BenchConfig):
    from repro.assimilation import LinearGaussianSSM, particle_filter
    from repro.stats import make_rng

    steps = 10 if config.quick else 40
    n_particles = 200 if config.quick else 2000
    ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
    _, observations = ssm.simulate(steps, make_rng(0))
    model = ssm.to_state_space_model()

    def run():
        result = particle_filter(
            model,
            observations,
            n_particles,
            backend=config.backend,
            seed=1,
            n_shards=4,
        )
        return result.filtered_means

    plan = FaultPlan(failures={("pf.init", 0): 1, ("pf.shard", 2): 1})
    return f"particle_filter(steps={steps}, N={n_particles})", run, plan


def run_experiment(config: BenchConfig = BenchConfig()):
    """Time each workload with injection disabled and enabled.

    Returns ``(rows, outputs_identical)`` where each row is
    ``(workload, faults_off_seconds, faults_on_seconds, on_off_ratio)``
    and ``outputs_identical`` records that recovering from the injected
    failures reproduced the failure-free output byte for byte.
    """
    rows = []
    identical = {}
    for name, run, plan in (
        _mapreduce_workload(config),
        _particle_filter_workload(config),
    ):
        run()  # warm caches/pools outside both timed regions
        off_output, off_seconds = timed(run)
        with injected(plan):
            on_output, on_seconds = timed(run)
        identical[name] = bool(
            np.array_equal(np.asarray(off_output), np.asarray(on_output))
        )
        rows.append(
            (name, off_seconds, on_seconds, on_seconds / off_seconds)
        )
    return rows, identical


def test_fault_overhead(benchmark, bench_config):
    rows, identical = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = ["workload", "faults_off_seconds", "faults_on_seconds", "on/off"]
    save_report("BENCH_faults", format_table(headers, rows))
    save_json(
        "BENCH_faults",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "faults_off_seconds is the legacy zero-overhead path (no "
                "plan, no policy; the acceptance bar is <= 1.1x the "
                "pre-faults baseline); faults_on_seconds recovers from a "
                "seeded FaultPlan killing real map/reduce tasks and "
                "particle shards. Outputs are byte-identical either way."
            ),
        },
    )
    # Recovery must never change results.
    assert all(identical.values()), identical
