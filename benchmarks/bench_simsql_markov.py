"""AN-MC — SimSQL database-valued Markov chains (§2.1).

Exercises versioned, recursively defined stochastic tables: a two-table
chain where A[i] feeds B[i] feeds A[i+1], checked for exact recursion
semantics, plus throughput of chain simulation sequentially vs on the
MapReduce substrate (identical realizations required), and the memory
effect of version retention windows.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._util import format_table, save_report
from repro.engine import Database, Table
from repro.mapreduce import Cluster
from repro.simsql import (
    DatabaseMarkovChain,
    TableTransition,
    row_wise_transition,
    run_transition_on_cluster,
)
from repro.stats import make_rng

ROWS = 400
STEPS = 30


def build_chain(retain=None) -> DatabaseMarkovChain:
    def initial(state, rng):
        return Table.from_rows(
            "wealth",
            [{"aid": i, "w": 100.0} for i in range(ROWS)],
        )

    update = lambda row, state, rng: {
        "aid": row["aid"],
        "w": row["w"] * float(np.exp(rng.normal(0, 0.02))),
    }
    return DatabaseMarkovChain(
        Database(),
        [
            TableTransition(
                "wealth",
                row_wise_transition("wealth", update),
                initial=initial,
            )
        ],
        retain=retain,
    )


def run_experiment():
    # Sequential chain timing.
    chain = build_chain()
    start = time.perf_counter()
    store = chain.run(STEPS, make_rng(0))
    sequential_time = time.perf_counter() - start

    # MapReduce execution of a single transition, across worker counts,
    # must match exactly (split-order independence).
    table = store.get("wealth", STEPS).copy("wealth")
    update = lambda row, rng: {
        "aid": row["aid"],
        "w": row["w"] * float(np.exp(rng.normal(0, 0.02))),
    }
    mr_results = {}
    mr_counters = {}
    for workers in (1, 4, 8):
        out, counters = run_transition_on_cluster(
            Cluster(workers), table, update, seed=9, tick=0
        )
        mr_results[workers] = out.column_values("w")
        mr_counters[workers] = counters

    # Retention windows bound memory.
    retained = build_chain(retain=2).run(STEPS, make_rng(0))
    full_rows = store.total_rows()
    retained_rows = retained.total_rows()

    rows = [
        ("sequential chain", f"{STEPS} ticks x {ROWS} rows",
         f"{sequential_time:.3f}s"),
        ("versions kept (full)", full_rows, "rows"),
        ("versions kept (retain=2)", retained_rows, "rows"),
        ("MapReduce shuffle/tick",
         mr_counters[4].records_shuffled, "records"),
    ]
    return rows, mr_results, full_rows, retained_rows, store


def test_simsql_markov(benchmark):
    rows, mr_results, full_rows, retained_rows, store = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(["quantity", "value", "unit"], rows)
    save_report("AN-MC_simsql_markov_chains", table)

    # Chain produced all versions; retention pruned them.
    assert full_rows == ROWS * (STEPS + 1)
    assert retained_rows == ROWS * 2
    # MapReduce realization identical across worker counts.
    assert mr_results[1] == mr_results[4] == mr_results[8]
    # States genuinely evolve (Markov property exercised).
    first = store.get("wealth", 0).column_array("w")
    last = store.get("wealth", STEPS).column_array("w")
    assert not np.allclose(first, last)
