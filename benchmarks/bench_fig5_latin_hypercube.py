"""FIG5 — Latin hypercube designs (paper Figure 5).

Regenerates the 2-factor, 9-run orthogonal LH with levels -4..4, checks
the Latin property and exact column orthogonality, and quantifies the
paper's caveat that randomized LHs "may not work well unless r >> n" by
comparing maximum column correlations of randomized vs nearly orthogonal
LHs at several sizes.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.doe import (
    figure5_design,
    is_latin,
    max_abs_correlation,
    maximin_distance,
    nearly_orthogonal_lh,
    randomized_lh,
)
from repro.stats import make_rng


def run_experiment():
    fig5 = figure5_design()
    comparisons = []
    for factors, runs in ((2, 9), (4, 17), (7, 17)):
        random_corrs = [
            max_abs_correlation(randomized_lh(factors, runs, make_rng(s)))
            for s in range(10)
        ]
        nolh = nearly_orthogonal_lh(
            factors, runs, make_rng(100 + factors), iterations=1500
        )
        comparisons.append(
            (
                factors,
                runs,
                float(np.mean(random_corrs)),
                max_abs_correlation(nolh),
            )
        )
    return fig5, comparisons


def test_fig5_latin_hypercube(benchmark):
    fig5, comparisons = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        (run + 1, int(fig5[run, 0]), int(fig5[run, 1]))
        for run in range(fig5.shape[0])
    ]
    table = format_table(["Run", "x1", "x2"], rows)
    table += (
        f"\n\nLatin: {is_latin(fig5)}, "
        f"column correlation: {max_abs_correlation(fig5):.6f}, "
        f"maximin distance: {maximin_distance(fig5):.3f}"
        "\n\nrandomized vs nearly orthogonal LH "
        "(max |column correlation|):\n"
    )
    table += format_table(
        ["factors", "runs", "randomized (mean of 10)", "NOLH"],
        comparisons,
    )
    save_report("FIG5_latin_hypercube", table)

    assert is_latin(fig5)
    assert fig5.shape == (9, 2)
    assert max_abs_correlation(fig5) == 0.0
    assert set(fig5[:, 0]) == set(np.arange(-4.0, 5.0))
    # NOLH beats randomized LH on orthogonality at every tested size.
    for _, _, random_corr, nolh_corr in comparisons:
        assert nolh_corr <= random_corr + 1e-12
