"""BENCH_engine_columnar — row-at-a-time vs columnar batch execution.

Runs the same relational queries through both executors of
:mod:`repro.engine` — the Volcano-style row iterator and the columnar
batch executor — verifying the byte-identity contract (same rows, same
``result_fingerprint``) and recording wall-clock speedups to
``benchmarks/results/BENCH_engine_columnar.json`` for the perf
trajectory.

The headline claim is the filter+aggregate scan: at 100k rows the
columnar executor must be at least 3x faster than the row executor.
Joins and group-bys are recorded alongside so regressions in the
factorized hash-join/grouping paths are visible too.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    save_json,
    save_report,
    timed,
)
from repro.engine import Database, Schema
from repro.ensemble.store import result_fingerprint

MODES = ("row", "columnar")

REGIONS = ["east", "west", "north", "south"]


def build_database(num_rows: int, seed: int = 7) -> Database:
    """A synthetic workload table plus a small join dimension."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, num_rows)
    ys = rng.integers(0, 100, num_rows)
    db = Database()
    db.create_table(
        "big", Schema.of(pid=int, region=str, x=float, y=int)
    )
    big = db.table("big")
    for i in range(num_rows):
        big.insert(
            {
                "pid": i,
                "region": REGIONS[i % 4] if i % 11 else None,
                "x": float(xs[i]),
                "y": int(ys[i]) if i % 13 else None,
            }
        )
    db.create_table("dim", Schema.of(region=str, weight=float))
    for j, name in enumerate(REGIONS):
        db.table("dim").insert({"region": name, "weight": 0.5 + 0.25 * j})
    return db


def workloads(num_rows: int):
    return [
        (
            f"filter_aggregate(rows={num_rows})",
            "SELECT count(*) AS n, sum(x) AS s, avg(x) AS m, max(y) AS hi "
            "FROM big WHERE x > 0.25 AND y < 80",
        ),
        (
            f"group_by(rows={num_rows})",
            "SELECT region, count(*) AS n, sum(x) AS s FROM big "
            "WHERE y IS NOT NULL GROUP BY region",
        ),
        (
            f"join_group(rows={num_rows})",
            "SELECT d.region, count(*) AS n FROM big b JOIN dim d "
            "ON b.region = d.region WHERE b.x > 0.5 GROUP BY d.region",
        ),
    ]


def run_experiment(config: BenchConfig = BenchConfig()):
    num_rows = 5_000 if config.quick else 100_000
    db = build_database(num_rows)
    rows = []
    speedups = {}
    identical = {}
    for workload_name, sql in workloads(num_rows):
        results = {}
        seconds = {}
        for mode in MODES:
            db.sql(sql, execution=mode)  # warm caches outside the timing
            results[mode], seconds[mode] = timed(db.sql, sql, execution=mode)
        matches = result_fingerprint(results["row"]) == result_fingerprint(
            results["columnar"]
        )
        identical[workload_name] = matches
        speedups[workload_name] = seconds["row"] / seconds["columnar"]
        rows.append(
            (
                workload_name,
                seconds["row"],
                seconds["columnar"],
                speedups[workload_name],
                matches,
            )
        )
    return rows, speedups, identical


def test_engine_columnar(benchmark, bench_config):
    rows, speedups, identical = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = ["workload", "row s", "columnar s", "speedup", "identical"]
    save_report("BENCH_engine_columnar", format_table(headers, rows))
    save_json(
        "BENCH_engine_columnar",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "speedup is row_seconds / columnar_seconds on the same "
                "query; byte identity is checked via result_fingerprint"
            ),
        },
    )

    # The byte-identity contract is unconditional.
    assert all(identical.values()), identical
    # The headline claim: columnar filter+aggregate is >= 3x at 100k rows.
    headline = next(s for name, s in speedups.items() if "filter_aggregate" in name)
    assert headline >= (1.2 if bench_config.quick else 3.0)


if __name__ == "__main__":
    config = BenchConfig.from_env()
    bench_rows, bench_speedups, bench_identical = run_experiment(config)
    table = format_table(
        ["workload", "row s", "columnar s", "speedup", "identical"],
        bench_rows,
    )
    save_report("BENCH_engine_columnar", table)
