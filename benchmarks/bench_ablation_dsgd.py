"""ABL-SP — ablations of the DSGD stratification choices (§2.2).

1. **Stratum count.**  Three strata are the minimum guaranteeing
   conflict-free parallel updates for a tridiagonal system; more strata
   shrink per-stratum parallelism but change neither correctness nor
   shuffle order.  We sweep 3/5/9 strata.
2. **Switching schedule.**  The paper's convergence argument needs the
   regenerative random switching "with equal time in each stratum in the
   long run".  A fixed cyclic order is compared — in practice it also
   converges here (equal time is satisfied), making the random schedule
   a robustness rather than necessity choice on this problem.
3. **Worker count.**  Within-stratum updates are disjoint, so the final
   solution quality must be independent of how rows are partitioned.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.harmonize import SGDConfig, dsgd_solve, strata_indices
from repro.harmonize.dsgd import _row_gradient_update  # ablation reuse
from repro.stats import (
    least_squares_loss,
    make_rng,
    random_diagonally_dominant_system,
    thomas_solve,
)

M = 600
EPOCHS = 60


def dsgd_fixed_order(system, rng, config, num_strata=3):
    """DSGD with a fixed (non-random) stratum visiting order."""
    x = np.zeros(system.size)
    a = config.resolve_step_scale(system)
    strata = strata_indices(system.size, num_strata)
    losses = [least_squares_loss(system, x)]
    for epoch in range(config.epochs):
        eps = a * (epoch + 1) ** (-config.step_exponent)
        for stratum in strata:  # fixed order every epoch
            for _ in range(stratum.size):
                i = int(stratum[rng.integers(0, stratum.size)])
                _row_gradient_update(system, x, i, eps)
        losses.append(least_squares_loss(system, x))
    return x, losses


def run_experiment():
    system = random_diagonally_dominant_system(M, make_rng(0))
    exact = thomas_solve(system)
    config = SGDConfig(epochs=EPOCHS, step_exponent=0.6)

    def rel_error(x):
        return float(np.linalg.norm(x - exact) / np.linalg.norm(exact))

    strata_rows = []
    for num_strata in (3, 5, 9):
        result = dsgd_solve(
            system, make_rng(1), config, num_workers=4,
            num_strata=num_strata,
        )
        strata_rows.append(
            (num_strata, result.final_loss, rel_error(result.x),
             result.records_shuffled)
        )

    random_sched = dsgd_solve(system, make_rng(2), config, num_workers=4)
    fixed_x, fixed_losses = dsgd_fixed_order(system, make_rng(2), config)
    schedule_rows = [
        ("random (regenerative)", random_sched.final_loss,
         rel_error(random_sched.x)),
        ("fixed cyclic", fixed_losses[-1], rel_error(fixed_x)),
    ]

    worker_rows = []
    for workers in (1, 4, 16):
        result = dsgd_solve(
            system, make_rng(3), config, num_workers=workers
        )
        worker_rows.append((workers, result.final_loss, rel_error(result.x)))
    return strata_rows, schedule_rows, worker_rows


def test_ablation_dsgd(benchmark):
    strata_rows, schedule_rows, worker_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = "stratum count (m=600, 60 epochs):\n"
    table += format_table(
        ["strata", "final loss", "rel. error", "records shuffled"],
        strata_rows,
    )
    table += "\n\nswitching schedule:\n"
    table += format_table(
        ["schedule", "final loss", "rel. error"], schedule_rows
    )
    table += "\n\nworker count (same stratification):\n"
    table += format_table(
        ["workers", "final loss", "rel. error"], worker_rows
    )
    save_report("ABL-SP_dsgd_ablation", table)

    # The ablation claim is *insensitivity*: stratum count, switching
    # schedule, and worker count all land at comparable quality (none is
    # a hidden load-bearing choice).
    errors = [row[2] for row in strata_rows]
    assert max(errors) - min(errors) < 0.05
    schedule_errors = [row[2] for row in schedule_rows]
    assert max(schedule_errors) - min(schedule_errors) < 0.05
    worker_errors = [row[2] for row in worker_rows]
    assert max(worker_errors) - min(worker_errors) < 0.05
    # And all of them made real progress on the loss.
    assert all(row[1] < 20.0 for row in strata_rows)
