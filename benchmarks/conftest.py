"""Pytest knobs for the benchmark harness.

``pytest benchmarks/ --quick`` runs every size-aware benchmark at small
problem sizes (CI exercises the harness in seconds instead of minutes);
``--bench-backend {serial,thread,process}`` selects the
:mod:`repro.parallel` backend for the parallelized hot paths.  Both fall
back to the ``REPRO_BENCH_QUICK`` / ``REPRO_BENCH_BACKEND`` environment
variables so non-pytest entry points behave the same.
"""

from __future__ import annotations

import pytest

from benchmarks._util import BenchConfig


def pytest_addoption(parser):
    group = parser.getgroup("repro-benchmarks")
    group.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks at small problem sizes (CI smoke mode)",
    )
    group.addoption(
        "--bench-backend",
        default=None,
        help="repro.parallel backend for benchmark hot paths "
        "(serial, thread, process)",
    )


@pytest.fixture
def bench_config(request) -> BenchConfig:
    """Benchmark knobs: pytest flags first, environment fallback second."""
    env = BenchConfig.from_env()
    backend = request.config.getoption("--bench-backend") or env.backend
    quick = request.config.getoption("--quick") or env.quick
    return BenchConfig(quick=quick, backend=backend)
