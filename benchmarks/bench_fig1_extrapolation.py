"""FIG1 — the dangers of extrapolation (paper Figure 1).

Fit a simple time-series model to synthetic median housing prices
1970-2006 and extrapolate to 2011; the prediction "fails spectacularly"
because the 2006 regime change is invisible to the trend.  Shape checks:
the extrapolation over-predicts every post-collapse year, massively so by
2011, while the same procedure on a collapse-free series stays accurate.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.stats import (
    extrapolate_and_score,
    fit_polynomial_trend,
    synthetic_housing_prices,
)


def run_experiment():
    years, prices = synthetic_housing_prices()
    report = extrapolate_and_score(years, prices, fit_through=2006, degree=2)

    # Control: no regime change -> extrapolation fine.
    smooth_years = years.astype(float)
    smooth_prices = prices[0] * np.exp(
        0.055 * (smooth_years - smooth_years[0])
    )
    control = extrapolate_and_score(
        smooth_years, smooth_prices, fit_through=2006, degree=2
    )
    return years, prices, report, control


def test_fig1_extrapolation(benchmark):
    years, prices, report, control = benchmark.pedantic(
        run_experiment, rounds=3, iterations=1
    )
    rows = []
    for t, predicted, actual in zip(
        report.horizon_times, report.predicted, report.actual
    ):
        rows.append(
            (int(t), actual, predicted, (predicted - actual) / actual)
        )
    table = format_table(
        ["year", "actual", "trend forecast", "rel. error"], rows
    )
    table += (
        f"\n\nterminal over-prediction (2011): "
        f"{report.terminal_gap:+.1%}"
        f"\ncontrol series (no collapse) max |rel err|: "
        f"{control.max_relative_error:.1%}"
    )
    save_report("FIG1_extrapolation", table)

    # Shape assertions (the Figure 1 phenomenon):
    assert np.all(report.errors > 0), "forecast should overshoot post-2006"
    assert report.terminal_gap > 0.4, "2011 overshoot should be dramatic"
    assert control.max_relative_error < 0.1, "no-collapse control stays sane"
