"""FIG4 — the main-effects plot of paper Figure 4.

Runs a stochastic simulator with a known linear response at the Figure 3
resolution III design and reproduces the main-effects plot values (the
per-factor low/high response means) plus the half-normal diagnostic the
paper mentions.  Shape checks: estimated effects match the planted
coefficients, and the active-factor classification finds exactly the
planted factors — from only 8 runs instead of 2^7 = 128.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.doe import resolution_iii
from repro.metamodel import (
    classify_active_effects,
    half_normal_points,
    main_effects_table,
    render_main_effects_plot,
)
from repro.stats import make_rng

#: Planted main-effect coefficients (per ±1 coding; effect = 2 * beta).
TRUE_BETA = np.array([2.0, 0.0, -1.5, 0.0, 0.8, 0.0, 0.0])
NOISE_SD = 0.1
REPLICATIONS = 5


def simulate_response(design: np.ndarray, rng) -> np.ndarray:
    responses = np.zeros(design.shape[0])
    for _ in range(REPLICATIONS):
        responses += (
            10.0
            + design @ TRUE_BETA
            + rng.normal(0, NOISE_SD, size=design.shape[0])
        )
    return responses / REPLICATIONS


def run_experiment():
    design = resolution_iii(7)
    responses = simulate_response(design, make_rng(0))
    effects = main_effects_table(design, responses)
    quantiles, sorted_abs = half_normal_points(
        [e.effect for e in effects]
    )
    active = classify_active_effects([e.effect for e in effects])
    return design, effects, quantiles, sorted_abs, active


def test_fig4_main_effects(benchmark):
    design, effects, quantiles, sorted_abs, active = benchmark(
        run_experiment
    )
    table = render_main_effects_plot(effects)
    table += "\n\nhalf-normal (Daniel) plot points:\n"
    table += format_table(
        ["half-normal quantile", "|effect| (sorted)"],
        list(zip(quantiles, sorted_abs)),
    )
    table += (
        f"\n\nactive factors (planted: x1, x3, x5): "
        f"{[f'x{i + 1}' for i in active]}"
        f"\nruns used: {design.shape[0]} (full factorial would need 128)"
    )
    save_report("FIG4_main_effects", table)

    for entry, beta in zip(effects, TRUE_BETA):
        assert entry.effect == (
            __import__("pytest").approx(2.0 * beta, abs=0.2)
        )
    assert set(active) == {0, 2, 4}
