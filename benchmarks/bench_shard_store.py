"""BENCH_shard — the sharded data plane: store gc/ls + co-partitioned join.

Two workloads, one artifact:

* **Store maintenance across shard counts** — the same content-addressed
  corpus (pinned mtimes, oldest-first eviction order) is written into a
  flat :class:`~repro.ensemble.store.RunStore` and into
  :class:`~repro.ensemble.store.ShardedRunStore` layouts at several
  shard counts, then ``ls`` and a size-bounded ``gc`` are timed.  The
  headline is not speed — per-shard stat passes and the fanned-out
  eviction batches must produce *byte-identical eviction sets in
  identical order* at every shard count, with gc overhead staying
  bounded relative to the flat store.
* **Co-partitioned join vs shuffle join** — a fact/dim equi-join runs
  through the plain columnar hash join (the "shuffle" baseline: all
  rows of both sides flow through one build/probe), then through the
  co-partitioned executor (shard-i-against-shard-i, no redistribution)
  on the serial, thread, and process backends.  Fingerprints must match
  the baseline exactly; the recorded ``shuffle_bytes_avoided`` is the
  payload volume that never had to move.

Headline claims (asserted at full size):

* gc eviction sets and orders are identical at every shard count;
* join fingerprints are identical to the hash-join baseline on every
  backend, and the optimizer actually picked ``co_partitioned``;
* serial co-partitioned execution costs at most 3x the plain hash
  join, and sharded gc costs at most 3x flat gc (overhead bounded);
* the best parallel backend >= 1.1x over the hash-join baseline when
  ``usable_cpus > 1`` (reported either way, asserted only with real
  parallelism).
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    host_info,
    save_json,
    save_report,
    timed,
)
from repro.engine import Database, Schema, parse_select
from repro.engine import plan as lp
from repro.engine.morsel import _SCAN_CACHE
from repro.ensemble.store import RunStore, ShardedRunStore, result_fingerprint

JOIN_SQL = (
    "SELECT f.k, d.mult FROM fact f JOIN dim d ON f.k = d.k"
)


# -- store maintenance across shard counts --------------------------------


def _populate(store, count, payload_floats, base_mtime=1_700_000_000.0):
    """``count`` entries with pinned, shuffled mtimes (deterministic gc)."""
    rng = np.random.default_rng(11)
    keys = []
    for i in range(count):
        key = f"{i:03d}" + "c" * 61  # 64 hex-ish chars, distinct prefixes
        store.put(
            key,
            {"series": rng.uniform(0.0, 1.0, payload_floats), "tag": i},
            scenario="bench.shard",
            seed=i,
        )
        mtime = base_mtime + ((i * 7) % count) * 60.0
        run_path = os.path.join(store._candidate_dirs(key)[0], "run.json")
        os.utime(run_path, (mtime, mtime))
        keys.append(key)
    return keys


def _store_for(root, shards, backend):
    if shards == 0:
        return RunStore(root)
    return ShardedRunStore(root, shards=shards, backend=backend)


def store_experiment(tmp_root, config: BenchConfig):
    count = 16 if config.quick else 96
    payload_floats = 2_000 if config.quick else 40_000
    shard_counts = [0, 2, 4, 8]  # 0 = flat baseline
    rows = []
    evictions = {}
    gc_seconds = {}
    for shards in shard_counts:
        root = os.path.join(tmp_root, f"shards-{shards}")
        store = _store_for(root, shards, config.backend)
        _populate(store, count, payload_floats)
        budget = store.total_bytes() // 2
        _, ls_s = timed(store.ls, with_meta=False)
        evicted, gc_s = timed(store.gc, max_total_bytes=budget)
        survivors, _ = store.summary()
        label = "flat" if shards == 0 else f"shard-{shards}"
        evictions[label] = list(evicted)
        gc_seconds[label] = gc_s
        rows.append((label, count, ls_s, gc_s, len(evicted), survivors))
    identical = all(
        keys == evictions["flat"] for keys in evictions.values()
    )
    return {
        "rows": rows,
        "gc_seconds": gc_seconds,
        "evictions_identical": identical,
        "entries": count,
        "evicted": len(evictions["flat"]),
    }


# -- co-partitioned join vs shuffle join ----------------------------------


def build_database(num_rows: int, dim_rows: int, seed: int = 5) -> Database:
    rng = np.random.default_rng(seed)
    ks = rng.integers(0, dim_rows, num_rows)
    xs = rng.uniform(0.0, 1.0, num_rows)
    db = Database()
    db.create_table("fact", Schema.of(k=int, x=float))
    db.create_table("dim", Schema.of(k=int, mult=float))
    fact = db.table("fact")
    for i in range(num_rows):
        fact.insert({"k": int(ks[i]), "x": float(xs[i])})
    dim = db.table("dim")
    for k in range(dim_rows):
        dim.insert({"k": k, "mult": float(k) * 0.5})
    return db


def _join_modes(partitions: int):
    return [
        ("hash", None, "serial"),
        ("co-serial", partitions, "serial"),
        ("co-thread", partitions, "thread"),
        ("co-process", partitions, "process"),
    ]


def _chosen_algorithm(db):
    plan = db.optimize_plan(parse_select(JOIN_SQL))
    joins = [n for n in lp.walk(plan) if isinstance(n, lp.Join)]
    return joins[0].algorithm


def _run_join(db, partitions, backend, morsel_size):
    previous = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend
    if partitions is not None:
        db.partition_table("fact", "k", partitions)
        db.partition_table("dim", "k", partitions)
    try:
        if partitions is None:
            return db.sql(JOIN_SQL, execution="columnar")
        assert _chosen_algorithm(db) == "co_partitioned"
        return db.sql(JOIN_SQL, morsel_size=morsel_size)
    finally:
        for name in ("fact", "dim"):
            if db.partitioning(name) is not None:
                db.unpartition_table(name)
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def join_experiment(config: BenchConfig):
    num_rows = 4_000 if config.quick else 120_000
    dim_rows = 64 if config.quick else 512
    usable = host_info()["usable_cpus"]
    partitions = max(2, min(usable, 8))
    morsel_size = max(1, num_rows // (2 * partitions))
    db = build_database(num_rows, dim_rows)

    fingerprints = {}
    seconds = {}
    rows = []
    for mode, parts, backend in _join_modes(partitions):
        _SCAN_CACHE.clear()
        _run_join(db, parts, backend, morsel_size)  # warm-up
        result, elapsed = timed(
            _run_join, db, parts, backend, morsel_size
        )
        fingerprints[mode] = result_fingerprint(result)
        seconds[mode] = elapsed
        rows.append(
            (
                mode,
                num_rows,
                elapsed,
                seconds["hash"] / elapsed,
                fingerprints[mode] == fingerprints["hash"],
            )
        )
    identical = len(set(fingerprints.values())) == 1
    speedups = {
        "serial_vs_hash": seconds["hash"] / seconds["co-serial"],
        "thread_vs_hash": seconds["hash"] / seconds["co-thread"],
        "process_vs_hash": seconds["hash"] / seconds["co-process"],
    }
    return {
        "rows": rows,
        "speedups": speedups,
        "identical": identical,
        "num_rows": num_rows,
        "dim_rows": dim_rows,
        "partitions": partitions,
        "morsel_size": morsel_size,
        "usable_cpus": usable,
    }


# -- harness ---------------------------------------------------------------

STORE_HEADERS = [
    "layout", "entries", "ls s", "gc s", "evicted", "survivors",
]
JOIN_HEADERS = ["mode", "rows", "seconds", "x vs hash", "identical"]


def run_experiment(config: BenchConfig = BenchConfig()):
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp_root:
        store = store_experiment(tmp_root, config)
    join = join_experiment(config)
    return {"store": store, "join": join, "usable_cpus": join["usable_cpus"]}


def _record(outcome, quick):
    store, join = outcome["store"], outcome["join"]
    report = (
        "store maintenance (gc/ls across shard counts)\n"
        + format_table(STORE_HEADERS, store["rows"])
        + "\n\nco-partitioned join vs shuffle (hash) join\n"
        + format_table(JOIN_HEADERS, join["rows"])
    )
    save_report("BENCH_shard", report)
    save_json(
        "BENCH_shard",
        {
            "config": {
                "quick": quick,
                "store_entries": store["entries"],
                "join_rows": join["num_rows"],
                "dim_rows": join["dim_rows"],
                "partitions": join["partitions"],
                "morsel_size": join["morsel_size"],
                "usable_cpus": outcome["usable_cpus"],
            },
            "store": {
                "columns": STORE_HEADERS,
                "rows": [list(row) for row in store["rows"]],
                "gc_seconds": store["gc_seconds"],
                "evictions_identical": store["evictions_identical"],
                "evicted": store["evicted"],
            },
            "join": {
                "columns": JOIN_HEADERS,
                "rows": [list(row) for row in join["rows"]],
                "speedups": join["speedups"],
                "identical": join["identical"],
            },
            "note": (
                "store rows compare the flat RunStore against "
                "ShardedRunStore layouts on one corpus with pinned "
                "mtimes — gc eviction sets/orders must be identical at "
                "every shard count; join rows compare the plain hash "
                "join against the co-partitioned executor "
                "(shard-i-vs-shard-i, no shuffle) with speedups "
                "relative to the hash baseline"
            ),
        },
    )


def _assert_claims(outcome, quick):
    store, join = outcome["store"], outcome["join"]
    assert store["evictions_identical"], "gc eviction sets diverged"
    assert join["identical"], "join fingerprints diverged"
    # Overhead stays bounded when sharding/partitioning buys nothing.
    flat_gc = store["gc_seconds"]["flat"]
    for label, gc_s in store["gc_seconds"].items():
        assert gc_s <= max(flat_gc * 3.0, flat_gc + 0.5), (label, gc_s)
    assert join["speedups"]["serial_vs_hash"] >= (
        0.25 if quick else 1 / 3.0
    ), join["speedups"]
    # Parallel speedup, asserted only with real parallelism.
    if outcome["usable_cpus"] > 1 and not quick:
        best = max(
            join["speedups"]["thread_vs_hash"],
            join["speedups"]["process_vs_hash"],
        )
        assert best >= 1.1, join["speedups"]


def test_shard_store(benchmark, bench_config):
    outcome = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    _record(outcome, bench_config.quick)
    _assert_claims(outcome, bench_config.quick)


if __name__ == "__main__":
    config = BenchConfig.from_env()
    result = run_experiment(config)
    _record(result, config.quick)
    _assert_claims(result, config.quick)
