"""AN-WF — wildfire data assimilation, transition vs sensor proposal (§3.2).

The Xue et al. pipeline: a stochastic fire spreads over a grid, sensors
stream noisy temperatures, and particle filters estimate the fire state.
Shape checks (the paper's narrative): assimilating sensor data beats
blind simulation; the sensor-aware proposal of [57] improves on the
transition proposal of [56] on average across replicates.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.assimilation import (
    WildfireModel,
    WildfireParameters,
    wildfire_bootstrap_filter,
    wildfire_sensor_filter,
)
from repro.stats import make_rng

STEPS = 12
PARTICLES = 40
REPLICATES = 4


def run_experiment():
    params = WildfireParameters(
        height=10, width=10, wind=(0.25, 0.1), sensor_fraction=0.5
    )
    rows = []
    blind_errors, boot_errors, sensor_errors = [], [], []
    for replicate in range(REPLICATES):
        model = WildfireModel(params, seed=replicate)
        rng = make_rng(100 + replicate)
        truth = model.simulate(STEPS, rng)
        observations = [model.observe(s, rng) for s in truth[1:]]

        blind = model.simulate(STEPS, make_rng(200 + replicate))[1:]
        blind_err = float(
            np.mean(
                [model.state_error(b, t) for b, t in zip(blind, truth[1:])]
            )
        )
        boot = wildfire_bootstrap_filter(
            model, observations, truth[1:], PARTICLES,
            make_rng(300 + replicate),
        )
        sensor = wildfire_sensor_filter(
            model, observations, truth[1:], PARTICLES,
            make_rng(400 + replicate), kde_samples=6,
        )
        blind_errors.append(blind_err)
        boot_errors.append(boot.average_error)
        sensor_errors.append(sensor.average_error)
        rows.append(
            (
                replicate,
                blind_err,
                boot.average_error,
                sensor.average_error,
                boot.effective_sample_sizes.mean(),
                sensor.effective_sample_sizes.mean(),
            )
        )
    return rows, blind_errors, boot_errors, sensor_errors


def test_wildfire_assimilation(benchmark):
    rows, blind, boot, sensor = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "replicate",
            "blind sim error",
            "bootstrap PF error",
            "sensor-aware PF error",
            "ESS (boot)",
            "ESS (sensor)",
        ],
        rows,
    )
    table += (
        f"\n\nmeans: blind {np.mean(blind):.3f}, "
        f"bootstrap {np.mean(boot):.3f}, "
        f"sensor-aware {np.mean(sensor):.3f} "
        f"(cell misclassification; {PARTICLES} particles, "
        f"{STEPS} steps, {REPLICATES} replicates)"
    )
    save_report("AN-WF_wildfire_assimilation", table)

    # Assimilation beats blind simulation decisively.
    assert np.mean(boot) < np.mean(blind) - 0.03
    # The sensor-aware proposal is at least as accurate on average
    # (the paper reports "potential improvements in accuracy").
    assert np.mean(sensor) <= np.mean(boot) + 0.01
