"""ABL-ALG1 — intervention threshold sweep (§2.4 policy design).

Indemics's point is *interactive* policy experimentation: the
experimenter tunes intervention rules between observation times.  Here
the Algorithm 1 trigger threshold is swept: lower thresholds trigger
earlier and protect the target group more; very high thresholds never
trigger and match the baseline — the dose-response curve an analyst
would chart before recommending a policy.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.epidemics import (
    DiseaseParameters,
    IndemicsEngine,
    VaccinatePreschoolersPolicy,
    generate_population,
    run_with_policy,
)
from repro.stats import make_rng

DAYS = 55
THRESHOLDS = (0.005, 0.05, 0.2, 0.9)
REPLICATES = 2


def preschool_attack_rate(engine, preschool) -> float:
    preschool = set(preschool)
    infected = sum(
        1
        for pid, record in engine.process.health.items()
        if pid in preschool and record.infected_on_day is not None
    )
    return infected / max(len(preschool), 1)


def run_experiment():
    population = generate_population(250, make_rng(0))
    preschool = population.preschoolers()
    rows = []
    rates = {}
    trigger_day = {}
    for threshold in THRESHOLDS:
        ar = []
        days = []
        for seed in range(REPLICATES):
            engine = IndemicsEngine(
                population,
                DiseaseParameters(vaccine_efficacy=0.95),
                seed=seed,
            )
            engine.seed_infections(6)
            log = run_with_policy(
                engine, VaccinatePreschoolersPolicy(threshold), days=DAYS
            )
            ar.append(preschool_attack_rate(engine, preschool))
            triggered = [e for e in log if e.triggered]
            days.append(triggered[0].day if triggered else None)
        rates[threshold] = float(np.mean(ar))
        fired = [d for d in days if d is not None]
        trigger_day[threshold] = (
            float(np.mean(fired)) if fired else None
        )
        rows.append(
            (
                threshold,
                trigger_day[threshold],
                rates[threshold],
            )
        )
    # Baseline: never intervene.
    baseline = []
    for seed in range(REPLICATES):
        engine = IndemicsEngine(
            population, DiseaseParameters(vaccine_efficacy=0.95), seed=seed
        )
        engine.seed_infections(6)
        run_with_policy(engine, None, days=DAYS)
        baseline.append(preschool_attack_rate(engine, preschool))
    return rows, rates, trigger_day, float(np.mean(baseline))


def test_ablation_intervention(benchmark):
    rows, rates, trigger_day, baseline = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        ["trigger threshold", "mean trigger day", "preschool attack rate"],
        rows,
    )
    table += f"\n\nbaseline (no policy) preschool attack rate: {baseline:.3f}"
    save_report("ABL-ALG1_intervention_threshold", table)

    # Early triggers protect better than late ones.
    assert rates[0.005] < rates[0.2]
    # An unreachable threshold behaves like the baseline.
    assert trigger_day[0.9] is None
    assert abs(rates[0.9] - baseline) < 0.1
    # Lower thresholds fire earlier.
    assert trigger_day[0.005] <= trigger_day[0.05]
