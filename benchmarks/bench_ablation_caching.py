"""ABL-RC — ablations of the result-caching design choices (§2.3).

Two choices the paper motivates implicitly are isolated here:

1. **Deterministic cycling vs random reuse.**  The paper: "the
   deterministic cycling scheme produces a stratified sample of the
   outputs of M1 and helps minimize estimator variance."  We compare the
   estimator variance of cycling against i.i.d. random selection from
   the cache at the same alpha.
2. **Chained caching (extension).**  For a 3-stage chain, the
   coordinate-descent optimum of the generalized g is compared against
   no caching and against caching only the first stage.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.composite import (
    ArrivalProcessModel,
    CallableModel,
    QueueModel,
    estimate_chain_statistics,
    optimize_chain_alphas,
    run_chain_with_caching,
    run_with_caching,
)
from repro.stats import make_rng

ALPHA = 0.1
N = 150
REPLICATIONS = 100


def random_reuse_estimate(m1, m2, n, alpha, rng):
    """Result caching with i.i.d. random (not cyclic) cache selection."""
    m_n = max(int(np.ceil(alpha * n)), 1)
    cache = [m1.run(None, rng) for _ in range(m_n)]
    samples = np.empty(n)
    for i in range(n):
        samples[i] = float(m2.run(cache[int(rng.integers(m_n))], rng))
    return float(samples.mean())


def run_experiment():
    m1 = ArrivalProcessModel(cost=5.0)
    m2 = QueueModel(cost=0.5)

    cyclic = []
    random_pick = []
    for seed in range(REPLICATIONS):
        cyclic.append(
            run_with_caching(
                m1, m2, n=N, alpha=ALPHA, rng=make_rng(seed)
            ).estimate
        )
        random_pick.append(
            random_reuse_estimate(m1, m2, N, ALPHA, make_rng(1000 + seed))
        )
    cyclic_var = float(np.var(cyclic, ddof=1))
    random_var = float(np.var(random_pick, ddof=1))

    # Chained caching ablation on a 3-stage chain.
    def stage(name, cost, noise):
        return CallableModel(
            name,
            lambda x, rng: (x or 0.0) + noise * float(rng.normal()),
            cost=cost,
        )

    # Expensive upstream stage with a *small* variance share: the regime
    # where caching pays (the k-stage analogue of V2 << V1).
    models = [
        stage("a", cost=20.0, noise=0.3),
        stage("b", cost=2.0, noise=1.0),
        stage("c", cost=0.2, noise=2.0),
    ]
    stats = estimate_chain_statistics(
        models, make_rng(7), branching=4, roots=60
    )
    optimal, _ = optimize_chain_alphas(stats)

    def chain_efficiency(alphas):
        estimates = []
        cost = None
        for seed in range(REPLICATIONS // 2):
            result = run_chain_with_caching(
                models, n=100, alphas=alphas, rng=make_rng(5000 + seed)
            )
            estimates.append(result.estimate)
            cost = result.total_cost
        return float(np.var(estimates, ddof=1)) * cost

    chain_rows = [
        ("no caching", [1.0, 1.0], chain_efficiency([1.0, 1.0])),
        (
            "cache stage 1 only",
            [0.1, 1.0],
            chain_efficiency([0.1, 1.0]),
        ),
        (
            f"optimized {np.round(optimal, 3).tolist()}",
            optimal,
            chain_efficiency(optimal),
        ),
    ]
    return cyclic_var, random_var, chain_rows


def test_ablation_caching(benchmark):
    cyclic_var, random_var, chain_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = "cache reuse order at alpha = 0.1 (variance of estimator):\n"
    table += format_table(
        ["scheme", "Var[estimate]"],
        [
            ("deterministic cycling", cyclic_var),
            ("i.i.d. random pick", random_var),
        ],
    )
    table += "\n\nchained caching, work-normalized variance (lower = better):\n"
    table += format_table(
        ["strategy", "cost*Var"],
        [(name, value) for name, _, value in chain_rows],
    )
    save_report("ABL-RC_caching_ablation", table)

    # Cycling (stratified reuse) should not be worse than random reuse.
    assert cyclic_var <= random_var * 1.15
    # The optimized chain beats no caching.
    values = {name: value for name, _, value in chain_rows}
    optimized_key = next(k for k in values if k.startswith("optimized"))
    assert values[optimized_key] < values["no caching"]
