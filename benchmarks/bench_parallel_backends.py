"""BENCH_parallel — serial vs thread vs process execution backends.

Runs two Monte Carlo hot paths — the MCDB naive replication loop and the
sharded particle filter — once per :mod:`repro.parallel` backend,
verifying the determinism contract (byte-identical outputs on every
backend) and recording wall-clock speedup rows to
``benchmarks/results/BENCH_parallel.json`` for the perf trajectory.

Speedups are only meaningful relative to the recorded host metadata: on
a one-core container the process backend adds pure overhead; on an
N-core host the embarrassingly parallel loops approach N×.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    host_info,
    save_json,
    save_report,
    timed,
)
from benchmarks.bench_mcdb_tuple_bundles import build_mcdb, naive_query
from repro.assimilation import LinearGaussianSSM, kalman_filter, particle_filter
from repro.parallel import get_backend
from repro.stats import make_rng

BACKENDS = ("serial", "thread", "process")


def _identity(x):
    return x


def _warm_up(backend_name: str) -> None:
    """Pay pool start-up cost outside the timed region."""
    get_backend(backend_name).map(_identity, list(range(4)))


def _mcdb_workload(config: BenchConfig):
    num_rows = 40 if config.quick else 150
    n_mc = 16 if config.quick else 100
    mcdb = build_mcdb(num_rows)

    def run(backend_name):
        return mcdb.run_naive(naive_query, n_mc, backend=backend_name).samples

    return f"mcdb_naive(rows={num_rows}, n_mc={n_mc})", run


def _particle_filter_workload(config: BenchConfig):
    steps = 15 if config.quick else 40
    n_particles = 400 if config.quick else 4000
    ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
    _, observations = ssm.simulate(steps, make_rng(0))
    model = ssm.to_state_space_model()

    def run(backend_name):
        result = particle_filter(
            model,
            observations,
            n_particles,
            backend=backend_name,
            seed=7,
        )
        return result.filtered_means

    return f"particle_filter(steps={steps}, N={n_particles})", run


def run_experiment(config: BenchConfig = BenchConfig()):
    rows = []
    identical = {}
    for workload_name, run in (
        _mcdb_workload(config),
        _particle_filter_workload(config),
    ):
        reference = None
        serial_time = None
        for backend_name in BACKENDS:
            _warm_up(backend_name)
            output, seconds = timed(run, backend_name)
            if backend_name == "serial":
                reference = output
                serial_time = seconds
            matches = bool(np.array_equal(reference, output))
            identical[(workload_name, backend_name)] = matches
            rows.append(
                (
                    workload_name,
                    backend_name,
                    seconds,
                    serial_time / seconds,
                    matches,
                )
            )
    return rows, identical


def test_parallel_backends(benchmark, bench_config):
    rows, identical = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    headers = ["workload", "backend", "seconds", "speedup", "identical"]
    save_report("BENCH_parallel", format_table(headers, rows))
    save_json(
        "BENCH_parallel",
        {
            "config": {
                "quick": bench_config.quick,
                "backend": bench_config.backend,
            },
            "columns": headers,
            "rows": [list(row) for row in rows],
            "note": (
                "speedup is serial_time / backend_time; expect >= 1.5x for "
                "the process backend only when host.usable_cpus >= 2"
            ),
        },
    )

    # The determinism contract is unconditional: every backend must
    # reproduce the serial output byte for byte.
    assert all(identical.values()), identical
    # The speedup claim is conditional on actually having cores.
    if host_info()["usable_cpus"] >= 4 and not bench_config.quick:
        process_speedups = [
            row[3] for row in rows if row[1] == "process"
        ]
        assert max(process_speedups) >= 1.5
