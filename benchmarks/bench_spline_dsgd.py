"""AN-SP — DSGD vs direct solving of the cubic-spline system (§2.2).

The natural-cubic-spline constants solve a tridiagonal system that "can
contain millions of rows"; direct methods shuffle massively on MapReduce
while stratified DSGD shuffles a negligible, size-independent amount.
Shape checks: DSGD reaches the Thomas solution (small relative error),
its loss decreases monotonically-ish across epochs, and its shuffle
volume is orders of magnitude below both plain SGD and a direct
MapReduce solve — with the gap widening as the system grows.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.harmonize import (
    SGDConfig,
    direct_solver_shuffle_cost,
    dsgd_solve,
    sgd_solve,
)
from repro.stats import make_rng, spline_system, thomas_solve

EPOCHS = 80


def build_system(m: int):
    t = np.linspace(0.0, 100.0, m + 2)
    y = np.sin(t / 3.0) + 0.3 * np.cos(t / 1.7)
    return spline_system(t, y)


def run_experiment():
    config = SGDConfig(epochs=EPOCHS, step_exponent=0.6)
    rows = []
    gaps = {}
    dsgd_errors = {}
    loss_curve = None
    for m in (300, 1000, 3000):
        system = build_system(m)
        exact = thomas_solve(system)
        sgd = sgd_solve(system, make_rng(1), config)
        dsgd = dsgd_solve(system, make_rng(2), config, num_workers=8)
        if loss_curve is None:
            loss_curve = dsgd.loss_history
        direct = direct_solver_shuffle_cost(system.size, EPOCHS)
        error = float(
            np.linalg.norm(dsgd.x - exact)
            / max(np.linalg.norm(exact), 1e-12)
        )
        dsgd_errors[m] = error
        gaps[m] = direct / max(dsgd.records_shuffled, 1)
        rows.append(
            (
                system.size,
                direct,
                sgd.records_shuffled,
                dsgd.records_shuffled,
                gaps[m],
                error,
            )
        )
    return rows, gaps, dsgd_errors, loss_curve


def test_spline_dsgd(benchmark):
    rows, gaps, errors, loss_curve = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "m (unknowns)",
            "direct shuffle",
            "SGD shuffle",
            "DSGD shuffle",
            "direct/DSGD",
            "DSGD rel. error",
        ],
        rows,
    )
    curve = [loss_curve[i] for i in (0, 1, 5, 20, len(loss_curve) - 1)]
    table += "\n\nDSGD loss curve (epochs 0, 1, 5, 20, final):\n  "
    table += "  ".join(f"{v:.3e}" for v in curve)
    save_report("AN-SP_spline_dsgd", table)

    # DSGD solves the system (to benchmark tolerance) …
    assert all(err < 0.1 for err in errors.values())
    # … with a shuffle advantage that grows with m …
    assert gaps[3000] > gaps[300]
    assert gaps[3000] > 50.0
    # … and a decreasing loss.
    assert loss_curve[-1] < loss_curve[0] * 1e-3
