"""ALG1 — the Indemics intervention loop of paper Algorithm 1.

Runs the SQL-scripted "vaccinate preschoolers if more than 1% are sick"
policy on a synthetic population and compares epidemic outcomes against
the uncontrolled baseline.  Shape checks: the policy triggers exactly
once once the threshold is crossed, vaccinates the whole preschool
subpopulation, and reduces the preschool attack rate.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.epidemics import (
    DiseaseParameters,
    IndemicsEngine,
    VaccinatePreschoolersPolicy,
    generate_population,
    run_with_policy,
)
from repro.stats import make_rng

DAYS = 60
N_SEEDS = 3  # independent epidemic replicates


def attack_rate_among(engine, pids) -> float:
    pids = set(pids)
    infected = sum(
        1
        for pid, record in engine.process.health.items()
        if pid in pids and record.infected_on_day is not None
    )
    return infected / max(len(pids), 1)


def run_experiment():
    population = generate_population(300, make_rng(0))
    preschool = population.preschoolers()
    rows = []
    deltas = []
    trigger_days = []
    for seed in range(N_SEEDS):
        outcomes = {}
        for use_policy in (False, True):
            engine = IndemicsEngine(
                population,
                DiseaseParameters(vaccine_efficacy=0.95),
                seed=seed,
            )
            engine.seed_infections(8)
            policy = (
                VaccinatePreschoolersPolicy(threshold=0.01)
                if use_policy
                else None
            )
            log = run_with_policy(engine, policy, days=DAYS)
            triggered = [e for e in log if e.triggered]
            outcomes[use_policy] = {
                "attack_all": engine.attack_rate(),
                "attack_preschool": attack_rate_among(engine, preschool),
                "peak": engine.peak_infectious(),
                "trigger_day": triggered[0].day if triggered else None,
                "vaccinated": triggered[0].action_size if triggered else 0,
            }
        base = outcomes[False]
        poli = outcomes[True]
        rows.append(
            (
                seed,
                base["attack_preschool"],
                poli["attack_preschool"],
                base["attack_all"],
                poli["attack_all"],
                poli["trigger_day"],
                poli["vaccinated"],
            )
        )
        deltas.append(
            base["attack_preschool"] - poli["attack_preschool"]
        )
        if poli["trigger_day"] is not None:
            trigger_days.append(poli["trigger_day"])
    return population, preschool, rows, deltas, trigger_days


def test_alg1_indemics(benchmark):
    population, preschool, rows, deltas, trigger_days = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "seed",
            "preschool AR (base)",
            "preschool AR (policy)",
            "overall AR (base)",
            "overall AR (policy)",
            "trigger day",
            "vaccinated",
        ],
        rows,
    )
    table += (
        f"\n\npopulation {len(population)} persons, "
        f"{len(preschool)} preschoolers; threshold 1% sick preschoolers"
        f"\nmean preschool attack-rate reduction: {np.mean(deltas):+.3f}"
    )
    save_report("ALG1_indemics_intervention", table)

    # The policy triggered in every replicate and vaccinated everyone
    # in the preschool group.
    assert len(trigger_days) == len(rows)
    assert all(r[6] == len(preschool) for r in rows)
    # Vaccination reduces the preschool attack rate on average.
    assert np.mean(deltas) > 0.1
