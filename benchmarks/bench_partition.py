"""BENCH_partition — partitioned tables on the execution substrate.

Runs the sharded-data-plane workloads through four configurations of
:mod:`repro.engine` — the plain columnar executor (no partitioning),
and hash-partitioned execution on the serial, thread, and process
backends (one morsel stream per partition, fanned out through
:mod:`repro.exec`) — verifying the byte-identity contract (identical
``result_fingerprint``, identical ``ExecutionMetrics``, byte-identical
obs ``values`` snapshots) and recording wall-clock speedups plus the
executor's shuffle accounting to
``benchmarks/results/BENCH_partition.json``.

Headline claims (asserted at full size):

* partitioned execution is byte-identical to the unpartitioned plan on
  every workload and every backend;
* the best parallel backend >= 1.2x over the unpartitioned columnar
  executor on the filter+aggregate workload when ``usable_cpus > 1``
  (reported either way, asserted only with real parallelism);
* serial partitioned execution costs at most 2x the unpartitioned
  plan (partitioning overhead stays bounded when it buys nothing).
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks._util import (
    BenchConfig,
    format_table,
    host_info,
    save_json,
    save_report,
    timed,
)
from repro import obs
from repro.engine import Database, Schema
from repro.engine.morsel import _SCAN_CACHE
from repro.ensemble.store import result_fingerprint

REGIONS = ["east", "west", "north", "south"]


def build_database(num_rows: int, seed: int = 7) -> Database:
    """The morsel-bench synthetic table (NULL-rich, group-keyed)."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, num_rows)
    ys = rng.integers(0, 100, num_rows)
    db = Database()
    db.create_table(
        "big", Schema.of(pid=int, region=str, x=float, y=int)
    )
    big = db.table("big")
    for i in range(num_rows):
        big.insert(
            {
                "pid": i,
                "region": REGIONS[i % 4] if i % 11 else None,
                "x": float(xs[i]),
                "y": int(ys[i]) if i % 13 else None,
            }
        )
    return db


def workloads(num_rows: int):
    return [
        (
            f"filter_aggregate(rows={num_rows})",
            "SELECT count(*) AS n, sum(x) AS s, avg(x) AS m, max(y) AS hi "
            "FROM big WHERE x > 0.25 AND y < 80",
        ),
        (
            f"group_by(rows={num_rows})",
            "SELECT region, count(*) AS n, sum(x) AS s FROM big "
            "WHERE y IS NOT NULL GROUP BY region",
        ),
        (
            f"filter_project(rows={num_rows})",
            "SELECT pid, x * 2.0 AS xx FROM big "
            "WHERE x > 0.5 AND region IS NOT NULL",
        ),
    ]


def _modes(partitions: int):
    """(name, partition count or None, backend) per configuration."""
    return [
        ("columnar", None, "serial"),
        ("part-serial", partitions, "serial"),
        ("part-thread", partitions, "thread"),
        ("part-process", partitions, "process"),
    ]


def _run_mode(db, sql, partitions, backend, morsel_size):
    previous = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend
    if partitions is not None:
        db.partition_table("big", "pid", partitions)
    try:
        if partitions is None:
            return db.sql(sql, execution="columnar")
        return db.sql(sql, morsel_size=morsel_size)
    finally:
        db.unpartition_table("big")
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def run_experiment(config: BenchConfig = BenchConfig()):
    num_rows = 5_000 if config.quick else 100_000
    usable = host_info()["usable_cpus"]
    partitions = max(2, min(usable, 8))
    morsel_size = max(1, num_rows // (2 * partitions))
    db = build_database(num_rows)
    modes = _modes(partitions)

    rows = []
    speedups = {}
    identical = {}
    obs_identical = {}
    metrics_identical = {}
    for workload_name, sql in workloads(num_rows):
        fingerprints = {}
        seconds = {}
        for mode, parts, backend in modes:
            _SCAN_CACHE.clear()
            _run_mode(db, sql, parts, backend, morsel_size)  # warm-up
            result, elapsed = timed(
                _run_mode, db, sql, parts, backend, morsel_size
            )
            fingerprints[mode] = result_fingerprint(result)
            seconds[mode] = elapsed
        # Identity sweep (untimed): fingerprints, ExecutionMetrics, and
        # the deterministic obs ``values`` snapshot must not depend on
        # partitioning or the backend it ran on.
        values_snaps = {}
        metrics_snaps = {}
        for mode, parts, backend in modes:
            observer = obs.enable()
            observer.reset()
            db.metrics.reset()
            try:
                _run_mode(db, sql, parts, backend, morsel_size)
                values_snaps[mode] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
            m = db.metrics
            metrics_snaps[mode] = (m.rows_scanned, m.rows_output)
        identical[workload_name] = len(set(fingerprints.values())) == 1
        obs_identical[workload_name] = all(
            snap == values_snaps["columnar"]
            for snap in values_snaps.values()
        )
        metrics_identical[workload_name] = all(
            snap == metrics_snaps["columnar"]
            for snap in metrics_snaps.values()
        )
        speedups[workload_name] = {
            "serial_vs_columnar": seconds["columnar"]
            / seconds["part-serial"],
            "thread_vs_columnar": seconds["columnar"]
            / seconds["part-thread"],
            "process_vs_columnar": seconds["columnar"]
            / seconds["part-process"],
        }
        rows.append(
            (
                workload_name,
                seconds["columnar"],
                seconds["part-serial"],
                seconds["part-thread"],
                seconds["part-process"],
                max(
                    speedups[workload_name]["thread_vs_columnar"],
                    speedups[workload_name]["process_vs_columnar"],
                ),
                identical[workload_name] and obs_identical[workload_name],
            )
        )
    return {
        "rows": rows,
        "speedups": speedups,
        "identical": identical,
        "obs_identical": obs_identical,
        "metrics_identical": metrics_identical,
        "usable_cpus": usable,
        "num_rows": num_rows,
        "partitions": partitions,
        "morsel_size": morsel_size,
    }


HEADERS = [
    "workload", "columnar s", "part-serial s",
    "part-thread s", "part-process s", "best parx", "identical",
]


def _record(outcome, quick):
    save_report("BENCH_partition", format_table(HEADERS, outcome["rows"]))
    save_json(
        "BENCH_partition",
        {
            "config": {
                "quick": quick,
                "num_rows": outcome["num_rows"],
                "partitions": outcome["partitions"],
                "morsel_size": outcome["morsel_size"],
                "usable_cpus": outcome["usable_cpus"],
            },
            "columns": HEADERS,
            "rows": [list(row) for row in outcome["rows"]],
            "speedups": outcome["speedups"],
            "identical": outcome["identical"],
            "obs_identical": outcome["obs_identical"],
            "metrics_identical": outcome["metrics_identical"],
            "note": (
                "part-* = hash partitioning on pid, one morsel stream "
                "per partition fanned out through the repro.exec "
                "substrate; speedups are relative to the unpartitioned "
                "columnar executor; identity covers result_fingerprint "
                "+ obs values snapshots + ExecutionMetrics"
            ),
        },
    )


def _assert_claims(outcome, quick):
    assert all(outcome["identical"].values()), outcome["identical"]
    assert all(outcome["obs_identical"].values()), outcome["obs_identical"]
    assert all(
        outcome["metrics_identical"].values()
    ), outcome["metrics_identical"]
    headline = next(
        s for name, s in outcome["speedups"].items()
        if "filter_aggregate" in name
    )
    # Partitioning overhead stays bounded when it buys no parallelism.
    assert headline["serial_vs_columnar"] >= (
        0.4 if quick else 1 / 2.0
    ), headline
    # Parallel speedup, asserted only with real parallelism.
    if outcome["usable_cpus"] > 1 and not quick:
        best_parallel = max(
            headline["thread_vs_columnar"], headline["process_vs_columnar"]
        )
        assert best_parallel >= 1.2, headline


def test_partition(benchmark, bench_config):
    outcome = benchmark.pedantic(
        run_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    _record(outcome, bench_config.quick)
    _assert_claims(outcome, bench_config.quick)


if __name__ == "__main__":
    config = BenchConfig.from_env()
    result = run_experiment(config)
    _record(result, config.quick)
    _assert_claims(result, config.quick)
