"""AN-MF — DSGD matrix completion vs plain SGD (Gemulla et al. [21]).

The stratified-SGD idea the spline solver borrows was born in matrix
completion.  Both factorize the same synthetic low-rank ratings matrix.
Shape checks: DSGD reaches plain-SGD quality (same epochs) while
shuffling orders of magnitude less, and both recover the planted matrix
to near the noise floor.
"""

from __future__ import annotations

import numpy as np

from benchmarks._util import format_table, save_report
from repro.harmonize import RatingsMatrix, dsgd_factorize, sgd_factorize
from repro.stats import make_rng

EPOCHS = 25
RANK = 4
NOISE_SD = 0.05


def run_experiment():
    matrix, w_true, h_true = RatingsMatrix.synthetic(
        num_rows=120,
        num_cols=90,
        rank=RANK,
        density=0.25,
        rng=make_rng(0),
        noise_sd=NOISE_SD,
    )
    truth = w_true @ h_true

    sgd = sgd_factorize(matrix, RANK, make_rng(1), epochs=EPOCHS)
    dsgd = dsgd_factorize(
        matrix, RANK, make_rng(2), num_blocks=6, epochs=EPOCHS
    )

    def holdout_rmse(result):
        full = result.w @ result.h
        return float(np.sqrt(np.mean((full - truth) ** 2)))

    rows = [
        (
            "plain SGD",
            sgd.loss_history[0],
            sgd.final_loss,
            holdout_rmse(sgd),
            sgd.records_shuffled,
        ),
        (
            "DSGD (6 blocks)",
            dsgd.loss_history[0],
            dsgd.final_loss,
            holdout_rmse(dsgd),
            dsgd.records_shuffled,
        ),
    ]
    return matrix, sgd, dsgd, rows


def test_matrix_completion(benchmark):
    matrix, sgd, dsgd, rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        [
            "method",
            "initial RMSE",
            "train RMSE",
            "full-matrix RMSE",
            "records shuffled",
        ],
        rows,
    )
    table += (
        f"\n\n{matrix.num_observed} observed entries, rank {RANK}, "
        f"noise sd {NOISE_SD}, {EPOCHS} epochs"
    )
    save_report("AN-MF_matrix_completion", table)

    # Both methods learn; DSGD matches SGD quality …
    assert sgd.final_loss < sgd.loss_history[0] * 0.3
    assert dsgd.final_loss < 1.5 * sgd.final_loss + 0.02
    # … with a shuffle advantage of at least an order of magnitude.
    assert dsgd.records_shuffled * 10 < sgd.records_shuffled
