"""Tests for the plan optimizer and catalog statistics."""

from __future__ import annotations

import pytest

from repro.engine import Database, Schema, col, lit, parse_select
from repro.engine import plan as lp
from repro.engine.optimizer import push_down_filters, reorder_joins
from repro.engine.statistics import (
    TableStatistics,
    join_cardinality,
    predicate_selectivity,
)


@pytest.fixture
def db():
    db = Database()
    db.create_table("big", Schema.of(k=int, v=float))
    for i in range(300):
        db.table("big").insert({"k": i % 30, "v": float(i)})
    db.create_table("small", Schema.of(k=int, tag=str))
    for i in range(10):
        db.table("small").insert({"k": i, "tag": f"t{i}"})
    db.create_table("mid", Schema.of(k=int, w=float))
    for i in range(50):
        db.table("mid").insert({"k": i % 10, "w": float(i)})
    db.analyze()
    return db


def _schema_lookup(db):
    return lambda name: db.table(name).schema.names


class TestPushdown:
    def test_filter_pushed_below_join(self, db):
        plan = parse_select(
            "SELECT * FROM big b JOIN small s ON b.k = s.k WHERE s.tag = 't1'"
        )
        optimized = push_down_filters(plan, _schema_lookup(db))
        # After pushdown the top node should be the join, with the filter
        # on the small side.
        assert isinstance(optimized, lp.Join)
        right = optimized.right
        assert isinstance(right, lp.Filter)

    def test_pushdown_preserves_results(self, db):
        sql = (
            "SELECT b.v FROM big b JOIN small s ON b.k = s.k "
            "WHERE s.tag = 't1' AND b.v > 100"
        )
        plan = parse_select(sql)
        raw = db.execute_plan(plan, optimized=False)
        opt = db.execute_plan(plan, optimized=True)
        assert sorted(r["v"] for r in raw) == sorted(r["v"] for r in opt)

    def test_pushdown_reduces_join_work(self, db):
        from repro.engine.operators import ExecutionMetrics, Executor

        sql = (
            "SELECT b.v FROM big b JOIN small s ON b.k = s.k "
            "WHERE b.v > 250"
        )
        plan = parse_select(sql)

        m_raw = ExecutionMetrics()
        Executor(db, m_raw).execute(plan)
        m_opt = ExecutionMetrics()
        Executor(db, m_opt).execute(db.optimize_plan(plan))
        assert m_opt.join_pairs_examined < m_raw.join_pairs_examined

    def test_adjacent_filters_merge(self, db):
        plan = lp.Filter(
            lp.Filter(lp.Scan("big"), col("v") > 10), col("k") == 1
        )
        optimized = push_down_filters(plan, _schema_lookup(db))
        assert isinstance(optimized, lp.Filter)
        assert isinstance(optimized.child, lp.Scan)


class TestJoinReorder:
    def test_three_way_join_preserves_results(self, db):
        sql = (
            "SELECT b.v FROM big b JOIN mid m ON b.k = m.k "
            "JOIN small s ON m.k = s.k WHERE s.tag = 't3'"
        )
        plan = parse_select(sql)
        raw = db.execute_plan(plan, optimized=False)
        opt = db.execute_plan(plan, optimized=True)
        assert sorted(r["v"] for r in raw) == sorted(r["v"] for r in opt)

    def test_reorder_starts_from_smallest(self, db):
        plan = parse_select(
            "SELECT * FROM big b JOIN mid m ON b.k = m.k "
            "JOIN small s ON m.k = s.k"
        )
        reordered = reorder_joins(plan, db.statistics)
        # Walk to the deepest left scan; it should be the small table.
        node = reordered
        while isinstance(node, (lp.Join, lp.Filter)):
            node = node.children()[0]
        assert isinstance(node, lp.Scan)
        assert node.table == "small"


class TestStatistics:
    def test_collect(self, db):
        stats = db.statistics("big")
        assert stats.row_count == 300
        assert stats.columns["k"].distinct_count == 30

    def test_equality_selectivity(self, db):
        stats = db.statistics("big")
        sel = predicate_selectivity(col("k") == 5, stats)
        assert sel == pytest.approx(1.0 / 30.0)

    def test_range_selectivity_interpolates(self, db):
        stats = db.statistics("big")
        sel = predicate_selectivity(col("v") < 149.5, stats)
        assert sel == pytest.approx(0.5, abs=0.01)

    def test_conjunction_multiplies(self, db):
        stats = db.statistics("big")
        a = predicate_selectivity(col("k") == 5, stats)
        b = predicate_selectivity(col("v") < 149.5, stats)
        combined = predicate_selectivity(
            (col("k") == 5) & (col("v") < 149.5), stats
        )
        assert combined == pytest.approx(a * b)

    def test_join_cardinality(self, db):
        big = db.statistics("big")
        small = db.statistics("small")
        card = join_cardinality(big, small, "k", "k")
        assert card == pytest.approx(300 * 10 / 30)

    def test_literal_predicates(self, db):
        stats = db.statistics("big")
        assert predicate_selectivity(lit(True), stats) == 1.0
        assert predicate_selectivity(lit(False), stats) == 0.0

    def test_string_range_literal_falls_back(self, db):
        # Regression: a string literal under a range operator must fall
        # back to the default selectivity instead of crashing (or being
        # coerced) during float conversion.
        stats = db.statistics("small")
        sel = predicate_selectivity(col("tag") < lit("t5"), stats)
        assert sel == pytest.approx(1.0 / 3.0)
        assert predicate_selectivity(
            col("tag") >= lit("t2"), stats
        ) == pytest.approx(1.0 / 3.0)

    def test_string_range_predicate_plan_optimizes(self, db):
        # End-to-end: the optimizer consumes the selectivity estimate on
        # a string-typed range predicate without error, and the plan
        # still returns correct rows in both execution modes.
        sql = (
            "SELECT s.tag, count(*) AS n FROM big b JOIN small s "
            "ON b.k = s.k WHERE s.tag < 't5' GROUP BY s.tag"
        )
        rows = db.sql(sql)
        assert rows == db.sql(sql, execution="row")
        assert {r["tag"] for r in rows} == {f"t{i}" for i in range(5)}

    def test_numeric_like_string_literal_coerces(self, db):
        # A literal that cleanly parses as a number still interpolates.
        stats = db.statistics("big")
        assert predicate_selectivity(
            col("v") < lit("149.5"), stats
        ) == pytest.approx(0.5)

    def test_boolean_literal_not_treated_as_number(self, db):
        stats = db.statistics("big")
        assert predicate_selectivity(
            col("v") < lit(True), stats
        ) == pytest.approx(1.0 / 3.0)
