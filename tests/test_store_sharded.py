"""Sharded RunStore: global-order identity, parallel gc, migration.

The first half of the sharded data plane answers to one oracle: a
:class:`ShardedRunStore` is *semantically* the flat :class:`RunStore`
at every shard count — ``get``/``put`` round-trips, global oldest-first
``ls(limit=)`` order, and size-ordered ``gc`` eviction sets must be
byte-/order-identical to the flat store over the same corpus — while
its gc deletions fan one-shard-per-task through the substrate under
the ``store.shard`` fault scope.  This file also pins the two store
concurrency bugfixes: the gc size pass re-derives its total from
surviving entries (a racing ``put`` can no longer leave the store above
``max_total_bytes``), and an 8-thread put/evict/gc hammer leaves a
consistent store.
"""

from __future__ import annotations

import os
import shutil
import threading

import numpy as np
import pytest

from repro.ensemble import run_ensemble
from repro.ensemble.store import (
    STORE_SHARD_SCOPE,
    RunStore,
    ShardedRunStore,
    detect_shards,
    open_store,
    result_fingerprint,
    run_key,
)
from repro.delta import delta_run
from repro.errors import SimulationError
from repro.exec.keys import partition_index
from repro.faults.plan import FaultPlan, injected
from tests.test_ensemble import chain

SHARD_COUNTS = (1, 2, 7)


def _payload(i: int):
    return {
        "series": np.arange(16, dtype=np.float64) * (i + 1),
        "scalar": float(i),
        "tag": f"run-{i}",
    }


def _populate(store, count=12, base_mtime=1_000_000_000.0):
    """Put ``count`` entries with deterministic, distinct pinned mtimes.

    Ages are deliberately *not* in put order (entry i gets mtime
    ``base + ((i * 5) % count)``) so oldest-first ordering exercises the
    merge, not the insertion sequence.
    """
    keys = []
    for i in range(count):
        key = run_key("test.sharded", {"i": i}, seed=i)
        store.put(key, _payload(i), scenario="test.sharded", seed=i)
        stamp = base_mtime + ((i * 5) % count) * 60.0
        for candidate in store._candidate_dirs(key):
            run_path = os.path.join(candidate, "run.json")
            if os.path.exists(run_path):
                os.utime(run_path, (stamp, stamp))
        keys.append(key)
    return keys


class TestLayoutAndRoundTrip:
    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_entries_land_in_their_crc_shard(self, tmp_path, n):
        store = ShardedRunStore(tmp_path, shards=n)
        keys = _populate(store, count=8)
        for key in keys:
            shard = partition_index(key, n)
            assert store.shard_of(key) == shard
            entry_dir = os.path.join(
                str(tmp_path), "shards", str(shard), "objects", key[:2], key
            )
            assert os.path.isfile(os.path.join(entry_dir, "run.json"))
            assert store.contains(key)

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_round_trip_is_byte_identical_to_flat(self, tmp_path, n):
        flat = RunStore(tmp_path / "flat")
        sharded = ShardedRunStore(tmp_path / "sharded", shards=n)
        for i in range(6):
            key = run_key("test.sharded", {"i": i}, seed=i)
            flat.put(key, _payload(i))
            sharded.put(key, _payload(i))
            assert result_fingerprint(sharded.get(key)) == result_fingerprint(
                flat.get(key)
            )

    def test_shard_count_must_be_positive(self, tmp_path):
        with pytest.raises(SimulationError):
            ShardedRunStore(tmp_path, shards=0)

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_per_shard_summary_sums_to_global(self, tmp_path, n):
        store = ShardedRunStore(tmp_path, shards=n)
        _populate(store)
        per_shard = store.per_shard_summary()
        assert len(per_shard) == n
        count, size = store.summary()
        assert sum(c for c, _ in per_shard) == count == 12
        assert sum(s for _, s in per_shard) == size


class TestGlobalOrderIdentity:
    """``ls``/``gc`` over shards equals the flat store, key for key."""

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_ls_merges_shards_oldest_first(self, tmp_path, n):
        flat = RunStore(tmp_path / "flat")
        sharded = ShardedRunStore(tmp_path / "sharded", shards=n)
        _populate(flat)
        _populate(sharded)
        flat_ls = [(e.key, e.size_bytes, e.mtime) for e in flat.ls()]
        shard_ls = [(e.key, e.size_bytes, e.mtime) for e in sharded.ls()]
        assert shard_ls == flat_ls
        for limit in (0, 1, 5, 12, 50):
            assert [e.key for e in sharded.ls(limit=limit)] == [
                e.key for e in flat.ls(limit=limit)
            ]
        # ls(limit=) reads metadata for exactly the returned entries.
        entry = sharded.ls(limit=3)[0]
        assert entry.scenario == "test.sharded"
        assert flat.summary() == sharded.summary()

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_gc_eviction_sets_and_order_match_flat(self, tmp_path, n):
        flat = RunStore(tmp_path / "flat")
        sharded = ShardedRunStore(tmp_path / "sharded", shards=n)
        _populate(flat)
        _populate(sharded)
        budget = flat.total_bytes() // 3
        flat_evicted = flat.gc(max_total_bytes=budget)
        shard_evicted = sharded.gc(max_total_bytes=budget)
        assert shard_evicted == flat_evicted
        assert [e.key for e in sharded.ls()] == [e.key for e in flat.ls()]
        assert sharded.total_bytes() == flat.total_bytes() <= budget
        assert sharded.stats.evictions == flat.stats.evictions

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_gc_by_age_matches_flat(self, tmp_path, n):
        flat = RunStore(tmp_path / "flat")
        sharded = ShardedRunStore(tmp_path / "sharded", shards=n)
        base = 1_000_000_000.0
        _populate(flat, base_mtime=base)
        _populate(sharded, base_mtime=base)
        now = base + 12 * 60.0
        kwargs = {"max_age_seconds": 6 * 60.0, "now": now}
        assert sharded.gc(**kwargs) == flat.gc(**kwargs)
        assert [e.key for e in sharded.ls()] == [e.key for e in flat.ls()]

    def test_gc_fanout_recovers_from_injected_shard_fault(self, tmp_path):
        plain = ShardedRunStore(tmp_path / "plain", shards=4)
        faulted = ShardedRunStore(tmp_path / "faulted", shards=4)
        _populate(plain)
        _populate(faulted)
        budget = plain.total_bytes() // 2
        expected = plain.gc(max_total_bytes=budget)
        plan = FaultPlan(failures={(STORE_SHARD_SCOPE, 0): 1})
        with injected(plan):
            evicted = faulted.gc(max_total_bytes=budget)
        # The killed first attempt of shard task 0 is retried by the
        # substrate's default policy; the eviction worker is idempotent,
        # so the outcome is byte-identical to the fault-free store.
        assert evicted == expected
        assert [e.key for e in faulted.ls()] == [e.key for e in plain.ls()]


class TestMigration:
    def test_sharded_store_reads_flat_layout_transparently(self, tmp_path):
        flat = RunStore(tmp_path)
        keys = _populate(flat)
        baseline = [result_fingerprint(flat.get(k)) for k in keys]
        reopened = ShardedRunStore(tmp_path, shards=3)
        assert all(reopened.contains(k) for k in keys)
        assert [
            result_fingerprint(reopened.get(k)) for k in keys
        ] == baseline
        assert [e.key for e in reopened.ls()] == [e.key for e in flat.ls()]

    def test_migrate_layout_moves_entries_into_shards(self, tmp_path):
        flat = RunStore(tmp_path)
        keys = _populate(flat)
        store = ShardedRunStore(tmp_path, shards=3)
        order_before = [e.key for e in store.ls(with_meta=False)]
        assert store.migrate_layout() == len(keys)
        assert store.migrate_layout() == 0  # idempotent
        for key in keys:
            shard_dir = store._candidate_dirs(key)[0]
            flat_dir = store._candidate_dirs(key)[1]
            assert os.path.isdir(shard_dir)
            assert not os.path.isdir(flat_dir)
            assert store.get(key) is not None
        # rename preserves mtimes, so the global order is unchanged.
        assert [e.key for e in store.ls(with_meta=False)] == order_before

    def test_migrate_drops_flat_duplicate_of_sharded_entry(self, tmp_path):
        store = ShardedRunStore(tmp_path, shards=3)
        (key,) = _populate(store, count=1)
        shard_dir, flat_dir = store._candidate_dirs(key)
        shutil.copytree(shard_dir, flat_dir)
        assert store.migrate_layout() == 0
        assert not os.path.isdir(flat_dir)
        assert store.get(key) is not None

    def test_gc_covers_unmigrated_flat_entries(self, tmp_path):
        flat = RunStore(tmp_path)
        keys = _populate(flat)
        store = ShardedRunStore(tmp_path, shards=3)
        evicted = store.gc(max_total_bytes=0)
        assert sorted(evicted) == sorted(keys)
        assert store.summary() == (0, 0)
        assert RunStore(tmp_path).ls() == []  # flat copies gone too


class TestOpenStoreFactory:
    def test_explicit_shards_and_flat_default(self, tmp_path):
        flat = open_store(tmp_path / "a")
        assert type(flat) is RunStore
        sharded = open_store(tmp_path / "b", shards=5)
        assert isinstance(sharded, ShardedRunStore)
        assert sharded.shards == 5
        assert type(open_store(tmp_path / "c", shards=0)) is RunStore

    def test_env_var_and_detection(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "3")
        store = open_store(tmp_path / "via-env")
        assert isinstance(store, ShardedRunStore) and store.shards == 3
        monkeypatch.delenv("REPRO_STORE_SHARDS")
        # An existing sharded layout is detected without any knobs.
        assert detect_shards(tmp_path / "via-env") == 3
        reopened = open_store(tmp_path / "via-env")
        assert isinstance(reopened, ShardedRunStore)
        assert reopened.shards == 3
        assert detect_shards(tmp_path / "nope") is None

    def test_env_var_must_be_integer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "many")
        with pytest.raises(SimulationError):
            open_store(tmp_path)


class TestSchedulerAndDeltaOverShards:
    def test_warm_rerun_serves_every_node_byte_identically(self, tmp_path):
        flat_result = run_ensemble(chain(4), store=RunStore(tmp_path / "f"))
        store = ShardedRunStore(tmp_path / "s", shards=3)
        cold = run_ensemble(chain(4), store=store)
        warm = run_ensemble(chain(4), store=store)
        assert cold.ok and warm.ok
        assert warm.nodes_cached == 4 and warm.nodes_run == 0
        assert warm.fingerprints() == cold.fingerprints()
        assert warm.fingerprints() == flat_result.fingerprints()

    def test_delta_cone_executes_against_sharded_store(self, tmp_path):
        from repro.delta import perturb

        store = ShardedRunStore(tmp_path, shards=3)
        base = chain(4)
        cold = run_ensemble(base, store=store)
        assert cold.ok
        target = perturb(base, params={"n2": {"x": 41}})
        outcome = delta_run(target, store, base=base)
        outcome.raise_if_failed()
        assert outcome.nodes_run == 2  # n2 + its downstream n3
        assert outcome.nodes_reused == 2


class TestConcurrencyRegressions:
    def test_gc_restats_after_racing_put(self, tmp_path):
        """Satellite bugfix: a put racing the size pass cannot leave the
        store above ``max_total_bytes`` when everything is evictable."""

        store = RunStore(tmp_path)
        _populate(store, count=4)
        entry_size = store.ls(with_meta=False)[0].size_bytes
        budget = int(entry_size * 1.5)  # room for exactly one entry

        real_evict_many = store._evict_many
        raced = {"done": False}

        def racing_evict_many(keys):
            removed = real_evict_many(keys)
            if not raced["done"]:
                raced["done"] = True
                # A concurrent writer lands *after* the eviction batch
                # but before gc returns — the stale snapshotted total
                # knew nothing about these bytes.
                for i in (100, 101):
                    store.put(
                        run_key("test.sharded", {"i": i}, seed=i),
                        _payload(i),
                    )
            return removed

        store._evict_many = racing_evict_many
        try:
            store.gc(max_total_bytes=budget)
        finally:
            store._evict_many = real_evict_many
        assert raced["done"]
        assert store.total_bytes() <= budget

    @pytest.mark.parametrize("n", (1, 4))
    def test_eight_thread_put_evict_gc_hammer(self, tmp_path, n):
        store = ShardedRunStore(tmp_path, shards=n)
        seeded = _populate(store, count=8)
        budget = store.total_bytes() * 2
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                for i in range(12):
                    tag = worker_id * 1000 + i
                    key = run_key("test.sharded", {"i": tag}, seed=tag)
                    store.put(key, _payload(tag))
                    got = store.get(key)
                    assert got is None or got["tag"] == f"run-{tag}"
                    store.evict(seeded[(worker_id + i) % len(seeded)])
                    if i % 4 == worker_id % 4:
                        store.gc(max_total_bytes=budget)
                    store.get(run_key("test.sharded", {"i": tag}, seed=tag))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Post-hammer invariants: a final quiesced gc lands (and keeps)
        # the store under budget, and every surviving entry is readable.
        store.gc(max_total_bytes=budget)
        assert store.total_bytes() <= budget
        for entry in store.ls(with_meta=False):
            assert store.get(entry.key) is not None
