"""Tests for metamodels and factor screening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.doe import resolution_iii
from repro.errors import DesignError
from repro.metamodel import (
    GaussianProcessMetamodel,
    PolynomialMetamodel,
    SequentialBifurcation,
    StochasticKrigingMetamodel,
    classify_active_effects,
    gaussian_correlation,
    gp_screening,
    half_normal_points,
    main_effects_table,
    one_at_a_time_screening,
    render_main_effects_plot,
)
from repro.stats import make_rng


class TestPolynomial:
    def test_recovers_linear_coefficients(self):
        rng = make_rng(0)
        x = rng.uniform(-1, 1, size=(50, 3))
        y = 2.0 + 1.0 * x[:, 0] - 3.0 * x[:, 1] + 0.5 * x[:, 2]
        model = PolynomialMetamodel(3, order=1).fit(x, y)
        assert model.intercept == pytest.approx(2.0, abs=1e-9)
        np.testing.assert_allclose(
            model.main_effects(), [1.0, -3.0, 0.5], atol=1e-9
        )

    def test_recovers_interaction(self):
        rng = make_rng(1)
        x = rng.uniform(-1, 1, size=(60, 2))
        y = 1.0 + x[:, 0] * x[:, 1] * 4.0
        model = PolynomialMetamodel(2, order=2).fit(x, y)
        assert model.coefficient((0, 1)) == pytest.approx(4.0, abs=1e-9)

    def test_residual_sd_estimates_noise(self):
        rng = make_rng(2)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = x[:, 0] + rng.normal(0, 0.5, size=400)
        model = PolynomialMetamodel(2, order=1).fit(x, y)
        assert model.residual_sd == pytest.approx(0.5, abs=0.05)

    def test_underdetermined_raises(self):
        x = np.zeros((2, 3))
        with pytest.raises(DesignError):
            PolynomialMetamodel(3, order=1).fit(x, [0.0, 1.0])

    def test_unknown_term(self):
        model = PolynomialMetamodel(2, order=1).fit(
            np.eye(3, 2), [1.0, 2.0, 3.0]
        )
        with pytest.raises(DesignError):
            model.coefficient((0, 1))

    def test_predict_before_fit(self):
        with pytest.raises(DesignError):
            PolynomialMetamodel(2).predict(np.zeros((1, 2)))


class TestMainEffects:
    def _linear_response(self, design, coefficients, noise_sd, rng):
        return design @ coefficients + rng.normal(
            0, noise_sd, size=design.shape[0]
        )

    def test_effects_from_resolution_iii(self):
        """The Figure 4 computation: effects off the Figure 3 design."""
        design = resolution_iii(7)
        beta = np.array([3.0, 0.0, -2.0, 0.0, 0.0, 1.0, 0.0])
        responses = self._linear_response(design, beta, 0.0, make_rng(0))
        table = main_effects_table(design, responses)
        assert len(table) == 7
        for entry, coef in zip(table, beta):
            # effect = mean(high) - mean(low) = 2 * beta for +-1 coding
            assert entry.effect == pytest.approx(2.0 * coef, abs=1e-9)

    def test_requires_coded_design(self):
        with pytest.raises(DesignError):
            main_effects_table(np.array([[0.5, 1.0]]), [1.0])

    def test_half_normal_points_monotone(self):
        quantiles, effects = half_normal_points([0.1, -3.0, 0.2, 2.0])
        assert np.all(np.diff(effects) >= 0)
        assert np.all(np.diff(quantiles) > 0)
        assert quantiles.shape == effects.shape

    def test_classify_active(self):
        effects = [0.05, -0.04, 3.0, 0.06, -2.5, 0.05, 0.04]
        active = classify_active_effects(effects)
        assert set(active) == {2, 4}

    def test_render_plot_mentions_factors(self):
        design = resolution_iii(7)
        responses = design @ np.arange(1.0, 8.0)
        table = main_effects_table(design, responses)
        text = render_main_effects_plot(table)
        assert "x1" in text and "x7" in text


class TestGaussianProcess:
    def test_interpolates_design_points(self):
        rng = make_rng(0)
        x = rng.uniform(0, 1, size=(15, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        gp = GaussianProcessMetamodel().fit(x, y)
        np.testing.assert_allclose(gp.predict(x), y, atol=1e-3)

    def test_beats_linear_model_on_nonlinear_response(self):
        rng = make_rng(1)
        x = rng.uniform(0, 1, size=(30, 2))
        f = lambda z: np.sin(4 * z[:, 0]) * np.cos(2 * z[:, 1])
        y = f(x)
        gp = GaussianProcessMetamodel().fit(x, y)
        poly = PolynomialMetamodel(2, order=2).fit(x, y)
        xq = rng.uniform(0, 1, size=(300, 2))
        gp_rmse = np.sqrt(np.mean((gp.predict(xq) - f(xq)) ** 2))
        poly_rmse = np.sqrt(np.mean((poly.predict(xq) - f(xq)) ** 2))
        assert gp_rmse < poly_rmse / 2

    def test_mse_zero_at_design_points(self):
        rng = make_rng(2)
        x = rng.uniform(0, 1, size=(10, 1))
        y = x[:, 0] ** 2
        gp = GaussianProcessMetamodel().fit(x, y)
        _, mse = gp.predict(x, return_mse=True)
        assert np.all(mse < 1e-4)

    def test_theta_reflects_sensitivity(self):
        rng = make_rng(3)
        x = rng.uniform(0, 1, size=(40, 2))
        y = np.sin(6 * x[:, 0]) + 0.001 * x[:, 1]
        gp = GaussianProcessMetamodel().fit(x, y)
        theta = gp.factor_importances()
        assert theta[0] > theta[1]

    def test_correlation_matrix_properties(self):
        a = np.array([[0.0], [1.0]])
        r = gaussian_correlation(a, a, np.array([1.0]))
        assert r[0, 0] == pytest.approx(1.0)
        assert r[0, 1] == pytest.approx(np.exp(-1.0))

    def test_validation(self):
        with pytest.raises(DesignError):
            GaussianProcessMetamodel().fit(np.zeros((1, 2)), [1.0])
        with pytest.raises(DesignError):
            GaussianProcessMetamodel().predict(np.zeros((1, 2)))


class TestStochasticKriging:
    def test_smooths_rather_than_interpolates(self):
        rng = make_rng(4)
        x = np.linspace(0, 1, 15)[:, None]
        truth = np.sin(3 * x[:, 0])
        noisy = truth + rng.normal(0, 0.3, size=15)
        sk = StochasticKrigingMetamodel().fit_noisy(
            x, noisy, np.full(15, 0.09)
        )
        predictions = sk.predict(x)
        # Closer to the truth than to the noisy observations on average.
        err_truth = np.mean((predictions - truth) ** 2)
        err_noisy = np.mean((predictions - noisy) ** 2)
        assert err_truth < np.mean((noisy - truth) ** 2)
        assert err_noisy > 1e-6  # did not interpolate the noise

    def test_validation(self):
        sk = StochasticKrigingMetamodel()
        with pytest.raises(DesignError):
            sk.fit_noisy(np.zeros((3, 1)), [1.0, 2.0, 3.0], [-1.0, 0.0, 0.0])
        with pytest.raises(DesignError):
            sk.predict(np.zeros((1, 1)))


class TestScreening:
    def _simulator(self, important, effect=2.0, noise=0.3, k=24):
        true = np.zeros(k)
        true[list(important)] = effect

        def simulate(levels, rng):
            return float(levels @ true + rng.normal(0, noise))

        return simulate

    def test_sb_finds_important_factors(self):
        sim = self._simulator({2, 11, 19})
        result = SequentialBifurcation(
            sim, 24, threshold=1.0, replications=3, seed=0
        ).run()
        assert result.important == [2, 11, 19]

    def test_sb_cheaper_than_oat_when_sparse(self):
        sim = self._simulator({5}, k=64)
        sb = SequentialBifurcation(
            sim, 64, threshold=1.0, replications=2, seed=1
        ).run()
        oat = one_at_a_time_screening(sim, 64, threshold=1.0, replications=2, seed=2)
        assert sb.important == oat.important == [5]
        assert sb.runs_used < oat.runs_used / 2

    def test_sb_no_important_factors(self):
        sim = self._simulator(set(), k=16)
        result = SequentialBifurcation(
            sim, 16, threshold=1.0, replications=2, seed=3
        ).run()
        assert result.important == []
        # Only the root group was probed: two cumulative settings.
        assert result.probes == 1

    def test_sb_validation(self):
        sim = self._simulator({0})
        with pytest.raises(DesignError):
            SequentialBifurcation(sim, 0, threshold=1.0)
        with pytest.raises(DesignError):
            SequentialBifurcation(sim, 4, threshold=0.0)

    def test_gp_screening_ranks_true_factors(self):
        rng = make_rng(5)
        x = rng.uniform(-1, 1, size=(50, 6))
        y = 4.0 * x[:, 2] + np.sin(3 * x[:, 5])
        top = gp_screening(x, y, top_k=2)
        assert top == [2, 5]
