"""Co-partitioned hash join: byte-identity and the selection rule.

The second half of the sharded data plane: when both sides of an
equi-join are bare scans of tables partitioned compatibly on the join
key, the optimizer annotates the join ``co_partitioned`` and the
partitioned executor probes shard-i-against-shard-i through the
substrate — no shuffle.  The oracle is unchanged: values, row order,
``ExecutionMetrics``, and the obs ``values`` snapshot must be
byte-identical to the unpartitioned hash join at every partition count,
on every backend; the only permitted difference is the
:class:`PartitionRun` shuffle accounting, which lives outside both.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.engine import (
    Database,
    ExecutionMetrics,
    PARTITION_SCOPE,
    PartitionedMorselExecutor,
    PartitionedTable,
    Schema,
    parse_select,
)
from repro.engine import plan as lp
from repro.engine.morsel import _SCAN_CACHE
from repro.engine.operators import (
    ColumnarExecutor,
    CoPartitionedHashJoinExec,
    HashJoinExec,
    JOIN_EXECS,
)
from repro.engine.table import Table
from repro.ensemble.store import result_fingerprint
from repro.faults.plan import FaultPlan, injected

from tests.test_engine_columnar import CORPUS, nullful_db  # noqa: F401

BACKENDS = ("serial", "thread", "process")
PARTITION_COUNTS = (1, 2, 7)

JOIN_SQL = (
    "SELECT p.pid, r.mult FROM person p JOIN region r "
    "ON p.region = r.region"
)
LEFT_JOIN_SQL = (
    "SELECT p.pid, r.mult FROM person p LEFT JOIN region r "
    "ON p.region = r.region"
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_MORSEL", raising=False)
    monkeypatch.delenv("REPRO_ENGINE_EXECUTION", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    _SCAN_CACHE.clear()


def _co_partition(db, n, scheme="hash"):
    db.partition_table("person", "region", n, scheme=scheme)
    db.partition_table("region", "region", n, scheme=scheme)


def _unpartition(db):
    for name in ("person", "region"):
        if db.partitioning(name) is not None:
            db.unpartition_table(name)


def _join_algorithm(db, sql):
    plan = db.optimize_plan(parse_select(sql))
    joins = [n for n in lp.walk(plan) if isinstance(n, lp.Join)]
    assert len(joins) == 1
    return joins[0].algorithm


class TestSelectionRule:
    """``choose_join_algorithms`` picks co-partitioned exactly when the
    executor can exploit it, and falls back everywhere else."""

    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_selected_for_compatible_hash_partitionings(self, nullful_db, n):
        _co_partition(nullful_db, n)
        try:
            assert _join_algorithm(nullful_db, JOIN_SQL) == "co_partitioned"
            assert (
                _join_algorithm(nullful_db, LEFT_JOIN_SQL)
                == "co_partitioned"
            )
        finally:
            _unpartition(nullful_db)

    def test_not_selected_without_partitioning(self, nullful_db):
        assert _join_algorithm(nullful_db, JOIN_SQL) is None

    def test_not_selected_with_one_side_unpartitioned(self, nullful_db):
        nullful_db.partition_table("person", "region", 3)
        try:
            assert _join_algorithm(nullful_db, JOIN_SQL) is None
        finally:
            _unpartition(nullful_db)

    def test_not_selected_with_mismatched_counts(self, nullful_db):
        nullful_db.partition_table("person", "region", 3)
        nullful_db.partition_table("region", "region", 4)
        try:
            assert _join_algorithm(nullful_db, JOIN_SQL) is None
        finally:
            _unpartition(nullful_db)

    def test_not_selected_with_mismatched_schemes(self, nullful_db):
        nullful_db.partition_table("person", "region", 3, scheme="hash")
        nullful_db.partition_table("region", "region", 3, scheme="range")
        try:
            assert _join_algorithm(nullful_db, JOIN_SQL) is None
        finally:
            _unpartition(nullful_db)

    def test_not_selected_on_non_partition_key(self, nullful_db):
        # Both sides are partitioned, but the equi key (age) is not the
        # partition key — matching rows would not co-locate.
        _co_partition(nullful_db, 3)
        try:
            algo = _join_algorithm(
                nullful_db,
                "SELECT a.pid AS x, b.pid AS y FROM person a "
                "JOIN person b ON a.age = b.age",
            )
        finally:
            _unpartition(nullful_db)
        assert algo != "co_partitioned"

    def test_not_selected_when_pushdown_interposes_a_filter(self, nullful_db):
        # The WHERE clause is pushed below the join, so the left input
        # is Filter(Scan) — positions no longer index the join input.
        _co_partition(nullful_db, 3)
        try:
            algo = _join_algorithm(
                nullful_db, JOIN_SQL + " WHERE p.age > 20"
            )
        finally:
            _unpartition(nullful_db)
        assert algo != "co_partitioned"

    def test_range_compatibility_requires_equal_boundaries(self):
        a = Table("a", Schema.of(k=int))
        b = Table("b", Schema.of(k=int))
        c = Table("c", Schema.of(k=int))
        for v in range(12):
            a.insert({"k": v})
            b.insert({"k": v})
            c.insert({"k": v * 100})  # different key set, different cuts
        pa = PartitionedTable(a, "k", 3, "range")
        pb = PartitionedTable(b, "k", 3, "range")
        pc = PartitionedTable(c, "k", 3, "range")
        assert pa.compatible_with(pb)
        assert not pa.compatible_with(pc)
        assert not pa.compatible_with(PartitionedTable(b, "k", 4, "range"))
        assert not pa.compatible_with(PartitionedTable(b, "k", 3, "hash"))


class TestCoPartitionedIdentity:
    """Results, metrics, and obs snapshots equal the unpartitioned run."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_corpus_fingerprint(self, nullful_db, n, backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        baseline = result_fingerprint(
            [nullful_db.sql(sql, execution="row") for sql in CORPUS]
        )
        _co_partition(nullful_db, n)
        try:
            partitioned = result_fingerprint(
                [nullful_db.sql(sql, morsel_size=7) for sql in CORPUS]
            )
        finally:
            _unpartition(nullful_db)
        assert partitioned == baseline

    def test_corpus_obs_values(self, nullful_db):
        snapshots = {}
        for label in ("row", "co_partitioned"):
            if label == "co_partitioned":
                _co_partition(nullful_db, 3)
            observer = obs.enable()
            observer.reset()
            try:
                for sql in CORPUS:
                    if label == "row":
                        nullful_db.sql(sql, execution="row")
                    else:
                        nullful_db.sql(sql, morsel_size=7)
                snapshots[label] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
                _unpartition(nullful_db)
        assert snapshots["co_partitioned"] == snapshots["row"]

    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_join_metrics_identical(self, nullful_db, n):
        counts = {}
        for label in ("hash", "co_partitioned"):
            if label == "co_partitioned":
                _co_partition(nullful_db, n)
            nullful_db.metrics.reset()
            try:
                nullful_db.sql(
                    JOIN_SQL,
                    **(
                        {"execution": "columnar"}
                        if label == "hash"
                        else {"morsel_size": 7}
                    ),
                )
            finally:
                _unpartition(nullful_db)
            m = nullful_db.metrics
            counts[label] = (
                m.rows_scanned,
                m.join_pairs_examined,
                m.rows_joined,
                m.rows_output,
            )
        assert counts["co_partitioned"] == counts["hash"]

    def test_fault_injection_recovers_identically(self, nullful_db):
        baseline = nullful_db.sql(JOIN_SQL, execution="row")
        _co_partition(nullful_db, 3)
        plan = FaultPlan(failures={(PARTITION_SCOPE, 0): 1})
        try:
            with injected(plan):
                rows = nullful_db.sql(JOIN_SQL, morsel_size=7)
        finally:
            _unpartition(nullful_db)
        assert rows == baseline


class TestShuffleAccounting:
    def _execute(self, db, sql):
        plan = db.optimize_plan(parse_select(sql))
        executor = PartitionedMorselExecutor(
            db, ExecutionMetrics(), morsel_size=7
        )
        rows = executor.execute(plan)
        return executor, rows

    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_join_records_avoided_shuffle_bytes(self, nullful_db, n):
        baseline = nullful_db.sql(JOIN_SQL, execution="row")
        _co_partition(nullful_db, n)
        try:
            executor, rows = self._execute(nullful_db, JOIN_SQL)
        finally:
            _unpartition(nullful_db)
        assert rows == baseline
        (run,) = executor.partition_runs
        assert run.table == "person join region"
        assert (run.key, run.scheme, run.partitions) == ("region", "hash", n)
        assert run.rows_in == 60 + 3
        assert sum(run.partition_rows) == 60 + 3
        assert run.rows_merged == len(rows)
        # The whole payload of both sides would otherwise be eligible
        # for repartitioning — the avoided volume is strictly positive.
        assert run.shuffle_bytes_avoided > 0

    def test_plain_scan_fanout_records_zero(self, nullful_db):
        nullful_db.partition_table("person", "region", 3)
        try:
            executor, _ = self._execute(
                nullful_db, "SELECT pid FROM person WHERE age > 30"
            )
        finally:
            _unpartition(nullful_db)
        (run,) = executor.partition_runs
        assert run.shuffle_bytes_avoided == 0


class TestFallbacks:
    """A ``co_partitioned`` annotation can never change results."""

    def test_registry_exposes_co_partitioned(self):
        assert JOIN_EXECS["co_partitioned"] is CoPartitionedHashJoinExec
        assert issubclass(CoPartitionedHashJoinExec, HashJoinExec)

    def test_plain_columnar_executor_degrades_to_hash(self, nullful_db):
        # A plan annotated co_partitioned executed by the ordinary
        # columnar executor (no partition awareness at all) produces the
        # plain hash join result.
        plan = parse_select(JOIN_SQL)
        joins = [n for n in lp.walk(plan) if isinstance(n, lp.Join)]
        annotated = _replace_join(plan, joins[0], "co_partitioned")
        executor = ColumnarExecutor(nullful_db, ExecutionMetrics())
        rows = executor.execute(annotated)
        assert rows == nullful_db.sql(JOIN_SQL, execution="row")

    def test_partitioning_dropped_after_planning(self, nullful_db):
        # The optimizer saw compatible partitionings; by execution time
        # they are gone.  The executor's runtime guards fall back to the
        # inherited (hash) path, identically.
        _co_partition(nullful_db, 3)
        annotated = nullful_db.optimize_plan(parse_select(JOIN_SQL))
        _unpartition(nullful_db)
        executor = PartitionedMorselExecutor(
            nullful_db, ExecutionMetrics(), morsel_size=7
        )
        rows = executor.execute(annotated)
        assert executor.partition_runs == []
        assert rows == nullful_db.sql(JOIN_SQL, execution="row")


def _replace_join(node, target, algorithm):
    from dataclasses import replace

    if node is target:
        return replace(node, algorithm=algorithm)
    children = [
        _replace_join(child, target, algorithm)
        for child in node.children()
    ]
    return node.with_children(children) if children else node
