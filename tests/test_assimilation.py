"""Tests for importance sampling, particle filtering, and wildfire DA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assimilation import (
    KernelDensityEstimator,
    LinearGaussianSSM,
    WildfireModel,
    WildfireParameters,
    effective_sample_size,
    importance_sample,
    kalman_filter,
    multinomial_resample,
    normalize_log_weights,
    normalize_weights,
    particle_filter,
    silverman_bandwidth,
    sis_weight_update,
    stratified_resample,
    systematic_resample,
    wildfire_bootstrap_filter,
    wildfire_sensor_filter,
)
from repro.assimilation.wildfire import BURNED, BURNING, UNBURNED
from repro.errors import FilteringError
from repro.stats import make_rng


class TestWeights:
    def test_normalize(self):
        w = normalize_weights(np.array([1.0, 3.0]))
        np.testing.assert_allclose(w, [0.25, 0.75])

    def test_normalize_rejects_negative(self):
        with pytest.raises(FilteringError):
            normalize_weights(np.array([-1.0, 2.0]))

    def test_normalize_rejects_collapse(self):
        with pytest.raises(FilteringError):
            normalize_weights(np.zeros(3))

    def test_log_normalization_stable(self):
        w = normalize_log_weights(np.array([-1000.0, -1000.0, -1001.0]))
        assert w.sum() == pytest.approx(1.0)
        assert w[0] == pytest.approx(w[1])

    def test_effective_sample_size_bounds(self):
        uniform = np.full(10, 0.1)
        assert effective_sample_size(uniform) == pytest.approx(10.0)
        collapsed = np.zeros(10)
        collapsed[0] = 1.0
        assert effective_sample_size(collapsed) == pytest.approx(1.0)

    def test_sis_update(self):
        out = sis_weight_update(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        np.testing.assert_allclose(out, [1.0, 0.0])


class TestImportanceSampling:
    def test_estimates_normal_mean_from_wide_proposal(self, rng):
        estimate = importance_sample(
            target_log_density=lambda x: -0.5 * (x - 2.0) ** 2,
            proposal_log_density=lambda x: -0.5 * (x / 4.0) ** 2
            - np.log(4.0),
            proposal_sampler=lambda r, n: r.normal(0, 4.0, size=n),
            integrand=lambda x: x,
            n=40000,
            rng=rng,
        )
        assert estimate.value == pytest.approx(2.0, abs=0.1)

    def test_normalizing_constant(self, rng):
        # Unnormalized N(0,1): gamma = exp(-x^2/2), Z = sqrt(2 pi).
        estimate = importance_sample(
            target_log_density=lambda x: -0.5 * x**2,
            proposal_log_density=lambda x: -0.5 * (x / 2.0) ** 2
            - np.log(2.0 * np.sqrt(2 * np.pi)),
            proposal_sampler=lambda r, n: r.normal(0, 2.0, size=n),
            integrand=lambda x: x,
            n=40000,
            rng=rng,
        )
        assert estimate.normalizing_constant == pytest.approx(
            np.sqrt(2 * np.pi), rel=0.05
        )


class TestResampling:
    @pytest.mark.parametrize(
        "resample",
        [multinomial_resample, systematic_resample, stratified_resample],
        ids=["multinomial", "systematic", "stratified"],
    )
    def test_frequency_proportional_to_weights(self, resample, rng):
        weights = np.array([0.5, 0.3, 0.2])
        counts = np.zeros(3)
        for _ in range(400):
            indices = resample(weights, rng)
            for i in indices:
                counts[i] += 1
        freq = counts / counts.sum()
        np.testing.assert_allclose(freq, weights, atol=0.05)

    def test_systematic_preserves_heavy_particles(self, rng):
        weights = np.array([0.96, 0.02, 0.02])
        indices = systematic_resample(weights, rng)
        assert (indices == 0).sum() >= 2

    def test_accepts_unnormalized_weights(self, rng):
        """Any nonnegative finite vector with positive sum normalizes.

        Accumulated importance weights arrive unnormalized (their sum is
        whatever the likelihoods produced); resampling must treat
        ``[0.5, 0.2]`` exactly like the normalized ``[5/7, 2/7]``.
        """
        raw = np.array([0.5, 0.2])
        state = rng.bit_generator.state
        from_raw = systematic_resample(raw, rng)
        rng.bit_generator.state = state
        from_normalized = systematic_resample(raw / raw.sum(), rng)
        assert np.array_equal(from_raw, from_normalized)

    def test_accepts_float_drift_sum(self, rng):
        # Sum 0.99 — the drifted-but-valid case the old strict
        # isclose(sum, 1) check wrongly rejected.
        indices = systematic_resample(np.array([0.33, 0.33, 0.33]), rng)
        assert indices.shape == (3,)

    def test_rejects_unusable_weights(self, rng):
        for bad in (
            np.array([0.0, 0.0]),          # zero sum: nothing to draw
            np.array([0.5, np.nan]),       # NaN entry
            np.array([0.5, np.inf]),       # non-finite entry
            np.array([0.8, -0.2]),         # negative entry
        ):
            with pytest.raises(FilteringError):
                systematic_resample(bad, rng)


class TestKDE:
    def test_density_integrates_to_one(self, rng):
        data = rng.normal(size=300)
        kde = KernelDensityEstimator(data)
        grid = np.linspace(-6, 6, 1001)
        integral = np.trapezoid(kde.evaluate(grid), grid)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_recovers_normal_density(self, rng):
        data = rng.normal(size=3000)
        kde = KernelDensityEstimator(data)
        from scipy.stats import norm

        grid = np.linspace(-2, 2, 21)
        np.testing.assert_allclose(
            kde.evaluate(grid), norm.pdf(grid), atol=0.05
        )

    @pytest.mark.parametrize("kernel", ["gaussian", "laplace", "epanechnikov"])
    def test_all_kernels_positive_at_mode(self, kernel, rng):
        data = rng.normal(size=200)
        kde = KernelDensityEstimator(data, kernel=kernel)
        assert kde.evaluate([0.0])[0] > 0

    def test_silverman_shrinks_with_n(self, rng):
        small = silverman_bandwidth(rng.normal(size=50))
        large = silverman_bandwidth(rng.normal(size=5000))
        assert large < small

    def test_validation(self):
        with pytest.raises(FilteringError):
            KernelDensityEstimator(np.array([]))
        with pytest.raises(FilteringError):
            KernelDensityEstimator(np.array([1.0]), kernel="box")


class TestParticleFilterLinearGaussian:
    def test_converges_to_kalman(self):
        ssm = LinearGaussianSSM()
        _, y = ssm.simulate(40, make_rng(0))
        kalman_means, _ = kalman_filter(ssm, y)
        model = ssm.to_state_space_model()
        errors = {}
        for n in (50, 2000):
            result = particle_filter(model, y, n, make_rng(1))
            errors[n] = float(
                np.sqrt(np.mean((result.filtered_means[:, 0] - kalman_means) ** 2))
            )
        assert errors[2000] < errors[50]
        assert errors[2000] < 0.1

    def test_optimal_proposal_improves_ess(self):
        ssm = LinearGaussianSSM(r=0.3)  # informative observations
        _, y = ssm.simulate(40, make_rng(2))
        model = ssm.to_state_space_model()
        bootstrap = particle_filter(model, y, 400, make_rng(3))
        optimal = particle_filter(
            model, y, 400, make_rng(3), proposal=ssm.optimal_proposal()
        )
        assert (
            optimal.effective_sample_sizes.mean()
            > bootstrap.effective_sample_sizes.mean()
        )

    def test_log_likelihood_finite(self):
        ssm = LinearGaussianSSM()
        _, y = ssm.simulate(20, make_rng(4))
        result = particle_filter(
            ssm.to_state_space_model(), y, 200, make_rng(5)
        )
        assert np.isfinite(result.log_likelihood)

    def test_validation(self):
        ssm = LinearGaussianSSM()
        model = ssm.to_state_space_model()
        with pytest.raises(FilteringError):
            particle_filter(model, [1.0], 1, make_rng(0))
        with pytest.raises(FilteringError):
            particle_filter(model, [], 10, make_rng(0))
        model_no_density = ssm.to_state_space_model()
        model_no_density.transition_log_density = None
        with pytest.raises(FilteringError):
            particle_filter(
                model_no_density,
                [1.0],
                10,
                make_rng(0),
                proposal=ssm.optimal_proposal(),
            )


class TestWildfireModel:
    @pytest.fixture
    def model(self):
        return WildfireModel(
            WildfireParameters(height=8, width=8, sensor_fraction=0.5),
            seed=0,
        )

    def test_fire_spreads_and_burns_out(self, model):
        rng = make_rng(1)
        states = model.simulate(25, rng)
        assert model.burned_area(states[-1]) > model.burned_area(states[0])
        # A burned cell never un-burns.
        for before, after in zip(states, states[1:]):
            assert not np.any((before == BURNED) & (after != BURNED))

    def test_unburned_never_skips_to_burned(self, model):
        rng = make_rng(2)
        states = model.simulate(20, rng)
        for before, after in zip(states, states[1:]):
            assert not np.any((before == UNBURNED) & (after == BURNED))

    def test_observation_log_density_prefers_truth(self, model):
        rng = make_rng(3)
        truth = model.simulate(8, rng)[-1]
        obs = model.observe(truth, rng)
        wrong = model.initial_state((0, 0))
        ll = model.observation_log_density(
            np.stack([truth, wrong]), obs
        )
        assert ll[0] > ll[1]

    def test_wind_biases_spread(self):
        params = WildfireParameters(
            height=15, width=15, wind=(0.9, 0.0), spread_probability=0.25
        )
        model = WildfireModel(params, seed=4)
        downwind = 0
        upwind = 0
        for seed in range(20):
            final = model.simulate(10, make_rng(seed))[-1]
            burned = np.argwhere(final != UNBURNED)
            center = params.height // 2
            downwind += int((burned[:, 0] > center).sum())
            upwind += int((burned[:, 0] < center).sum())
        assert downwind > upwind


class TestWildfireFilters:
    def _scenario(self, seed=0, steps=10):
        params = WildfireParameters(height=8, width=8, sensor_fraction=0.5)
        model = WildfireModel(params, seed=seed)
        rng = make_rng(seed + 100)
        truth = model.simulate(steps, rng)
        observations = [model.observe(s, rng) for s in truth[1:]]
        return model, truth[1:], observations

    def test_bootstrap_filter_tracks_fire(self):
        model, truth, obs = self._scenario(0)
        result = wildfire_bootstrap_filter(
            model, obs, truth, n_particles=30, rng=make_rng(1)
        )
        assert result.average_error < 0.5
        assert result.mean_errors.shape == (len(obs),)

    def test_assimilation_beats_blind_simulation(self):
        model, truth, obs = self._scenario(1, steps=12)
        filtered = wildfire_bootstrap_filter(
            model, obs, truth, n_particles=40, rng=make_rng(2)
        )
        # Blind: single unassimilated run from the same ignition.
        blind = model.simulate(12, make_rng(3))[1:]
        blind_err = np.mean(
            [model.state_error(b, t) for b, t in zip(blind, truth)]
        )
        assert filtered.average_error < blind_err + 0.05

    def test_sensor_filter_runs_and_is_competitive(self):
        model, truth, obs = self._scenario(2, steps=8)
        boot = wildfire_bootstrap_filter(
            model, obs, truth, n_particles=25, rng=make_rng(4)
        )
        sens = wildfire_sensor_filter(
            model, obs, truth, n_particles=25, rng=make_rng(4),
            kde_samples=5,
        )
        assert sens.average_error < boot.average_error + 0.1

    def test_validation(self):
        model, truth, obs = self._scenario(3, steps=4)
        with pytest.raises(FilteringError):
            wildfire_bootstrap_filter(model, obs, truth, 1, make_rng(0))
        with pytest.raises(FilteringError):
            wildfire_sensor_filter(
                model, obs, truth, 10, make_rng(0), kde_samples=2
            )
        with pytest.raises(FilteringError):
            wildfire_sensor_filter(
                model, obs, truth, 10, make_rng(0), sensor_confidence=2.0
            )
