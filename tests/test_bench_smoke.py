"""CI smoke test for the benchmark harness.

Runs two benchmarks' experiment bodies in ``--quick`` mode (small sizes,
serial backend) so the tier-1 suite exercises the harness — config
knobs, timing, report/JSON persistence — without multi-minute runs.
The full-size runs stay behind ``pytest benchmarks/``.
"""

from __future__ import annotations

import json

import pytest

from benchmarks._util import RESULTS_DIR, BenchConfig
from benchmarks.bench_engine_columnar import (
    run_experiment as run_columnar_experiment,
)
from benchmarks.bench_engine_morsel import (
    run_experiment as run_morsel_experiment,
)
from benchmarks.bench_ensemble_reuse import (
    run_experiment as run_ensemble_experiment,
)
from benchmarks.bench_fault_overhead import (
    run_experiment as run_fault_experiment,
)
from benchmarks.bench_mcdb_tuple_bundles import (
    run_experiment as run_mcdb_experiment,
)
from benchmarks.bench_parallel_backends import (
    run_experiment as run_parallel_experiment,
)
from benchmarks.bench_delta_invalidation import (
    run_experiment as run_delta_experiment,
)
from benchmarks.bench_serve import run_experiment as run_serve_experiment

pytestmark = pytest.mark.bench_smoke

QUICK = BenchConfig(quick=True, backend="serial")


def test_quick_mcdb_tuple_bundles():
    rows, speedups = run_mcdb_experiment(QUICK)
    assert len(rows) == 2
    # Estimates from both paths agree on the same distribution.
    for _, naive_mean, bundled_mean, *_ in rows:
        assert abs(naive_mean - bundled_mean) < 2.0
    assert all(s > 0 for s in speedups.values())


def test_quick_engine_columnar():
    rows, speedups, identical = run_columnar_experiment(QUICK)
    # Three workloads, all byte-identical across executors.
    assert len(rows) == 3
    assert all(identical.values())
    assert all(s > 0 for s in speedups.values())


def test_quick_engine_morsel():
    outcome = run_morsel_experiment(QUICK)
    # Three workloads, byte-identical results and obs snapshots across
    # all five execution configurations.
    assert len(outcome["rows"]) == 3
    assert all(outcome["identical"].values())
    assert all(outcome["obs_identical"].values())
    assert all(outcome["metrics_identical"].values())


def test_quick_parallel_backends():
    rows, identical = run_parallel_experiment(QUICK)
    # Two workloads x three backends, all byte-identical to serial.
    assert len(rows) == 6
    assert all(identical.values())


def test_quick_fault_overhead():
    rows, identical = run_fault_experiment(QUICK)
    # Two workloads, each byte-identical with recovery on and off.
    assert len(rows) == 2
    assert all(identical.values())


def test_quick_ensemble_reuse():
    rows, reuse_ok = run_ensemble_experiment(QUICK)
    # Two ensemble families; warm reruns execute zero nodes.
    assert len(rows) == 2
    assert all(row[-1] == 0 for row in rows)
    assert all(reuse_ok.values())


def test_quick_serve():
    rows, dedupe, shed = run_serve_experiment(QUICK)
    # Three workloads; identical concurrent requests cost exactly one
    # execution with byte-identical responses, and a burst against a
    # tiny server resolves every request (answered or explicitly shed).
    assert len(rows) == 3
    assert dedupe["executions"] == 1
    assert dedupe["byte_identical"]
    assert dedupe["dedupe_ratio"] > 0
    assert shed["all_resolved"]


def test_bench_config_env_roundtrip(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
    monkeypatch.setenv("REPRO_BENCH_BACKEND", "thread")
    config = BenchConfig.from_env()
    assert config.quick and config.backend == "thread"


def test_save_json_writes_self_describing_document(tmp_path, monkeypatch):
    import benchmarks._util as util

    monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
    path = util.save_json("SMOKE", {"rows": [[1, 2.5]]})
    document = json.loads(path.read_text())
    assert document["experiment"] == "SMOKE"
    assert document["host"]["cpu_count"] >= 1
    assert document["rows"] == [[1, 2.5]]
    # Provenance header: producing commit + active repro env knobs.
    assert document["git_commit"]
    assert set(document["env"]) == {
        "REPRO_BACKEND", "REPRO_FAULTS", "REPRO_OBS",
        "REPRO_ENGINE_EXECUTION", "REPRO_ENGINE_MORSEL",
    }


def test_quick_delta_invalidation():
    rows, acceptance = run_delta_experiment(QUICK)
    # Three backends, each recomputing exactly the perturbed cone with
    # byte-identical reuse against its own copy of the cold store.
    assert len(rows) == 3
    assert all(acceptance.values()), acceptance
    payload = json.loads((RESULTS_DIR / "BENCH_delta.json").read_text())
    fraction_column = payload["columns"].index("recompute_fraction")
    assert all(row[fraction_column] < 0.05 for row in payload["rows"])
