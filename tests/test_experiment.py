"""Tests for Splash-style experiment management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.composite import (
    CallableModel,
    ExperimentManager,
    InputFileTemplate,
    ParameterBinding,
)
from repro.doe import figure5_design
from repro.errors import SimulationError


class _ToyModel:
    def __init__(self):
        self.rate = 1.0
        self.scale = 2.0


@pytest.fixture
def manager():
    model = _ToyModel()
    manager = ExperimentManager(
        run_fn=lambda rng: model.rate * model.scale + rng.normal(0, 1e-12),
        seed=0,
    )
    manager.register_parameter(
        ParameterBinding("rate", model, "rate", low=0.5, high=1.5)
    )
    manager.register_parameter(
        ParameterBinding("scale", model, "scale", low=1.0, high=3.0)
    )
    manager._model = model  # keep alive for assertions
    return manager


class TestParameterRegistry:
    def test_unified_view(self, manager):
        assert manager.parameter_names == ["rate", "scale"]
        assert manager.parameter_ranges()["rate"] == (0.5, 1.5)

    def test_duplicate_rejected(self, manager):
        with pytest.raises(SimulationError):
            manager.register_parameter(
                ParameterBinding("rate", manager._model, "rate")
            )

    def test_assignment_applies_to_component(self, manager):
        manager.run_assignment({"rate": 0.7, "scale": 2.5})
        assert manager._model.rate == 0.7
        assert manager._model.scale == 2.5

    def test_unknown_parameter_rejected(self, manager):
        with pytest.raises(SimulationError):
            manager.run_assignment({"bogus": 1.0})

    def test_unknown_attribute_rejected(self):
        manager = ExperimentManager(lambda rng: 0.0)
        manager.register_parameter(
            ParameterBinding("x", _ToyModel(), "missing_attr")
        )
        with pytest.raises(SimulationError):
            manager.run_assignment({"x": 1.0})


class TestDecoding:
    def test_decode_levels(self, manager):
        assignment = manager.decode_levels([-1.0, 1.0])
        assert assignment == {"rate": 0.5, "scale": 3.0}

    def test_decode_midpoint(self, manager):
        assignment = manager.decode_levels([0.0, 0.0])
        assert assignment == {"rate": 1.0, "scale": 2.0}

    def test_decode_requires_ranges(self):
        manager = ExperimentManager(lambda rng: 0.0)
        manager.register_parameter(ParameterBinding("x", _ToyModel(), "rate"))
        with pytest.raises(SimulationError):
            manager.decode_levels([0.0])

    def test_decode_arity(self, manager):
        with pytest.raises(SimulationError):
            manager.decode_levels([0.0])


class TestTemplates:
    def test_template_rendered_per_run(self, manager):
        manager.register_template(
            InputFileTemplate("config.txt", "rate=$rate\nscale=$scale\n")
        )
        run = manager.run_assignment({"rate": 0.9, "scale": 1.5})
        assert run.rendered_inputs["config.txt"] == "rate=0.9\nscale=1.5\n"

    def test_missing_placeholder_raises(self, manager):
        manager.register_template(
            InputFileTemplate("bad.txt", "value=$missing\n")
        )
        with pytest.raises(SimulationError):
            manager.run_assignment({"rate": 1.0, "scale": 2.0})


class TestDesignExecution:
    def test_run_coded_design(self, manager):
        runs = manager.run_design(figure5_design() / 4.0, coded=True)
        assert len(runs) == 9
        for run in runs:
            expected = run.assignment["rate"] * run.assignment["scale"]
            assert run.response == pytest.approx(expected, abs=1e-6)

    def test_run_natural_design(self, manager):
        runs = manager.run_design(
            [[1.0, 2.0], [0.5, 3.0]], coded=False
        )
        assert runs[0].response == pytest.approx(2.0, abs=1e-6)
        assert runs[1].response == pytest.approx(1.5, abs=1e-6)

    def test_replications(self, manager):
        runs = manager.run_design([[1.0, 2.0]], coded=False, replications=3)
        assert len(runs) == 3

    def test_reproducible_responses(self, manager):
        a = manager.run_assignment({"rate": 1.0, "scale": 2.0}).response
        b = manager.run_assignment({"rate": 1.0, "scale": 2.0}).response
        assert a == b
