"""Tests for the agent-based simulation subpackage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abs import (
    Agent,
    AgentModel,
    SchellingModel,
    SelfJoinStats,
    Simulation,
    TrafficModel,
    averaging_update,
    full_selfjoin_step,
    fundamental_diagram,
    grid_selfjoin_step,
    neighbor_sets,
    random_spatial_agents,
)
from repro.errors import SimulationError
from repro.stats import make_rng


class CountingModel(AgentModel):
    """Trivial model: each agent increments a counter each tick."""

    def create_agents(self, rng):
        return [Agent(i, {"count": 0}) for i in range(5)]

    def step(self, agents, rng, tick):
        for agent in agents:
            agent["count"] += 1


class TestKernel:
    def test_run_collects_metrics(self, rng):
        sim = Simulation(
            CountingModel(),
            metrics={"total": lambda agents: sum(a["count"] for a in agents)},
        )
        result = sim.run(3, rng)
        assert list(result.metric_array("total")) == [0.0, 5.0, 10.0, 15.0]

    def test_snapshots_recorded(self, rng):
        sim = Simulation(CountingModel(), record_snapshots=True)
        result = sim.run(2, rng)
        assert result.ticks == 3
        assert result.snapshots[2][0]["count"] == 2

    def test_unknown_metric(self, rng):
        result = Simulation(CountingModel()).run(1, rng)
        with pytest.raises(SimulationError):
            result.metric_array("nope")

    def test_agent_dict_interface(self):
        a = Agent(1, {"x": 2})
        a["y"] = 3
        assert a["x"] == 2
        assert a.snapshot() == {"agent_id": 1, "x": 2, "y": 3}

    def test_negative_ticks(self, rng):
        with pytest.raises(SimulationError):
            Simulation(CountingModel()).run(-1, rng)


class TestSelfJoin:
    def test_full_and_grid_neighbor_parity(self):
        agents = random_spatial_agents(150, 10.0, make_rng(1))
        assert neighbor_sets(agents, 1.2, "full") == neighbor_sets(
            agents, 1.2, "grid"
        )

    def test_parity_with_larger_cells(self):
        agents = random_spatial_agents(100, 8.0, make_rng(2))

        def capture_sets(step_fn, **kwargs):
            sets = []
            by_id = {id(a): i for i, a in enumerate(agents)}
            step_fn(
                agents,
                1.0,
                lambda a, ns: (sets.append(sorted(by_id[id(n)] for n in ns)), a)[1],
                **kwargs,
            )
            return sets

        full = capture_sets(full_selfjoin_step)
        grid2 = capture_sets(grid_selfjoin_step, cell_size=2.5)
        assert full == grid2

    def test_grid_examines_fewer_pairs(self):
        agents = random_spatial_agents(300, 20.0, make_rng(3))
        full_stats = SelfJoinStats()
        grid_stats = SelfJoinStats()
        identity = lambda a, ns: a
        full_selfjoin_step(agents, 1.0, identity, full_stats)
        grid_selfjoin_step(agents, 1.0, identity, grid_stats)
        assert grid_stats.pairs_examined < full_stats.pairs_examined / 10
        assert grid_stats.pairs_matched == full_stats.pairs_matched

    def test_cell_size_below_radius_rejected(self):
        agents = random_spatial_agents(10, 5.0, make_rng(4))
        with pytest.raises(SimulationError):
            grid_selfjoin_step(agents, 1.0, lambda a, ns: a, cell_size=0.5)

    def test_averaging_update_contracts(self):
        agents = [
            {"agent_id": 0, "x": 0.0, "y": 0.0, "v": 0.0},
            {"agent_id": 1, "x": 0.1, "y": 0.0, "v": 10.0},
        ]
        out = full_selfjoin_step(agents, 1.0, averaging_update("v"))
        assert out[0]["v"] == pytest.approx(5.0)
        assert out[1]["v"] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            full_selfjoin_step([], 1.0, lambda a, ns: a)
        with pytest.raises(SimulationError):
            full_selfjoin_step([{"x": 0.0, "y": 0.0}], -1.0, lambda a, ns: a)
        with pytest.raises(SimulationError):
            full_selfjoin_step([{"z": 0.0}], 1.0, lambda a, ns: a)

    @given(
        n=st.integers(5, 60),
        radius=st.floats(0.3, 3.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_property(self, n, radius, seed):
        agents = random_spatial_agents(n, 10.0, make_rng(seed))
        assert neighbor_sets(agents, radius, "full") == neighbor_sets(
            agents, radius, "grid"
        )


class TestTraffic:
    def test_car_count_conserved(self):
        model = TrafficModel(length=100, density=0.2)
        rng = make_rng(0)
        state = model.initial_state(rng)
        n0 = state.num_cars
        for _ in range(20):
            state = model.step(state, rng)
            assert state.num_cars == n0

    def test_two_lane_conserves_cars(self):
        model = TrafficModel(length=80, density=0.25, num_lanes=2)
        rng = make_rng(1)
        state = model.initial_state(rng)
        n0 = state.num_cars
        for _ in range(20):
            state = model.step(state, rng)
            assert state.num_cars == n0

    def test_free_flow_at_low_density(self):
        run = TrafficModel(length=200, density=0.03, p_dawdle=0.1).run(
            150, make_rng(2), warmup=50
        )
        assert run.average_speed > 3.5
        assert run.jam_fraction < 0.05

    def test_jams_emerge_at_high_density(self):
        low = TrafficModel(length=200, density=0.05).run(
            150, make_rng(3), warmup=50
        )
        high = TrafficModel(length=200, density=0.4).run(
            150, make_rng(4), warmup=50
        )
        assert high.jam_fraction > low.jam_fraction + 0.1
        assert high.average_speed < low.average_speed

    def test_fundamental_diagram_peak_interior(self):
        densities = np.array([0.05, 0.15, 0.3, 0.5, 0.7])
        rows = fundamental_diagram(densities, ticks=150, warmup=50, length=120)
        flows = [flow for _, flow, _ in rows]
        # Flow peaks at an interior density and falls at high density.
        peak = int(np.argmax(flows))
        assert 0 < peak < len(flows) - 1 or flows[0] < max(flows)
        assert flows[-1] < max(flows)

    def test_validation(self):
        with pytest.raises(SimulationError):
            TrafficModel(density=0.0)
        with pytest.raises(SimulationError):
            TrafficModel(num_lanes=3)
        with pytest.raises(SimulationError):
            TrafficModel(length=1)


class TestSchelling:
    def test_segregation_increases(self):
        result = SchellingModel(size=25, tolerance=0.4).run(80, make_rng(5))
        assert result.final_segregation > result.segregation_series[0] + 0.1

    def test_converged_run_has_no_unhappy(self):
        result = SchellingModel(size=20, tolerance=0.3).run(200, make_rng(6))
        if result.converged:
            assert result.unhappy_series[-1] == 0

    def test_zero_tolerance_converges_immediately(self):
        result = SchellingModel(size=15, tolerance=0.0).run(10, make_rng(7))
        assert result.converged
        assert result.ticks_run == 1

    def test_agent_count_conserved(self):
        model = SchellingModel(size=20)
        rng = make_rng(8)
        grid = model.initial_grid(rng)
        counts = [(grid == t).sum() for t in (1, 2)]
        model.step(grid, rng)
        assert [(grid == t).sum() for t in (1, 2)] == counts

    def test_validation(self):
        with pytest.raises(SimulationError):
            SchellingModel(size=2)
        with pytest.raises(SimulationError):
            SchellingModel(occupancy=1.0)


class PhasedModel(AgentModel):
    """A model using the default sense->think->respond decomposition."""

    def create_agents(self, rng):
        return [Agent(i, {"x": float(i), "target": 0.0}) for i in range(4)]

    def sense(self, agent, agents, tick):
        # Perceive the population mean position.
        return sum(a["x"] for a in agents) / len(agents)

    def think(self, agent, perception, rng):
        # Intend to move halfway toward the mean.
        return (agent["x"] + perception) / 2.0

    def respond(self, agent, intention):
        agent["x"] = intention


class TestSenseThinkRespond:
    def test_phases_applied_synchronously(self, rng):
        """All agents sense the *same* pre-step state (no drift bias)."""
        sim = Simulation(
            PhasedModel(),
            metrics={"spread": lambda agents: max(a["x"] for a in agents)
                     - min(a["x"] for a in agents)},
        )
        result = sim.run(5, rng)
        spreads = result.metric_array("spread")
        # Agents contract toward the (invariant) mean: spread halves
        # every tick because perception is synchronous.
        assert spreads[1] == pytest.approx(spreads[0] / 2.0)
        assert spreads[-1] < spreads[0] * 0.1

    def test_mean_is_invariant(self, rng):
        sim = Simulation(
            PhasedModel(),
            metrics={"mean": lambda agents: sum(a["x"] for a in agents)
                     / len(agents)},
        )
        result = sim.run(4, rng)
        means = result.metric_array("mean")
        np.testing.assert_allclose(means, means[0])
