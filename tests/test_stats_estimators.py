"""Tests for repro.stats.estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stats import (
    RunningStatistics,
    batch_means,
    covariance,
    efficiency,
    mean_confidence_interval,
    quantile_confidence_interval,
    sample_mean,
    sample_quantile,
    sample_variance,
)


class TestPointEstimators:
    def test_sample_mean(self):
        assert sample_mean([1.0, 2.0, 3.0]) == 2.0

    def test_sample_mean_empty_raises(self):
        with pytest.raises(SimulationError):
            sample_mean([])

    def test_sample_variance_unbiased(self):
        assert sample_variance([1.0, 3.0]) == pytest.approx(2.0)

    def test_sample_variance_needs_two(self):
        with pytest.raises(SimulationError):
            sample_variance([1.0])

    def test_sample_quantile_median(self):
        assert sample_quantile([1, 2, 3, 4, 5], 0.5) == 3.0

    def test_sample_quantile_rejects_bad_level(self):
        with pytest.raises(SimulationError):
            sample_quantile([1.0], 1.5)


class TestIntervals:
    def test_mean_ci_contains_truth_mostly(self, rng):
        hits = 0
        trials = 200
        for _ in range(trials):
            data = rng.normal(5.0, 2.0, size=50)
            if mean_confidence_interval(data, 0.95).contains(5.0):
                hits += 1
        assert hits / trials > 0.88

    def test_mean_ci_width_shrinks_with_n(self, rng):
        small = mean_confidence_interval(rng.normal(size=50))
        large = mean_confidence_interval(rng.normal(size=5000))
        assert large.half_width < small.half_width

    def test_quantile_ci_brackets_point(self, rng):
        data = rng.exponential(size=500)
        ci = quantile_confidence_interval(data, 0.9)
        assert ci.lower <= ci.estimate <= ci.upper

    def test_single_sample_degenerate_interval(self):
        ci = mean_confidence_interval([3.0])
        assert ci.lower == ci.upper == 3.0


class TestBatchMeans:
    def test_batch_means_unbiased_mean(self, rng):
        data = rng.normal(10.0, 1.0, size=1000)
        mean, se = batch_means(data, batches=10)
        assert mean == pytest.approx(data[:1000].mean(), abs=1e-9)
        assert se > 0

    def test_batch_means_validation(self):
        with pytest.raises(SimulationError):
            batch_means([1.0, 2.0], batches=1)
        with pytest.raises(SimulationError):
            batch_means([1.0, 2.0], batches=5)


class TestEfficiency:
    def test_product_form(self):
        assert efficiency(2.0, 0.5) == 1.0

    def test_zero_variance_is_infinitely_efficient(self):
        assert efficiency(1.0, 0.0) == math.inf

    def test_invalid_cost(self):
        with pytest.raises(SimulationError):
            efficiency(0.0, 1.0)


class TestRunningStatistics:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=100)
        stats = RunningStatistics()
        stats.update_many(data)
        assert stats.mean == pytest.approx(float(data.mean()))
        assert stats.variance == pytest.approx(float(data.var(ddof=1)))

    def test_merge_equals_combined(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(loc=2.0, size=40)
        sa, sb = RunningStatistics(), RunningStatistics()
        sa.update_many(a)
        sb.update_many(b)
        merged = sa.merge(sb)
        combined = np.concatenate([a, b])
        assert merged.count == 100
        assert merged.mean == pytest.approx(float(combined.mean()))
        assert merged.variance == pytest.approx(float(combined.var(ddof=1)))

    def test_merge_with_empty(self):
        stats = RunningStatistics()
        stats.update(1.0)
        merged = stats.merge(RunningStatistics())
        assert merged.count == 1
        assert merged.mean == 1.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_streaming_matches_batch(self, values):
        stats = RunningStatistics()
        stats.update_many(values)
        arr = np.asarray(values)
        assert stats.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(
            float(arr.var(ddof=1)), rel=1e-6, abs=1e-4
        )


class TestCovariance:
    def test_positive_for_identical(self, rng):
        x = rng.normal(size=100)
        assert covariance(x, x) == pytest.approx(float(x.var(ddof=1)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            covariance([1.0], [1.0])
        with pytest.raises(SimulationError):
            covariance([1.0, 2.0], [1.0])
