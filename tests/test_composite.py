"""Tests for composite models and result caching (Section 2.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composite import (
    ArrivalProcessModel,
    CallableModel,
    CompositePipeline,
    CompositeStatistics,
    MetadataRegistry,
    ModelMetadata,
    QueueModel,
    budget_constrained_run,
    estimate_statistics,
    g_approx,
    g_exact,
    optimal_alpha,
    replication_counts,
    run_with_caching,
)
from repro.errors import SimulationError
from repro.stats import make_rng


@pytest.fixture
def demand_queue():
    return ArrivalProcessModel(cost=5.0), QueueModel(cost=0.5)


class TestModels:
    def test_arrival_process_monotone(self, rng):
        arrivals = ArrivalProcessModel(num_customers=50).run(None, rng)
        assert arrivals.shape == (50,)
        assert np.all(np.diff(arrivals) > 0)

    def test_queue_nonnegative_wait(self, rng):
        m1 = ArrivalProcessModel()
        m2 = QueueModel()
        wait = m2.run(m1.run(None, rng), rng)
        assert wait >= 0.0

    def test_deterministic_queue_reproducible(self, rng):
        m2 = QueueModel(service_noise=False)
        arrivals = np.arange(1.0, 11.0)
        assert m2.run(arrivals, rng) == m2.run(arrivals, rng)
        assert m2.deterministic

    def test_run_count_tracked(self, rng):
        m1 = ArrivalProcessModel()
        m1.run(None, rng)
        m1.run(None, rng)
        assert m1.run_count == 2

    def test_callable_model(self, rng):
        m = CallableModel("c", lambda x, r: (x or 0) + 1, cost=2.0)
        assert m.run(4, rng) == 5
        assert m.cost == 2.0

    def test_cost_validation(self):
        with pytest.raises(SimulationError):
            CallableModel("c", lambda x, r: x, cost=0.0)


class TestPipeline:
    def test_series_execution(self, rng):
        pipeline = CompositePipeline(
            [
                CallableModel("a", lambda x, r: 3.0),
                CallableModel("b", lambda x, r: x * 2.0),
            ]
        )
        assert pipeline.run_once(rng) == 6.0
        assert pipeline.total_cost == 2.0

    def test_transform_between_stages(self, rng):
        pipeline = CompositePipeline(
            [
                CallableModel("a", lambda x, r: 3.0),
                CallableModel("b", lambda x, r: x + 1.0),
            ],
            transforms=[lambda y: y * 10.0],
        )
        assert pipeline.run_once(rng) == 31.0

    def test_trace_records(self, rng):
        pipeline = CompositePipeline(
            [CallableModel("a", lambda x, r: 1.0, cost=7.0)]
        )
        records = pipeline.run_once(rng, trace=True)
        assert records[0].model_name == "a"
        assert records[0].cost == 7.0

    def test_monte_carlo_reproducible(self):
        pipeline = CompositePipeline(
            [CallableModel("a", lambda x, r: float(r.normal()))]
        )
        a = pipeline.monte_carlo(10, seed=3)
        b = pipeline.monte_carlo(10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CompositePipeline([])
        m = CallableModel("a", lambda x, r: x)
        with pytest.raises(SimulationError):
            CompositePipeline([m, m])


class TestAnalyticFormulas:
    def _stats(self):
        return CompositeStatistics(c1=5.0, c2=0.5, v1=8.0, v2=5.0)

    def test_replication_counts(self):
        assert replication_counts(100, 0.1) == 10
        assert replication_counts(100, 1.0) == 100
        assert replication_counts(3, 0.01) == 1
        with pytest.raises(SimulationError):
            replication_counts(10, 0.0)

    def test_g_exact_alpha_one(self):
        # alpha = 1: r = 1, bracket = 2 - 2 = 0 -> g = (c1 + c2) V1.
        stats = self._stats()
        assert g_exact(1.0, stats) == pytest.approx(
            (stats.c1 + stats.c2) * stats.v1
        )

    def test_g_approx_matches_exact_at_inverse_integers(self):
        # When 1/alpha is an integer, r_alpha = 1/alpha exactly.
        stats = self._stats()
        for alpha in (1.0, 0.5, 0.25, 0.2):
            assert g_approx(alpha, stats) == pytest.approx(
                g_exact(alpha, stats)
            )

    def test_optimal_alpha_formula(self):
        stats = self._stats()
        expected = math.sqrt((0.5 / 5.0) / (8.0 / 5.0 - 1.0))
        assert optimal_alpha(stats) == pytest.approx(expected)

    def test_optimal_alpha_degenerate_cases(self):
        # V2 = 0: M1 effectively deterministic downstream -> run it once.
        no_cov = CompositeStatistics(5.0, 0.5, 4.0, 0.0)
        assert optimal_alpha(no_cov, n=100) == pytest.approx(0.01)
        # V1 = V2: M2 is a transformer -> fresh M1 every time.
        transformer = CompositeStatistics(5.0, 0.5, 4.0, 4.0)
        assert optimal_alpha(transformer) == 1.0

    def test_optimal_alpha_minimizes_g_approx(self):
        stats = self._stats()
        astar = optimal_alpha(stats)
        grid = np.linspace(0.01, 1.0, 200)
        values = [g_approx(a, stats) for a in grid]
        assert g_approx(astar, stats) <= min(values) + 1e-9

    def test_statistics_validation(self):
        with pytest.raises(SimulationError):
            CompositeStatistics(c1=0.0, c2=1.0, v1=1.0, v2=0.5)
        with pytest.raises(SimulationError):
            CompositeStatistics(c1=1.0, c2=1.0, v1=1.0, v2=2.0)

    @given(
        c1=st.floats(0.5, 50.0),
        c2=st.floats(0.1, 10.0),
        v1=st.floats(1.0, 20.0),
        ratio=st.floats(0.05, 0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_gexact_positive_and_alpha_feasible(self, c1, c2, v1, ratio):
        stats = CompositeStatistics(c1=c1, c2=c2, v1=v1, v2=v1 * ratio)
        astar = optimal_alpha(stats)
        assert 0.0 < astar <= 1.0
        assert g_exact(astar, stats) > 0.0


class TestCachingExecution:
    def test_estimator_unbiased(self, demand_queue):
        m1, m2 = demand_queue
        rng = make_rng(0)
        full = run_with_caching(m1, m2, n=400, alpha=1.0, rng=rng)
        cached = run_with_caching(m1, m2, n=400, alpha=0.2, rng=make_rng(1))
        # Both estimate the same theta; they should agree loosely.
        assert cached.estimate == pytest.approx(full.estimate, rel=0.4)

    def test_m1_run_savings(self, demand_queue):
        m1, m2 = demand_queue
        result = run_with_caching(m1, m2, n=100, alpha=0.1, rng=make_rng(2))
        assert result.m1_runs == 10
        assert result.m2_runs == 100
        assert result.total_cost == pytest.approx(10 * 5.0 + 100 * 0.5)

    def test_budget_constrained_n(self, demand_queue):
        m1, m2 = demand_queue
        result = budget_constrained_run(
            m1, m2, budget=100.0, alpha=1.0, rng=make_rng(3)
        )
        # With alpha=1 each output costs 5.5 -> N(100) = 18.
        assert result.m2_runs == 18

    def test_budget_too_small(self, demand_queue):
        m1, m2 = demand_queue
        with pytest.raises(SimulationError):
            budget_constrained_run(m1, m2, budget=1.0, alpha=1.0, rng=make_rng(4))

    def test_estimate_statistics_sane(self, demand_queue):
        m1, m2 = demand_queue
        stats = estimate_statistics(
            m1, m2, make_rng(5), pilot_m1_runs=60, m2_runs_per_m1=4
        )
        assert stats.c1 == 5.0
        assert stats.v1 > 0
        assert 0 <= stats.v2 <= stats.v1

    def test_optimal_alpha_beats_extremes(self, demand_queue):
        """The headline result: alpha* yields lower g than alpha=1."""
        from repro.composite import measure_estimator_variance

        m1, m2 = demand_queue
        stats = estimate_statistics(
            m1, m2, make_rng(6), pilot_m1_runs=100, m2_runs_per_m1=5
        )
        astar = optimal_alpha(stats)
        assert 0.0 < astar < 1.0
        _, g_star = measure_estimator_variance(
            m1, m2, budget=600.0, alpha=astar, replications=60, seed=7
        )
        _, g_tiny = measure_estimator_variance(
            m1, m2, budget=600.0, alpha=0.02, replications=60, seed=8
        )
        assert g_star < g_tiny


class TestMetadata:
    def test_register_and_refine(self):
        registry = MetadataRegistry()
        registry.register(ModelMetadata("demand", declared_cost=5.0))
        registry.register(ModelMetadata("queue", declared_cost=0.5))
        meta = registry.get("demand")
        assert meta.best_cost_estimate == 5.0
        meta.record_run(6.0)
        meta.record_run(8.0)
        assert meta.best_cost_estimate == 7.0

    def test_pair_statistics_cache_and_refresh(self):
        registry = MetadataRegistry()
        registry.register(ModelMetadata("demand", declared_cost=5.0))
        registry.register(ModelMetadata("queue", declared_cost=0.5))
        stats = CompositeStatistics(5.0, 0.5, 8.0, 5.0)
        registry.store_pair_statistics("demand", "queue", stats)
        registry.get("demand").record_run(10.0)
        refreshed = registry.refresh_pair_costs("demand", "queue")
        assert refreshed.c1 == 10.0
        assert refreshed.v1 == 8.0

    def test_duplicate_and_missing(self):
        registry = MetadataRegistry()
        registry.register(ModelMetadata("a"))
        with pytest.raises(SimulationError):
            registry.register(ModelMetadata("a"))
        with pytest.raises(SimulationError):
            registry.get("zz")
        with pytest.raises(SimulationError):
            ModelMetadata("x").best_cost_estimate
