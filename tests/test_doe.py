"""Tests for experimental designs (Figures 3 and 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    centered_levels,
    confounded_pairs,
    figure5_design,
    fold_over,
    fractional_factorial,
    full_factorial,
    is_latin,
    is_orthogonal,
    max_abs_correlation,
    maximin_distance,
    nearly_orthogonal_lh,
    randomized_lh,
    resolution_iii,
    resolution_iv,
    resolution_v,
    scale_design,
)
from repro.errors import DesignError
from repro.stats import make_rng

PAPER_FIGURE3 = np.array(
    [
        [-1, -1, -1, 1, 1, 1, -1],
        [1, -1, -1, -1, -1, 1, 1],
        [-1, 1, -1, -1, 1, -1, 1],
        [1, 1, -1, 1, -1, -1, -1],
        [-1, -1, 1, 1, -1, -1, 1],
        [1, -1, 1, -1, 1, -1, -1],
        [-1, 1, 1, -1, -1, 1, -1],
        [1, 1, 1, 1, 1, 1, 1],
    ],
    dtype=float,
)


class TestFactorial:
    def test_full_factorial_shape_and_levels(self):
        design = full_factorial(4)
        assert design.shape == (16, 4)
        assert set(np.unique(design)) == {-1.0, 1.0}
        # All rows distinct.
        assert len({tuple(r) for r in design}) == 16

    def test_resolution_iii_reproduces_figure3(self):
        """The headline FIG3 check: exact match with the paper's table."""
        np.testing.assert_array_equal(resolution_iii(7), PAPER_FIGURE3)

    def test_resolution_iii_orthogonal(self):
        for k in (3, 5, 7, 12, 15):
            assert is_orthogonal(resolution_iii(k))

    def test_run_counts_match_paper(self):
        assert resolution_iii(7).shape[0] == 8
        assert resolution_iv(7).shape[0] == 16
        assert resolution_v(7).shape[0] == 32

    def test_resolution_iii_has_aliasing(self):
        assert len(confounded_pairs(resolution_iii(7))) > 0

    def test_resolution_iv_clears_two_factor_aliasing(self):
        assert confounded_pairs(resolution_iv(7)) == []

    def test_resolution_v_clears_two_factor_aliasing(self):
        assert confounded_pairs(resolution_v(7)) == []

    def test_fold_over_doubles_runs(self):
        base = resolution_iii(5)
        folded = fold_over(base)
        assert folded.shape[0] == 2 * base.shape[0]
        np.testing.assert_array_equal(folded[: base.shape[0]], base)
        np.testing.assert_array_equal(folded[base.shape[0]:], -base)

    def test_fractional_factorial_generator_validation(self):
        with pytest.raises(DesignError):
            fractional_factorial(3, [(5,)])
        with pytest.raises(DesignError):
            fractional_factorial(3, [()])

    def test_resolution_v_small_is_full(self):
        assert resolution_v(3).shape == (8, 3)

    def test_resolution_v_unsupported(self):
        with pytest.raises(DesignError):
            resolution_v(20)


class TestLatinHypercube:
    def test_centered_levels(self):
        np.testing.assert_array_equal(
            centered_levels(9), np.arange(-4.0, 5.0)
        )

    def test_randomized_lh_is_latin(self):
        design = randomized_lh(3, 17, make_rng(0))
        assert design.shape == (17, 3)
        assert is_latin(design)

    def test_figure5_design_properties(self):
        """FIG5: 2 factors, 9 runs, levels -4..4, orthogonal columns."""
        design = figure5_design()
        assert design.shape == (9, 2)
        assert is_latin(design)
        assert max_abs_correlation(design) == 0.0
        np.testing.assert_array_equal(
            np.sort(design[:, 0]), np.arange(-4.0, 5.0)
        )

    def test_nolh_improves_orthogonality(self):
        rng = make_rng(1)
        random_design = randomized_lh(6, 17, make_rng(2))
        nolh = nearly_orthogonal_lh(6, 17, rng, iterations=1200)
        assert is_latin(nolh)
        assert max_abs_correlation(nolh) < 0.1
        assert max_abs_correlation(nolh) <= max_abs_correlation(random_design)

    def test_scale_design(self):
        design = figure5_design()
        scaled = scale_design(
            design, lows=np.array([0.0, 10.0]), highs=np.array([1.0, 20.0])
        )
        assert scaled[:, 0].min() == pytest.approx(0.0)
        assert scaled[:, 0].max() == pytest.approx(1.0)
        assert scaled[:, 1].min() == pytest.approx(10.0)
        assert scaled[:, 1].max() == pytest.approx(20.0)

    def test_scale_design_validation(self):
        design = figure5_design()
        with pytest.raises(DesignError):
            scale_design(design, np.array([0.0]), np.array([1.0]))
        with pytest.raises(DesignError):
            scale_design(
                design, np.array([1.0, 0.0]), np.array([0.0, 1.0])
            )

    def test_maximin_distance_positive(self):
        assert maximin_distance(figure5_design()) > 0

    @given(
        factors=st.integers(2, 5),
        runs=st.integers(5, 21),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_lh_always_latin(self, factors, runs, seed):
        design = randomized_lh(factors, runs, make_rng(seed))
        assert is_latin(design)
