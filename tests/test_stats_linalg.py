"""Tests for repro.stats.linalg (Thomas solver, spline systems)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stats import (
    TridiagonalSystem,
    least_squares_loss,
    make_rng,
    random_diagonally_dominant_system,
    spline_system,
    thomas_solve,
)


class TestTridiagonalSystem:
    def test_dense_matches_bands(self):
        system = TridiagonalSystem(
            lower=np.array([0.0, 1.0, 2.0]),
            diag=np.array([4.0, 5.0, 6.0]),
            upper=np.array([7.0, 8.0, 0.0]),
            rhs=np.array([1.0, 1.0, 1.0]),
        )
        expected = np.array(
            [[4.0, 7.0, 0.0], [1.0, 5.0, 8.0], [2.0, 6.0, 0.0]]
        )
        # note dense places lower[i] at (i, i-1) and upper[i] at (i, i+1)
        dense = system.dense()
        assert dense[0, 0] == 4.0 and dense[0, 1] == 7.0
        assert dense[1, 0] == 1.0 and dense[1, 1] == 5.0 and dense[1, 2] == 8.0
        assert dense[2, 1] == 2.0 and dense[2, 2] == 6.0

    def test_matvec_matches_dense(self):
        system = random_diagonally_dominant_system(10, make_rng(0))
        x = make_rng(1).normal(size=10)
        np.testing.assert_allclose(
            system.matvec(x), system.dense() @ x, rtol=1e-12
        )

    def test_row_matches_dense(self):
        system = random_diagonally_dominant_system(6, make_rng(2))
        dense = system.dense()
        for i in range(6):
            np.testing.assert_allclose(system.row(i), dense[i])

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            TridiagonalSystem(
                lower=np.zeros(2),
                diag=np.ones(3),
                upper=np.zeros(3),
                rhs=np.zeros(3),
            )


class TestThomasSolver:
    @pytest.mark.parametrize("size", [1, 2, 3, 10, 200])
    def test_solves_random_system(self, size):
        system = random_diagonally_dominant_system(size, make_rng(size))
        x = thomas_solve(system)
        assert system.residual_norm(x) < 1e-9

    def test_matches_numpy_solve(self):
        system = random_diagonally_dominant_system(25, make_rng(7))
        x = thomas_solve(system)
        expected = np.linalg.solve(system.dense(), system.rhs)
        np.testing.assert_allclose(x, expected, rtol=1e-9)

    def test_zero_pivot_raises(self):
        system = TridiagonalSystem(
            lower=np.zeros(2),
            diag=np.array([0.0, 1.0]),
            upper=np.zeros(2),
            rhs=np.ones(2),
        )
        with pytest.raises(SimulationError):
            thomas_solve(system)

    def test_empty_system(self):
        system = TridiagonalSystem(
            lower=np.zeros(0), diag=np.zeros(0),
            upper=np.zeros(0), rhs=np.zeros(0),
        )
        assert thomas_solve(system).size == 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_residual_small(self, seed):
        system = random_diagonally_dominant_system(30, make_rng(seed))
        x = thomas_solve(system)
        assert system.residual_norm(x) < 1e-8


class TestSplineSystem:
    def test_known_parabola_constants(self):
        # For data on a parabola y = t^2 with equal spacing h=1, the second
        # derivative is 2 everywhere; interior sigma approach 2 away from
        # the natural boundary.
        t = np.arange(11.0)
        y = t**2
        system = spline_system(t, y)
        sigma = thomas_solve(system)
        assert sigma[len(sigma) // 2] == pytest.approx(2.0, abs=0.1)

    def test_linear_data_zero_constants(self):
        t = np.linspace(0, 5, 8)
        y = 3.0 * t + 1.0
        sigma = thomas_solve(spline_system(t, y))
        np.testing.assert_allclose(sigma, np.zeros_like(sigma), atol=1e-12)

    def test_system_size(self):
        t = np.linspace(0, 1, 12)
        system = spline_system(t, np.sin(t))
        assert system.size == 10  # m - 1 with m = 11

    def test_validation(self):
        with pytest.raises(SimulationError):
            spline_system(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(SimulationError):
            spline_system(np.array([0.0, 0.0, 1.0]), np.zeros(3))


class TestLeastSquaresLoss:
    def test_zero_at_solution(self):
        system = random_diagonally_dominant_system(15, make_rng(3))
        x = thomas_solve(system)
        assert least_squares_loss(system, x) < 1e-18

    def test_positive_away_from_solution(self):
        system = random_diagonally_dominant_system(15, make_rng(4))
        assert least_squares_loss(system, np.zeros(15)) > 0
