"""Tests for the k-stage result-caching extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.composite import (
    CallableModel,
    ChainStatistics,
    CompositeStatistics,
    estimate_chain_statistics,
    g_approx,
    g_chain_approx,
    optimize_chain_alphas,
    run_chain_with_caching,
)
from repro.errors import SimulationError
from repro.stats import make_rng


def noisy_stage(name, cost, carry=1.0, noise=1.0):
    """A stage adding Gaussian noise to its (scaled) input."""
    return CallableModel(
        name,
        lambda x, rng: carry * (x or 0.0) + noise * float(rng.normal()),
        cost=cost,
    )


class TestChainStatistics:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ChainStatistics(costs=(1.0,), variance_ladder=(1.0,))
        with pytest.raises(SimulationError):
            ChainStatistics(costs=(1.0, -1.0), variance_ladder=(0.5, 1.0))
        with pytest.raises(SimulationError):
            # Decreasing ladder violates the law of total variance.
            ChainStatistics(costs=(1.0, 1.0), variance_ladder=(2.0, 1.0))

    def test_two_stage_reduces_to_paper_formula(self):
        """g_chain_approx on k=2 must equal the paper's g~(alpha)."""
        chain = ChainStatistics(
            costs=(5.0, 0.5), variance_ladder=(5.0, 8.0)
        )
        pair = CompositeStatistics(c1=5.0, c2=0.5, v1=8.0, v2=5.0)
        for alpha in (0.05, 0.2, 0.5, 1.0):
            assert g_chain_approx([alpha], chain) == pytest.approx(
                g_approx(alpha, pair)
            )

    def test_alpha_arity(self):
        chain = ChainStatistics(
            costs=(1.0, 1.0, 1.0), variance_ladder=(1.0, 2.0, 3.0)
        )
        with pytest.raises(SimulationError):
            g_chain_approx([0.5], chain)
        with pytest.raises(SimulationError):
            g_chain_approx([0.5, 0.0], chain)


class TestOptimization:
    def test_two_stage_matches_closed_form(self):
        from repro.composite import optimal_alpha

        chain = ChainStatistics(
            costs=(5.0, 0.5), variance_ladder=(5.0, 8.0)
        )
        pair = CompositeStatistics(c1=5.0, c2=0.5, v1=8.0, v2=5.0)
        alphas, value = optimize_chain_alphas(chain, grid_points=200)
        assert alphas[0] == pytest.approx(optimal_alpha(pair), abs=0.02)

    def test_expensive_upstream_gets_small_alpha(self):
        chain = ChainStatistics(
            costs=(50.0, 1.0, 0.5),
            variance_ladder=(0.5, 2.0, 8.0),
        )
        alphas, _ = optimize_chain_alphas(chain)
        # The very expensive, low-variance-share first stage should be
        # rerun rarely; the cheaper middle stage more often.
        assert alphas[0] < alphas[1]

    def test_transformer_stage_alpha_one(self):
        # Final stage deterministic given input: ladder flat at the top.
        chain = ChainStatistics(
            costs=(1.0, 1.0), variance_ladder=(4.0, 4.0)
        )
        alphas, _ = optimize_chain_alphas(chain, grid_points=100)
        assert alphas[0] == pytest.approx(1.0, abs=0.02)

    def test_optimum_beats_extremes(self):
        chain = ChainStatistics(
            costs=(10.0, 2.0, 0.2),
            variance_ladder=(2.0, 5.0, 9.0),
        )
        alphas, best = optimize_chain_alphas(chain)
        assert best <= g_chain_approx([1.0, 1.0], chain) + 1e-12
        assert best <= g_chain_approx([0.01, 0.01], chain) + 1e-12


class TestExecution:
    def _chain(self):
        return [
            noisy_stage("a", cost=5.0, noise=2.0),
            noisy_stage("b", cost=1.0, carry=1.0, noise=1.0),
            noisy_stage("c", cost=0.2, carry=1.0, noise=0.5),
        ]

    def test_run_counts(self):
        models = self._chain()
        result = run_chain_with_caching(
            models, n=100, alphas=[0.1, 0.5], rng=make_rng(0)
        )
        assert result.runs_per_stage == (5, 50, 100)
        assert result.total_cost == pytest.approx(
            5 * 5.0 + 50 * 1.0 + 100 * 0.2
        )

    def test_estimator_roughly_unbiased(self):
        models = self._chain()
        estimates = [
            run_chain_with_caching(
                models, n=200, alphas=[0.2, 0.5], rng=make_rng(seed)
            ).estimate
            for seed in range(30)
        ]
        # Sum of zero-mean noises -> theta = 0.
        assert abs(np.mean(estimates)) < 0.3

    def test_alpha_one_means_no_caching(self):
        models = self._chain()
        result = run_chain_with_caching(
            models, n=50, alphas=[1.0, 1.0], rng=make_rng(1)
        )
        assert result.runs_per_stage == (50, 50, 50)

    def test_validation(self):
        models = self._chain()
        with pytest.raises(SimulationError):
            run_chain_with_caching(models[:1], 10, [], make_rng(0))
        with pytest.raises(SimulationError):
            run_chain_with_caching(models, 10, [0.5], make_rng(0))
        with pytest.raises(SimulationError):
            run_chain_with_caching(models, 10, [0.0, 0.5], make_rng(0))


class TestStatisticsEstimation:
    def test_ladder_monotone_and_total_matches(self):
        models = [
            noisy_stage("a", cost=2.0, noise=2.0),
            noisy_stage("b", cost=1.0, noise=1.0),
            noisy_stage("c", cost=0.5, noise=0.5),
        ]
        stats = estimate_chain_statistics(
            models, make_rng(2), branching=4, roots=60
        )
        ladder = stats.variance_ladder
        assert ladder[0] <= ladder[1] <= ladder[2]
        # Total variance = 4 + 1 + 0.25 = 5.25.
        assert ladder[2] == pytest.approx(5.25, rel=0.5)
        # First layer = 4.
        assert ladder[0] == pytest.approx(4.0, rel=0.5)

    def test_costs_copied_from_models(self):
        models = [
            noisy_stage("a", cost=3.0),
            noisy_stage("b", cost=0.7),
        ]
        stats = estimate_chain_statistics(
            models, make_rng(3), branching=3, roots=20
        )
        assert stats.costs == (3.0, 0.7)

    def test_validation(self):
        with pytest.raises(SimulationError):
            estimate_chain_statistics(
                [noisy_stage("a", 1.0)], make_rng(0)
            )

    def test_empirical_variance_reduction_at_optimum(self):
        """End-to-end: optimized alphas beat no caching per unit cost."""
        models = [
            noisy_stage("a", cost=20.0, noise=1.0),
            noisy_stage("b", cost=0.5, noise=2.0),
        ]
        stats = estimate_chain_statistics(
            models, make_rng(4), branching=4, roots=60
        )
        alphas, _ = optimize_chain_alphas(stats)

        def efficiency(alpha_vec, replications=60):
            estimates = []
            cost = None
            for seed in range(replications):
                result = run_chain_with_caching(
                    models, n=80, alphas=alpha_vec, rng=make_rng(100 + seed)
                )
                estimates.append(result.estimate)
                cost = result.total_cost
            return float(np.var(estimates, ddof=1)) * cost

        assert efficiency(alphas) < efficiency([1.0])
