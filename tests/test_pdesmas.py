"""Tests for PDES-MAS range queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.pdesmas import (
    CLPTree,
    PdesMasScenario,
    RangeQuery,
    SSV,
    make_alps,
    range_query_latest,
    range_query_timestamped,
    result_discrepancy,
)
from repro.stats import make_rng


class TestSSV:
    def test_read_returns_latest_at_or_before(self):
        ssv = SSV("x", 0)
        ssv.write(1.0, 10)
        ssv.write(3.0, 30)
        assert ssv.read(0.5) == 0
        assert ssv.read(1.0) == 10
        assert ssv.read(2.9) == 10
        assert ssv.read(5.0) == 30

    def test_write_must_be_monotone(self):
        ssv = SSV("x")
        ssv.write(2.0, 1)
        with pytest.raises(SimulationError):
            ssv.write(1.0, 2)

    def test_same_time_write_overwrites(self):
        ssv = SSV("x")
        ssv.write(1.0, 1)
        ssv.write(1.0, 2)
        assert ssv.read(1.0) == 2
        assert ssv.history_length == 2  # initial + one at t=1

    def test_read_latest(self):
        ssv = SSV("x", 5)
        ts, value = ssv.read_latest()
        assert (ts, value) == (0.0, 5)

    def test_prune(self):
        ssv = SSV("x", 0)
        for t in range(1, 6):
            ssv.write(float(t), t)
        dropped = ssv.prune_before(3.0)
        assert dropped == 3
        assert ssv.read(3.0) == 3
        assert ssv.read(5.0) == 5

    def test_counters(self):
        ssv = SSV("x", 0)
        ssv.write(1.0, 1)
        ssv.read(1.0)
        assert ssv.write_count == 1
        assert ssv.read_count == 1


class TestCLPTree:
    def test_leaf_count(self):
        tree = CLPTree(num_leaves=5)
        assert len(tree.leaves) == 5

    def test_register_and_access(self):
        tree = CLPTree(num_leaves=4)
        ssv = SSV("a", 1)
        tree.register_ssv(ssv, leaf_index=0)
        found, hops = tree.access("a", 0)
        assert found is ssv
        assert hops == 0
        _, hops_far = tree.access("a", 3)
        assert hops_far > 0

    def test_duplicate_registration(self):
        tree = CLPTree(num_leaves=2)
        tree.register_ssv(SSV("a"), 0)
        with pytest.raises(SimulationError):
            tree.register_ssv(SSV("a"), 1)

    def test_unknown_ssv(self):
        tree = CLPTree(num_leaves=2)
        with pytest.raises(SimulationError):
            tree.owner_of("nope")

    def test_migration_moves_toward_accessor(self):
        tree = CLPTree(num_leaves=4)
        tree.register_ssv(SSV("a", 1), leaf_index=0)
        for _ in range(10):
            tree.access("a", 3)
        moved = tree.migrate()
        assert moved == 1
        assert tree.owner_of("a") is tree.leaves[3]
        _, hops = tree.access("a", 3)
        assert hops == 0

    def test_migration_reduces_total_hops(self):
        def workload(migrate: bool) -> int:
            tree = CLPTree(num_leaves=8)
            for i in range(8):
                tree.register_ssv(SSV(("agent", i)), leaf_index=i)
            for round_ in range(5):
                for i in range(8):
                    tree.access(("agent", i), 0)
                if migrate and round_ == 0:
                    tree.migrate()
            return tree.hops

        assert workload(True) < workload(False)


class TestRangeQueries:
    def _tree_with_agents(self):
        tree = CLPTree(num_leaves=2)
        data = [
            (0, 10.0, 10.0, 30),
            (1, 12.0, 10.0, 20),
            (2, 50.0, 50.0, 40),
        ]
        for agent_id, x, y, age in data:
            ssv = SSV(("agent", agent_id), {"x": x, "y": y, "age": age})
            tree.register_ssv(ssv, leaf_index=agent_id % 2)
        return tree

    def test_spatial_and_attribute_predicate(self):
        tree = self._tree_with_agents()
        query = RangeQuery(10.0, 10.0, radius=5.0, min_age=25, time=0.0)
        result = range_query_timestamped(tree, query)
        assert result.matching_agents == {0}  # agent 1 too young, 2 too far

    def test_latest_vs_timestamped_divergence(self):
        tree = self._tree_with_agents()
        # Agent 0 moves far away at a *future* logical time.
        ssv = tree.owner_of(("agent", 0)).ssvs[("agent", 0)]
        ssv.write(10.0, {"x": 90.0, "y": 90.0, "age": 30})
        query = RangeQuery(10.0, 10.0, radius=5.0, min_age=25, time=0.0)
        exact = range_query_timestamped(tree, query)
        latest = range_query_latest(tree, query)
        assert exact.matching_agents == {0}
        assert latest.matching_agents == set()
        assert result_discrepancy(exact, latest) == 1.0

    def test_stale_read_reported(self):
        tree = self._tree_with_agents()
        query = RangeQuery(10.0, 10.0, radius=5.0, time=7.0)
        result = range_query_timestamped(tree, query)
        assert result.stale_reads == 3  # nobody has written past t=0
        assert result.max_staleness == 7.0

    def test_discrepancy_empty_sets(self):
        tree = self._tree_with_agents()
        query = RangeQuery(-50.0, -50.0, radius=1.0, time=0.0)
        a = range_query_timestamped(tree, query)
        b = range_query_latest(tree, query)
        assert result_discrepancy(a, b) == 0.0


class TestScenario:
    def test_runs_and_reports(self):
        scenario = PdesMasScenario(num_alps=4, agents_per_alp=5, seed=0)
        report = scenario.run(cycles=10)
        assert report.queries_issued == 20
        assert 0.0 <= report.mean_discrepancy <= 1.0
        assert report.mean_lvt_spread > 0.0

    def test_skew_increases_discrepancy(self):
        low_skew = PdesMasScenario(
            num_alps=6, agents_per_alp=5, rate_skew=1.0, seed=1
        ).run(cycles=15)
        high_skew = PdesMasScenario(
            num_alps=6, agents_per_alp=5, rate_skew=16.0, seed=1
        ).run(cycles=15)
        assert high_skew.mean_lvt_spread > low_skew.mean_lvt_spread

    def test_migration_cuts_query_hops_with_pinned_leaf(self):
        base = PdesMasScenario(num_alps=8, agents_per_alp=4, seed=2).run(
            cycles=12, query_from_leaf=0
        )
        migrated = PdesMasScenario(num_alps=8, agents_per_alp=4, seed=2).run(
            cycles=12, query_from_leaf=0, migrate_every=4
        )
        assert (
            migrated.timestamped_hops + migrated.latest_hops
            < base.timestamped_hops + base.latest_hops
        )
        assert migrated.migrations > 0

    def test_gvt_is_minimum(self):
        scenario = PdesMasScenario(num_alps=3, agents_per_alp=2, seed=3)
        scenario.run(cycles=3)
        times = [alp.lvt for alp in scenario.alps]
        assert scenario.global_virtual_time() == min(times)

    def test_seed_stream_golden_values(self):
        # Pins the repo-wide seeding convention (SeedSequence keyed by
        # the crc32 of "pdesmas.scenario"): these values must only
        # change if the seeding scheme changes deliberately.
        report = PdesMasScenario(
            num_alps=4, agents_per_alp=5, seed=123
        ).run(cycles=6, queries_per_cycle=2)
        assert report.queries_issued == 12
        assert report.mean_discrepancy == pytest.approx(
            0.23611111111111113, rel=1e-12
        )
        assert report.mean_lvt_spread == pytest.approx(
            6.849381948812861, rel=1e-12
        )

    def test_same_seed_reproduces_exactly(self):
        runs = [
            PdesMasScenario(num_alps=4, agents_per_alp=5, seed=123).run(
                cycles=6, queries_per_cycle=2
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_validation(self):
        with pytest.raises(SimulationError):
            CLPTree(0)
        with pytest.raises(SimulationError):
            make_alps(0, 1, CLPTree(1), make_rng(0))
        scenario = PdesMasScenario(num_alps=2, agents_per_alp=2, seed=4)
        with pytest.raises(SimulationError):
            scenario.run(cycles=0)


class TestFossilCollection:
    def test_gvt_pruning_bounds_history(self):
        kept = {}
        for collect in (False, True):
            scenario = PdesMasScenario(
                num_alps=4, agents_per_alp=5, rate_skew=2.0, seed=5
            )
            scenario.run(cycles=25, fossil_collect=collect)
            kept[collect] = sum(
                ssv.history_length for ssv in scenario.tree.all_ssvs()
            )
        assert kept[True] < kept[False]

    def test_pruned_scenario_queries_still_answerable(self):
        scenario = PdesMasScenario(
            num_alps=4, agents_per_alp=5, rate_skew=4.0, seed=6
        )
        report = scenario.run(cycles=15, fossil_collect=True)
        # Queries at GVT remain answerable after pruning below GVT.
        assert 0.0 <= report.mean_discrepancy <= 1.0
