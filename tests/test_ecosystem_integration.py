"""The model-data ecosystem, end to end.

One test chain exercising the paper's whole vision: an epidemic
simulation's output time series is schema-mapped and time-aligned
(Splash, §2.2) into an economic model, the two are composed as a
pipeline with result caching (§2.3), the composite is swept over an
experimental design through the experiment manager (§4.2), a metamodel
is fit to the responses (§4.1), and a calibration loop recovers a known
parameter (§3.1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.composite import (
    CallableModel,
    ExperimentManager,
    ParameterBinding,
    estimate_statistics,
    optimal_alpha,
    run_with_caching,
)
from repro.doe import nearly_orthogonal_lh
from repro.epidemics import (
    DiseaseParameters,
    IndemicsEngine,
    generate_population,
)
from repro.harmonize import (
    FieldMapping,
    SchemaMapping,
    TimeAligner,
    TimeSeries,
)
from repro.metamodel import GaussianProcessMetamodel
from repro.stats import make_rng


@pytest.fixture(scope="module")
def population():
    return generate_population(150, make_rng(0))


def epidemic_series(population, transmission_rate, seed) -> TimeSeries:
    """Run the epidemic and emit its daily infection time series."""
    engine = IndemicsEngine(
        population,
        DiseaseParameters(transmission_rate=transmission_rate),
        seed=seed,
    )
    engine.seed_infections(5)
    engine.advance(42)
    infectious = engine.epidemic_curve()
    days = np.arange(1.0, infectious.size + 1)
    return TimeSeries(
        times=days,
        channels={"infectious": infectious},
        units={"infectious": "count"},
        time_unit="day",
    )


def economic_loss(weekly: TimeSeries) -> float:
    """A toy economic model: convex loss in weekly workforce absence."""
    absence = weekly.channel("workforce_absent")
    return float(np.sum(absence + 0.02 * absence**2))


class TestEcosystemChain:
    def test_epidemic_to_economy_through_harmonization(self, population):
        daily = epidemic_series(population, 0.02, seed=1)
        # Schema alignment: infections -> workforce absence (scaled).
        mapping = SchemaMapping(
            [
                FieldMapping(
                    "workforce_absent",
                    ("infectious",),
                    transform=lambda i: 0.6 * i,
                )
            ]
        )
        report = mapping.detect_mismatches(
            daily.channel_names, ["workforce_absent"]
        )
        assert report.ok
        mapped = mapping.apply(daily)
        # Time alignment: daily -> weekly aggregation.
        weekly = TimeAligner(aggregation_method="mean").align(
            mapped, np.arange(1.0, 43.0, 7.0)
        )
        assert len(weekly) == 6
        loss = economic_loss(weekly)
        assert loss > 0.0

    def test_composite_with_result_caching(self, population):
        """Epidemic (expensive) -> economy (cheap) with an optimized α."""

        def run_epidemic(_input, rng):
            seed = int(rng.integers(0, 2**31))
            return epidemic_series(population, 0.02, seed)

        def run_economy(daily, rng):
            mapped = SchemaMapping(
                [
                    FieldMapping(
                        "workforce_absent",
                        ("infectious",),
                        transform=lambda i: 0.6 * i,
                    )
                ]
            ).apply(daily)
            weekly = TimeAligner().align(
                mapped, np.arange(1.0, 43.0, 7.0)
            )
            # The economic model has its own stochasticity (demand).
            return economic_loss(weekly) * float(rng.lognormal(0.0, 0.1))

        m1 = CallableModel("epidemic", run_epidemic, cost=50.0)
        m2 = CallableModel("economy", run_economy, cost=1.0)
        stats = estimate_statistics(
            m1, m2, make_rng(2), pilot_m1_runs=8, m2_runs_per_m1=3
        )
        alpha = optimal_alpha(stats, n=40)
        assert 0.0 < alpha <= 1.0
        result = run_with_caching(m1, m2, n=24, alpha=alpha, rng=make_rng(3))
        assert result.m1_runs <= result.m2_runs
        assert result.estimate > 0.0

    def test_design_metamodel_calibration_loop(self, population):
        """Sweep transmission rate, fit a metamodel, invert it."""
        responses = []
        rates = np.linspace(0.008, 0.05, 9)
        for i, rate in enumerate(rates):
            engine = IndemicsEngine(
                population,
                DiseaseParameters(transmission_rate=float(rate)),
                seed=100,  # common random numbers across design points
            )
            engine.seed_infections(5)
            engine.advance(42)
            responses.append(engine.attack_rate())
        responses = np.asarray(responses)
        # Attack rate is (weakly) increasing in transmission rate.
        assert responses[-1] > responses[0]

        metamodel = GaussianProcessMetamodel().fit(
            rates[:, None], responses
        )
        # "Calibration": find the rate whose predicted attack rate
        # matches an observed 0.5 — inverting the metamodel on a grid.
        grid = np.linspace(rates[0], rates[-1], 200)[:, None]
        predicted = metamodel.predict(grid)
        target = 0.5
        recovered = float(grid[np.argmin(np.abs(predicted - target)), 0])
        # Re-simulate at the recovered rate: attack rate near target.
        engine = IndemicsEngine(
            population,
            DiseaseParameters(transmission_rate=recovered),
            seed=100,
        )
        engine.seed_infections(5)
        engine.advance(42)
        assert engine.attack_rate() == pytest.approx(target, abs=0.15)

    def test_experiment_manager_drives_epidemic(self, population):
        params = DiseaseParameters()

        def run_fn(rng):
            engine = IndemicsEngine(population, params, seed=7)
            engine.seed_infections(5)
            engine.advance(30)
            return engine.attack_rate()

        manager = ExperimentManager(run_fn, seed=8)
        manager.register_parameter(
            ParameterBinding(
                "transmission_rate",
                params,
                "transmission_rate",
                low=0.005,
                high=0.04,
            )
        )
        manager.register_parameter(
            ParameterBinding(
                "infectious_mean_days",
                params,
                "infectious_mean_days",
                low=2.0,
                high=6.0,
            )
        )
        design = nearly_orthogonal_lh(2, 9, make_rng(9), iterations=300)
        runs = manager.run_design(design / 4.0, coded=True)
        assert len(runs) == 9
        assert all(0.0 <= run.response <= 1.0 for run in runs)
        # Responses vary across the design (the factors matter).
        assert np.std([run.response for run in runs]) > 0.01
