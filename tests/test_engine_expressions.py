"""Tests for repro.engine.expressions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import col, lit
from repro.engine.expressions import (
    FunctionCall,
    InList,
    IsNull,
    combine_and,
    conjuncts,
    resolve_column,
)
from repro.errors import QueryError


class TestResolution:
    def test_exact_match(self):
        assert resolve_column({"a": 1}, "a") == 1

    def test_suffix_match(self):
        assert resolve_column({"t.a": 1, "t.b": 2}, "a") == 1

    def test_ambiguous(self):
        with pytest.raises(QueryError):
            resolve_column({"t.a": 1, "u.a": 2}, "a")

    def test_unknown(self):
        with pytest.raises(QueryError):
            resolve_column({"a": 1}, "zzz")


class TestArithmetic:
    def test_add_mul(self):
        expr = (col("x") + 2) * col("y")
        assert expr.evaluate({"x": 3, "y": 4}) == 20

    def test_reverse_operators(self):
        expr = 10 - col("x")
        assert expr.evaluate({"x": 3}) == 7
        expr = 2 / col("x")
        assert expr.evaluate({"x": 4}) == 0.5

    def test_null_propagation(self):
        assert (col("x") + 1).evaluate({"x": None}) is None

    def test_mod(self):
        assert (col("x") % 3).evaluate({"x": 7}) == 1

    def test_unary_negation(self):
        assert (-col("x")).evaluate({"x": 5}) == -5


class TestComparisonsAndBooleans:
    def test_comparisons(self):
        row = {"x": 5}
        assert (col("x") > 4).evaluate(row) is True
        assert (col("x") < 4).evaluate(row) is False
        assert (col("x") >= 5).evaluate(row) is True
        assert (col("x") != 5).evaluate(row) is False

    def test_three_valued_and(self):
        # False AND NULL = False; True AND NULL = NULL
        false_and_null = (col("a") == 1) & (col("b") == 1)
        assert false_and_null.evaluate({"a": 0, "b": None}) is False
        true_and_null = (col("a") == 0) & (col("b") == 1)
        assert true_and_null.evaluate({"a": 0, "b": None}) is None

    def test_three_valued_or(self):
        true_or_null = (col("a") == 0) | (col("b") == 1)
        assert true_or_null.evaluate({"a": 0, "b": None}) is True
        false_or_null = (col("a") == 1) | (col("b") == 1)
        assert false_or_null.evaluate({"a": 0, "b": None}) is None

    def test_not(self):
        assert (~(col("x") > 1)).evaluate({"x": 0}) is True

    def test_between(self):
        expr = col("age").between(0, 4)
        assert expr.evaluate({"age": 3}) is True
        assert expr.evaluate({"age": 5}) is False

    def test_in_list(self):
        expr = col("region").is_in(["east", "west"])
        assert expr.evaluate({"region": "east"}) is True
        assert expr.evaluate({"region": "north"}) is False
        assert expr.evaluate({"region": None}) is None

    def test_is_null(self):
        assert IsNull(col("x")).evaluate({"x": None}) is True
        assert IsNull(col("x"), negated=True).evaluate({"x": None}) is False


class TestFunctions:
    def test_abs_sqrt(self):
        assert FunctionCall("abs", [col("x")]).evaluate({"x": -3}) == 3
        assert FunctionCall("sqrt", [lit(9.0)]).evaluate({}) == 3.0

    def test_coalesce(self):
        expr = FunctionCall("coalesce", [col("a"), col("b"), lit(0)])
        assert expr.evaluate({"a": None, "b": 5}) == 5
        assert expr.evaluate({"a": None, "b": None}) == 0

    def test_string_functions(self):
        assert FunctionCall("upper", [lit("abc")]).evaluate({}) == "ABC"
        assert FunctionCall("length", [lit("abcd")]).evaluate({}) == 4

    def test_null_in_regular_function(self):
        assert FunctionCall("abs", [col("x")]).evaluate({"x": None}) is None

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            FunctionCall("frobnicate", [])


class TestConjuncts:
    def test_split_and_combine_roundtrip(self):
        pred = (col("a") > 1) & (col("b") < 2) & (col("c") == 3)
        parts = conjuncts(pred)
        assert len(parts) == 3
        rebuilt = combine_and(parts)
        row = {"a": 2, "b": 1, "c": 3}
        assert rebuilt.evaluate(row) is True

    def test_combine_empty_is_true(self):
        assert combine_and([]).evaluate({}) is True

    def test_columns_collection(self):
        pred = (col("a") + col("b")) > col("c")
        assert pred.columns() == frozenset({"a", "b", "c"})


@given(
    x=st.integers(-100, 100),
    y=st.integers(-100, 100),
)
@settings(max_examples=50, deadline=None)
def test_expression_arithmetic_matches_python(x, y):
    row = {"x": x, "y": y}
    assert (col("x") + col("y")).evaluate(row) == x + y
    assert (col("x") * col("y")).evaluate(row) == x * y
    assert (col("x") > col("y")).evaluate(row) == (x > y)
