"""Tests for SimSQL database-valued Markov chains."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database, Schema, Table
from repro.errors import SimulationError
from repro.mapreduce import Cluster
from repro.simsql import (
    DatabaseMarkovChain,
    TableTransition,
    VersionStore,
    row_wise_transition,
    run_grouped_interaction_on_cluster,
    run_transition_on_cluster,
)


def _price_chain(base=None, retain=None):
    """A random-walk price table: price[i] = price[i-1] * exp(noise)."""
    base = base or Database()

    def initial(state, rng):
        return Table.from_rows(
            "prices", [{"sym": s, "price": 100.0} for s in ("A", "B", "C")]
        )

    def transition(state, rng):
        rows = []
        for row in state.table("prices"):
            rows.append(
                {
                    "sym": row["sym"],
                    "price": row["price"] * float(np.exp(rng.normal(0, 0.01))),
                }
            )
        return Table.from_rows("prices", rows)

    return DatabaseMarkovChain(
        base,
        [TableTransition("prices", transition, initial=initial)],
        retain=retain,
    )


class TestVersionStore:
    def test_put_get(self):
        store = VersionStore()
        t = Table.from_rows("t", [{"x": 1}])
        store.put("t", 0, t)
        assert store.get("t", 0).column_values("x") == [1]

    def test_snapshots_are_copies(self):
        store = VersionStore()
        t = Table.from_rows("t", [{"x": 1}])
        store.put("t", 0, t)
        t.rows[0]["x"] = 99
        assert store.get("t", 0).column_values("x") == [1]

    def test_duplicate_version_rejected(self):
        store = VersionStore()
        t = Table.from_rows("t", [{"x": 1}])
        store.put("t", 0, t)
        with pytest.raises(SimulationError):
            store.put("t", 0, t)

    def test_retention_window(self):
        store = VersionStore(retain=2)
        for v in range(5):
            store.put("t", v, Table.from_rows("t", [{"x": v}]))
        assert store.versions("t") == [3, 4]
        with pytest.raises(SimulationError):
            store.get("t", 0)

    def test_latest(self):
        store = VersionStore()
        for v in range(3):
            store.put("t", v, Table.from_rows("t", [{"x": v}]))
        assert store.latest("t").column_values("x") == [2]
        assert store.latest_version("t") == 2

    def test_total_rows(self):
        store = VersionStore()
        store.put("t", 0, Table.from_rows("t", [{"x": 1}, {"x": 2}]))
        assert store.total_rows() == 2


class TestDatabaseMarkovChain:
    def test_run_produces_all_versions(self):
        chain = _price_chain()
        store = chain.run(10, np.random.default_rng(0))
        assert store.versions("prices") == list(range(11))

    def test_markov_property_states_differ(self):
        chain = _price_chain()
        store = chain.run(5, np.random.default_rng(0))
        p0 = store.get("prices", 0).column_values("price")
        p5 = store.get("prices", 5).column_values("price")
        assert p0 != p5

    def test_observer_called_each_tick(self):
        chain = _price_chain()
        ticks = []
        chain.run(
            3,
            np.random.default_rng(0),
            observer=lambda tick, db: ticks.append(
                (tick, db.sql("SELECT COUNT(*) AS n FROM prices")[0]["n"])
            ),
        )
        assert ticks == [(0, 3), (1, 3), (2, 3), (3, 3)]

    def test_recursive_two_table_chain(self):
        """A[i] parametrizes B[i], which parametrizes A[i+1]."""
        def a_initial(state, rng):
            return Table.from_rows("a", [{"v": 1.0}])

        def a_transition(state, rng):
            b_prev = state.table("b").column_values("w")[0]
            return Table.from_rows("a", [{"v": b_prev + 1.0}])

        def b_transition(state, rng):
            # Reads the same-tick realization of `a` via a__next.
            a_now = state.table("a__next").column_values("v")[0]
            return Table.from_rows("b", [{"w": a_now * 2.0}])

        chain = DatabaseMarkovChain(
            Database(),
            [
                TableTransition("a", a_transition, initial=a_initial),
                TableTransition("b", b_transition),
            ],
        )
        store = chain.run(3, np.random.default_rng(0))
        # tick0: a=1, b=2; tick1: a=3, b=6; tick2: a=7, b=14; tick3: a=15
        assert store.get("a", 3).column_values("v") == [15.0]
        assert store.get("b", 2).column_values("w") == [14.0]

    def test_monte_carlo_functional(self):
        chain = _price_chain()
        samples = chain.monte_carlo(
            steps=5,
            n_chains=20,
            functional=lambda store: store.latest("prices").column_array(
                "price"
            ).mean(),
            seed=1,
        )
        assert samples.shape == (20,)
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_monte_carlo_reproducible(self):
        chain = _price_chain()
        f = lambda store: store.latest("prices").column_array("price").sum()
        a = chain.monte_carlo(3, 5, f, seed=9)
        b = chain.monte_carlo(3, 5, f, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(SimulationError):
            DatabaseMarkovChain(Database(), [])
        t = TableTransition("x", lambda s, r: Table.from_rows("x", [{"a": 1}]))
        with pytest.raises(SimulationError):
            DatabaseMarkovChain(Database(), [t, t])

    def test_row_wise_transition_helper(self):
        base = Database()

        def initial(state, rng):
            return Table.from_rows("agents", [{"aid": i, "wealth": 10.0} for i in range(4)])

        update = lambda row, state, rng: {
            "aid": row["aid"],
            "wealth": row["wealth"] + 1.0,
        }
        chain = DatabaseMarkovChain(
            base,
            [
                TableTransition(
                    "agents",
                    row_wise_transition("agents", update),
                    initial=initial,
                )
            ],
        )
        store = chain.run(3, np.random.default_rng(0))
        assert store.get("agents", 3).column_values("wealth") == [13.0] * 4


class TestMapReduceExecution:
    def _table(self, n=12):
        return Table.from_rows(
            "agents", [{"aid": i, "x": float(i)} for i in range(n)]
        )

    def test_transition_matches_any_worker_count(self):
        update = lambda row, rng: {
            "aid": row["aid"],
            "x": row["x"] + float(rng.normal()),
        }
        results = []
        for workers in (1, 3, 7):
            table, _ = run_transition_on_cluster(
                Cluster(workers), self._table(), update, seed=5, tick=2
            )
            results.append(table.column_values("x"))
        assert results[0] == results[1] == results[2]

    def test_transition_counters(self):
        update = lambda row, rng: dict(row)
        _, counters = run_transition_on_cluster(
            Cluster(3), self._table(), update
        )
        assert counters.records_mapped == 12
        assert counters.records_written == 12

    def test_grouped_interaction_preserves_rows(self):
        def interact(rows, rng):
            total = sum(r["x"] for r in rows)
            return [{**r, "x": total} for r in rows]

        table, _ = run_grouped_interaction_on_cluster(
            Cluster(3),
            self._table(),
            group_key=lambda row: row["aid"] % 3,
            interact=interact,
        )
        assert len(table) == 12
        # Each agent's x is the sum over its group of original x values.
        group_sums = {
            g: sum(float(i) for i in range(12) if i % 3 == g)
            for g in range(3)
        }
        for row in table:
            assert row["x"] == group_sums[row["aid"] % 3]

    def test_grouped_interaction_size_check(self):
        with pytest.raises(SimulationError):
            run_grouped_interaction_on_cluster(
                Cluster(2),
                self._table(),
                group_key=lambda row: 0,
                interact=lambda rows, rng: rows[:-1],
            )

    def test_grouped_interaction_row_order_stable(self):
        table, _ = run_grouped_interaction_on_cluster(
            Cluster(4),
            self._table(),
            group_key=lambda row: row["aid"] % 2,
            interact=lambda rows, rng: rows,
        )
        assert table.column_values("aid") == list(range(12))
