"""Tests for repro.delta: plans, views, streaming aggregates, and diff.

The acceptance surface of the delta ISSUE: a single-factor perturbation
of a DoE sweep recomputes exactly its invalidation cone while every
reused node's ``result_fingerprint`` stays byte-identical to the cold
run, on all three :mod:`repro.parallel` backends; incremental aggregate
states after N appends are fingerprint-identical to a full recompute
and any non-append mutation falls back to a rebuild; timeline diff
reads only the store and reports array-aware per-node deltas; fault
indices line up with a full ``run_ensemble`` so ``REPRO_FAULTS`` plans
target the same logical node either way.

Scenario callables are the module-level ones registered by
``tests/test_ensemble.py`` (imported here), so they pickle for the
process backend.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.delta import (
    AggSpec,
    AppendLog,
    IncrementalAggregate,
    MaterializedView,
    delta_run,
    diff_timelines,
    execute_plan,
    perturb,
    plan_delta,
    value_deltas,
)
from repro.engine.expressions import BinaryOp, Column as Col, Literal
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.ensemble import (
    Ensemble,
    RunStore,
    ScenarioSpec,
    result_fingerprint,
    run_ensemble,
)
from repro.errors import SimulationError
from repro.faults import FaultPlan, injected
from tests.test_ensemble import BACKENDS, REPO_ROOT, chain


def sweep(runs=12, seed=3):
    return Ensemble.latin_hypercube(
        "response.surface",
        factors={"x1": (0.0, 1.0), "x2": (0.0, 1.0)},
        runs=runs,
        seed=seed,
        name="sweep",
    )


def eq(column, value):
    return BinaryOp("=", Col(column), Literal(value))


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------

class TestPlanDelta:
    def test_cold_plan_recomputes_everything(self, tmp_path):
        plan = plan_delta(chain(3), RunStore(tmp_path))
        assert plan.nodes_total == 3
        assert plan.nodes_recomputed == 3 and plan.nodes_reused == 0
        assert plan.reasons() == {"cold": 3}
        assert plan.recompute_fraction == 1.0

    def test_warm_plan_reuses_everything(self, tmp_path):
        store = RunStore(tmp_path)
        with injected(None):
            run_ensemble(chain(3), store=store)
        plan = plan_delta(chain(3), store)
        assert plan.nodes_recomputed == 0 and plan.nodes_reused == 3
        assert plan.cone == []
        assert "3 reused, 0 recomputed (0.0%)" in plan.render()

    def test_perturbation_cone_is_changed_plus_descendants(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(4)
        with injected(None):
            run_ensemble(base, store=store)
        target = perturb(base, params={"n1": {"x": 99}})
        plan = plan_delta(target, store, base=base)
        assert plan.nodes["n0"].action == "reuse"
        assert plan.nodes["n1"].reason == "changed"
        # Merkle folding: descendants of the change re-key automatically.
        assert plan.nodes["n2"].reason == "upstream"
        assert plan.nodes["n3"].reason == "upstream"
        assert plan.cone == ["n1", "n2", "n3"]
        assert plan.nodes["n1"].base_key != plan.nodes["n1"].key

    def test_added_and_missing_reasons(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(2)
        with injected(None):
            run_ensemble(base, store=store)
        target = Ensemble("chain")
        for node in base.topological_order():
            target.add(node.name, node.spec, deps=node.deps)
        target.add(
            "extra",
            ScenarioSpec("test.double", {"x": 7, "upstream_node": "n1"}),
            deps=("n1",),
        )
        plan = plan_delta(target, store, base=base)
        assert plan.nodes["extra"].reason == "added"
        assert plan.nodes_reused == 2

        store.gc(max_total_bytes=0)  # evict: keys unchanged, bytes gone
        replan = plan_delta(base, store, base=base)
        assert replan.reasons() == {"missing": 2}

    def test_sweep_single_factor_cone_is_one_node(self, tmp_path):
        store = RunStore(tmp_path)
        base = sweep(runs=20)
        with injected(None):
            run_ensemble(base, store=store)
        target = perturb(base, params={"sweep/007": {"x1": 0.42}})
        plan = plan_delta(target, store, base=base)
        # Independent DoE rows: the cone is exactly the perturbed node.
        assert plan.cone == ["sweep/007"]
        assert plan.recompute_fraction == pytest.approx(1 / 20)

    def test_plan_counters_are_pure_and_nonzero_guarded(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(3)
        with injected(None):
            run_ensemble(base, store=store)
        observer = obs.enable()
        try:
            plan_delta(base, store)
            counters = observer.metrics.snapshot()["values"]["counters"]
        finally:
            obs.disable()
        assert counters["delta.plan"] == 1
        assert counters["delta.reused"] == 3
        assert "delta.recomputed" not in counters


class TestPerturb:
    def test_param_scenario_and_seed_perturbations(self):
        base = chain(2)
        target = perturb(
            base,
            params={"n0": {"x": 5}},
            scenarios={"n1": "test.flaky"},
            seeds={"n1": 11},
        )
        assert target.node("n0").spec.params["x"] == 5
        assert target.node("n1").spec.scenario == "test.flaky"
        assert target.node("n1").spec.seed == 11
        # base untouched, DAG shape preserved
        assert base.node("n0").spec.params["x"] == 1
        assert target.node("n1").deps == base.node("n1").deps

    def test_unknown_node_or_scenario_rejected(self):
        with pytest.raises(SimulationError):
            perturb(chain(2), params={"ghost": {"x": 1}})
        with pytest.raises(SimulationError):
            perturb(chain(2), scenarios={"n0": "not.registered"})


# ---------------------------------------------------------------------------
# execution (the acceptance bar: byte-identity on every backend)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestDeltaExecution:
    def test_cone_only_recompute_and_reused_fingerprints_identical(
        self, tmp_path, backend
    ):
        store = RunStore(tmp_path)
        base = sweep(runs=10)
        with injected(None):
            cold = run_ensemble(base, store=store, backend=backend)
            cold.raise_if_failed()
            target = perturb(base, params={"sweep/004": {"x1": 0.99}})
            outcome = delta_run(target, store, base=base, backend=backend)
        outcome.raise_if_failed()
        assert outcome.nodes_run == 1 and outcome.nodes_reused == 9
        assert set(outcome.results) == {"sweep/004"}  # only the cone loaded
        # Every reused node serves the cold run's bytes.
        cold_prints = cold.fingerprints()
        for name, report in outcome.reports.items():
            if report.status == "reused":
                assert result_fingerprint(outcome.result(name)) == \
                    cold_prints[name]

    def test_delta_result_matches_full_rerun(self, tmp_path, backend):
        """The incremental path lands the same bytes a full run would."""
        store = RunStore(tmp_path)
        base = chain(4)
        with injected(None):
            run_ensemble(base, store=store, backend=backend)
            target = perturb(base, params={"n1": {"x": 42}})
            outcome = delta_run(target, store, base=base, backend=backend)
            full = run_ensemble(target, backend=backend)
        outcome.raise_if_failed()
        assert outcome.nodes_run == 3 and outcome.nodes_reused == 1
        for name in ("n0", "n1", "n2", "n3"):
            assert result_fingerprint(outcome.result(name)) == \
                result_fingerprint(full.results[name])

    def test_fault_index_parity_with_full_run(self, tmp_path, backend):
        """``at=ensemble.node:i`` kills the same node, full or delta."""
        store = RunStore(tmp_path)
        base = chain(4)
        with injected(None):
            run_ensemble(base, store=store, backend=backend)
        target = perturb(base, params={"n1": {"x": 42}})
        # n2 has global topological index 2 in the target ensemble even
        # though it is only the *second* node the delta path executes.
        plan = FaultPlan(failures={("ensemble.node", 2): 1})
        with injected(None):
            outcome = delta_run(
                target, store, base=base, backend=backend, faults=plan
            )
        outcome.raise_if_failed()
        assert outcome.reports["n2"].retried
        assert outcome.reports["n2"].attempts == 2
        assert not outcome.reports["n1"].retried

    def test_exhausted_cone_node_skips_descendants(self, tmp_path, backend):
        store = RunStore(tmp_path)
        base = chain(4)
        with injected(None):
            run_ensemble(base, store=store, backend=backend)
        target = perturb(base, scenarios={"n1": "test.always_fails"})
        with injected(None):
            outcome = delta_run(target, store, base=base, backend=backend)
        assert not outcome.ok
        assert outcome.reports["n0"].status == "reused"
        assert outcome.reports["n1"].status == "failed"
        assert outcome.reports["n2"].status == "skipped"
        assert outcome.reports["n2"].blocked_on == "n1"
        assert outcome.reports["n3"].status == "skipped"
        with pytest.raises(SimulationError, match="no stored result"):
            outcome.result("n1")


class TestExecutionLaziness:
    def test_unconsumed_reused_nodes_are_never_loaded(self, tmp_path):
        """delta.loads counts only reused results a cone node consumed."""
        store = RunStore(tmp_path)
        base = sweep(runs=8)  # independent nodes: no cone consumes anything
        with injected(None):
            run_ensemble(base, store=store)
        target = perturb(base, params={"sweep/002": {"x2": 0.8}})
        observer = obs.enable()
        try:
            with injected(None):
                outcome = delta_run(target, store, base=base)
            counters = observer.metrics.snapshot()["values"]["counters"]
        finally:
            obs.disable()
        outcome.raise_if_failed()
        assert "delta.loads" not in counters  # nothing deserialized
        assert counters["delta.nodes_run"] == 1

    def test_consumed_reused_upstream_is_loaded_once(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(3)
        with injected(None):
            run_ensemble(base, store=store)
        target = perturb(base, params={"n1": {"x": 9}})
        observer = obs.enable()
        try:
            with injected(None):
                outcome = delta_run(target, store, base=base)
            counters = observer.metrics.snapshot()["values"]["counters"]
        finally:
            obs.disable()
        outcome.raise_if_failed()
        # n1 consumes reused n0 from the store; n2 consumes computed n1.
        assert counters["delta.loads"] == 1

    def test_vanished_reused_upstream_is_an_explicit_error(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(2)
        with injected(None):
            run_ensemble(base, store=store)
        target = perturb(base, params={"n1": {"x": 9}})
        plan = plan_delta(target, store, base=base)
        store.gc(max_total_bytes=0)  # mutate the store behind the plan
        with injected(None), pytest.raises(SimulationError, match="vanished"):
            execute_plan(plan, store)


# ---------------------------------------------------------------------------
# materialized views
# ---------------------------------------------------------------------------

class TestMaterializedView:
    def test_build_refresh_and_reads(self, tmp_path):
        view = MaterializedView(sweep(runs=6), RunStore(tmp_path))
        with injected(None):
            cold = view.build()
            assert cold.nodes_run == 6 and view.fresh
            refreshed = view.refresh(params={"sweep/003": {"x1": 0.77}})
        assert refreshed.nodes_run == 1 and refreshed.nodes_reused == 5
        assert view.refreshes == 2 and view.fresh
        # The adopted definition carries the perturbation forward.
        assert view.ensemble.node("sweep/003").spec.params["x1"] == 0.77
        assert view.plan.reasons() == {"changed": 1}
        assert isinstance(view.result("sweep/000"), dict)  # store-served
        assert "fresh" in view.render()

    def test_failed_refresh_does_not_advance_definition(self, tmp_path):
        view = MaterializedView(chain(3), RunStore(tmp_path))
        with injected(None):
            view.build()
            before = view.ensemble
            outcome = view.refresh(scenarios={"n1": "test.always_fails"})
        assert not outcome.ok
        assert view.ensemble is before and not view.fresh
        with injected(None):
            retried = view.refresh(params={"n1": {"x": 2}})
        assert retried.ok and view.fresh

    def test_read_before_build_is_an_error(self, tmp_path):
        view = MaterializedView(chain(2), RunStore(tmp_path))
        with pytest.raises(SimulationError, match="never been built"):
            view.result("n0")


# ---------------------------------------------------------------------------
# streaming appends
# ---------------------------------------------------------------------------

class TestAppendLog:
    def make_table(self, rows=()):
        table = Table("t", Schema.of(g=str, v=float))
        table.insert_many(rows)
        return table

    def test_noop_append_and_from_start(self):
        table = self.make_table([{"g": "a", "v": 1.0}])
        log = AppendLog(table)
        assert log.sync().kind == "noop"
        table.insert({"g": "b", "v": 2.0})
        table.insert_many([{"g": "c", "v": 3.0}])
        delta = log.sync()
        assert delta == ("append", 1, 2)
        assert log.sync().kind == "noop"

        streamed = AppendLog(table, from_start=True)
        assert streamed.sync() == ("append", 0, 3)

    def test_from_start_on_empty_table_is_noop(self):
        log = AppendLog(self.make_table())
        assert log.sync().kind == "noop"

    def test_delete_update_truncate_force_rebase(self):
        for mutate in (
            lambda t: t.delete_where(eq("g", "a")),
            lambda t: t.update_where(eq("g", "a"), {"v": Literal(9.0)}),
            lambda t: t.truncate(),
        ):
            table = self.make_table([{"g": "a", "v": 1.0}])
            log = AppendLog(table)
            mutate(table)
            assert log.sync().kind == "rebase"
            assert log.sync().kind == "noop"

    def test_direct_rows_surgery_is_detected(self):
        table = self.make_table([{"g": "a", "v": 1.0}, {"g": "b", "v": 2.0}])
        log = AppendLog(table)
        # A shrink with no epoch bump (hostile direct mutation).
        table._rows.pop()
        assert log.sync().kind == "rebase"
        # Version moved while the row count stood still.
        table._version += 1
        assert log.sync().kind == "rebase"

    def test_poll_does_not_advance(self):
        table = self.make_table([{"g": "a", "v": 1.0}])
        log = AppendLog(table)
        table.insert({"g": "b", "v": 2.0})
        assert log.poll().kind == "append"
        assert log.poll().kind == "append"  # unchanged watermark
        assert log.sync().kind == "append"
        assert log.poll().kind == "noop"


class TestIncrementalAggregate:
    def make(self, table):
        return IncrementalAggregate(
            table,
            group_by=["g"],
            aggregates=[
                ("n", "count", None),
                ("n_v", "count", "v"),
                ("total", "sum", "v"),
                ("lo", "min", "v"),
                ("hi", "max", "v"),
                ("mean", "avg", "v"),
            ],
        )

    def test_appends_match_full_recompute_byte_for_byte(self):
        rng = np.random.default_rng(17)
        table = Table("t", Schema.of(g=str, v=float))
        view = self.make(table)
        for batch in range(8):
            rows = [
                {
                    "g": f"g{int(rng.integers(4))}",
                    "v": None if rng.random() < 0.2
                    else float(rng.normal()),
                }
                for _ in range(25)
            ]
            table.insert_many(rows)
            report = view.refresh()
            assert report.kind == "append" and report.rows_folded == 25
            # The standing oracle: incremental state == full recompute.
            assert view.fingerprint() == result_fingerprint(view.rebuilt())
        assert view.refresh().kind == "noop"

    def test_null_semantics(self):
        table = Table("t", Schema.of(g=str, v=float))
        table.insert_many(
            [{"g": "a", "v": None}, {"g": "a", "v": 3.0}, {"g": "b", "v": None}]
        )
        view = self.make(table)
        view.refresh()
        rows = {row["g"]: row for row in view.snapshot_rows()}
        assert rows["a"] == {
            "g": "a", "n": 2, "n_v": 1, "total": 3.0,
            "lo": 3.0, "hi": 3.0, "mean": 3.0,
        }
        # An all-null group aggregates to SQL nulls but still counts rows.
        assert rows["b"] == {
            "g": "b", "n": 1, "n_v": 0, "total": None,
            "lo": None, "hi": None, "mean": None,
        }

    def test_non_append_mutations_fall_back_to_rebuild(self):
        table = Table("t", Schema.of(g=str, v=float))
        table.insert_many(
            [{"g": "a", "v": 1.0}, {"g": "b", "v": 2.0}, {"g": "a", "v": 3.0}]
        )
        view = self.make(table)
        view.refresh()
        table.delete_where(eq("g", "b"))
        report = view.refresh()
        assert report.kind == "rebase" and report.groups == 1
        assert view.fingerprint() == result_fingerprint(view.rebuilt())

        table.update_where(eq("g", "a"), {"v": Literal(7.0)})
        assert view.refresh().kind == "rebase"
        assert view.snapshot_rows()[0]["total"] == 14.0

        table.truncate()
        assert view.refresh().kind == "rebase"
        assert view.snapshot_rows() == []
        assert view.fingerprint() == result_fingerprint(view.rebuilt())

    def test_group_order_is_first_seen_and_refresh_invariant(self):
        table = Table("t", Schema.of(g=str, v=float))
        table.insert_many([{"g": "z", "v": 1.0}, {"g": "a", "v": 2.0}])
        incremental = self.make(table)
        incremental.refresh()
        table.insert_many([{"g": "m", "v": 3.0}, {"g": "z", "v": 4.0}])
        incremental.refresh()
        # One-shot build over the final table sees the same row order.
        assert [r["g"] for r in incremental.snapshot_rows()] == ["z", "a", "m"]
        assert incremental.fingerprint() == \
            result_fingerprint(incremental.rebuilt())

    def test_spec_validation(self):
        table = Table("t", Schema.of(g=str, v=float))
        with pytest.raises(SimulationError, match="unknown aggregate"):
            AggSpec("x", "median", "v")
        with pytest.raises(SimulationError, match="only count may omit"):
            AggSpec("x", "sum", None)
        with pytest.raises(SimulationError, match="at least one"):
            IncrementalAggregate(table, ["g"], [])
        with pytest.raises(SimulationError, match="unique and distinct"):
            IncrementalAggregate(
                table, ["g"], [("g", "count", None)]
            )
        with pytest.raises(Exception, match="no column"):
            IncrementalAggregate(table, ["ghost"], [("n", "count", None)])

    def test_refresh_counters(self):
        table = Table("t", Schema.of(g=str, v=float))
        table.insert_many([{"g": "a", "v": 1.0}])
        view = self.make(table)
        observer = obs.enable()
        try:
            view.refresh()  # streams the pre-existing row: append of 1
            table.truncate()
            view.refresh()  # rebase
            counters = observer.metrics.snapshot()["values"]["counters"]
        finally:
            obs.disable()
        assert counters["delta.agg.appended_rows"] == 1
        assert counters["delta.agg.rebases"] == 1


# ---------------------------------------------------------------------------
# timeline diff
# ---------------------------------------------------------------------------

class TestTimelineDiff:
    def test_identical_timelines(self, tmp_path):
        store = RunStore(tmp_path)
        with injected(None):
            run_ensemble(chain(3), store=store)
        report = diff_timelines(store, chain(3), chain(3))
        assert report.identical
        assert report.summary() == {"same": 3}
        assert [n.status for n in report.nodes] == ["same"] * 3

    def test_branch_diff_statuses_and_deltas(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(3)
        target = perturb(base, params={"n1": {"x": 50}})
        with injected(None):
            run_ensemble(base, store=store)
            run_ensemble(target, store=store)
        report = diff_timelines(store, base, target)
        assert not report.identical
        assert report.summary() == {"changed": 2, "same": 1}
        by_name = {n.name: n for n in report.nodes}
        assert by_name["n0"].status == "same"
        changed = by_name["n1"]
        assert changed.fingerprint_a != changed.fingerprint_b
        paths = {d.path: d for d in changed.deltas}
        assert paths["$.value"].a == 8 and paths["$.value"].b == 104
        assert "n1" in report.render() and "n0" not in report.render()

    def test_node_set_divergence(self, tmp_path):
        store = RunStore(tmp_path)
        a = chain(3)
        b = chain(2)
        b.add(
            "side",
            ScenarioSpec("test.flaky", {"x": 1}),
        )
        with injected(None):
            run_ensemble(a, store=store)
            run_ensemble(b, store=store)
        report = diff_timelines(store, a, b)
        by_name = {n.name: n for n in report.nodes}
        assert by_name["n2"].status == "only_in_a"
        assert by_name["side"].status == "only_in_b"
        # b-only nodes come after a's topological order.
        assert [n.name for n in report.nodes][-1] == "side"

    def test_unstored_branch_reports_instead_of_running(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(2)
        with injected(None):
            run_ensemble(base, store=store)
        never_ran = perturb(base, params={"n0": {"x": 77}})
        report = diff_timelines(store, base, never_ran)
        assert report.summary() == {"unstored": 2}
        node = report.nodes[0]
        assert node.fingerprint_a is not None  # side a IS stored
        assert node.fingerprint_b is None

    def test_array_aware_deltas(self, tmp_path):
        store = RunStore(tmp_path)
        a = Ensemble("arrays")
        a.add("node", ScenarioSpec("test.array", {"n": 16}, seed=1))
        b = perturb(a, seeds={"node": 2})
        with injected(None):
            run_ensemble(a, store=store)
            run_ensemble(b, store=store)
        report = diff_timelines(store, a, b)
        delta = {d.path: d for d in report.nodes[0].deltas}["$.curve"]
        assert delta.kind == "array"
        assert 0 < delta.differing <= 16
        assert delta.max_abs_delta > 0
        assert "element(s) differ" in delta.render()

    def test_value_deltas_shape_nan_and_structure(self):
        x = np.arange(4.0)
        y = x.copy(); y[1] = 9.0
        deltas = value_deltas({"a": x}, {"a": y})
        assert deltas[0].differing == 1
        assert deltas[0].max_abs_delta == pytest.approx(8.0)
        # NaN == NaN for diff purposes (byte-identical payloads).
        nan = np.array([np.nan, 1.0])
        assert value_deltas({"a": nan}, {"a": nan.copy()}) == []
        shape = value_deltas(np.zeros(3), np.zeros((3, 1)))
        assert shape[0].kind == "shape"
        missing = value_deltas({"k": 1}, {})
        assert missing[0].kind == "missing"
        typed = value_deltas({"k": 1}, {"k": np.zeros(2)})
        assert typed[0].kind == "type"
        lists = value_deltas([1, 2], [1, 3, 4])
        assert any(d.kind == "value" for d in lists)

    def test_leaf_delta_cap_records_overflow(self):
        a = {f"k{i}": i for i in range(10)}
        b = {f"k{i}": i + 1 for i in range(10)}
        deltas = value_deltas(a, b, limit=4)
        assert len(deltas) == 5  # limit + 1 sentinel for "more existed"

    def test_as_dict_round_trips_through_json(self, tmp_path):
        store = RunStore(tmp_path)
        a = Ensemble("arrays")
        a.add("node", ScenarioSpec("test.array", {"n": 8}, seed=1))
        b = perturb(a, seeds={"node": 2})
        with injected(None):
            run_ensemble(a, store=store)
            run_ensemble(b, store=store)
        report = diff_timelines(store, a, b)
        document = json.loads(json.dumps(report.as_dict(), default=str))
        assert document["summary"] == {"changed": 1}
        assert document["nodes"][0]["deltas"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_cli(*args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=180,
    )


class TestDeltaCli:
    def test_plan_execute_diff_cycle(self, tmp_path):
        store = str(tmp_path / "store")
        warm = _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick", "--store", store
        )
        assert warm.returncode == 0, warm.stderr

        planned = _run_cli(
            "delta", "plan", "--demo", "sweep", "--quick", "--store", store,
            "--set", "response-sweep/002:x1=0.9",
        )
        assert planned.returncode == 0, planned.stderr
        assert "1 recomputed" in planned.stdout
        assert "changed" in planned.stdout

        executed = _run_cli(
            "delta", "plan", "--demo", "sweep", "--quick", "--store", store,
            "--set", "response-sweep/002:x1=0.9", "--execute",
        )
        assert executed.returncode == 0, executed.stderr
        assert "4 reused, 1 recomputed" in executed.stdout

        diffed = _run_cli(
            "delta", "diff", "--demo", "sweep", "--quick", "--store", store,
            "--set-b", "response-sweep/002:x1=0.9", "--json",
        )
        assert diffed.returncode == 1  # timelines differ
        document = json.loads(diffed.stdout)
        assert document["summary"]["changed"] == 1
        assert document["summary"]["same"] == 4

        same = _run_cli(
            "delta", "diff", "--demo", "sweep", "--quick", "--store", store
        )
        assert same.returncode == 0 and "5 same" in same.stdout

    def test_warm_plan_is_all_reuse(self, tmp_path):
        store = str(tmp_path / "store")
        _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick", "--store", store
        )
        planned = _run_cli(
            "delta", "plan", "--demo", "sweep", "--quick", "--store", store
        )
        assert planned.returncode == 0, planned.stderr
        assert "5 reused, 0 recomputed (0.0%)" in planned.stdout

    def test_bad_set_syntax_is_a_usage_error(self, tmp_path):
        result = _run_cli(
            "delta", "plan", "--quick",
            "--store", str(tmp_path / "s"), "--set", "garbage",
        )
        assert result.returncode != 0
        assert "NODE:KEY=VALUE" in result.stderr

    def test_help_epilog_lists_delta(self):
        result = _run_cli("--help")
        assert result.returncode == 0
        assert "delta" in result.stdout


# ---------------------------------------------------------------------------
# concurrency bug sweep regressions (sharded data plane PR)
# ---------------------------------------------------------------------------

class TestEmptyConeShortCircuit:
    """An all-reused plan must never construct an execution backend."""

    def test_execute_plan_skips_backend_setup(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        base = chain(3)
        run_ensemble(base, store=store)

        import repro.delta.plan as delta_plan_module

        def exploding_substrate(*args, **kwargs):  # pragma: no cover
            raise AssertionError(
                "empty cone constructed a Substrate (backend setup)"
            )

        monkeypatch.setattr(
            delta_plan_module, "Substrate", exploding_substrate
        )
        plan = plan_delta(base, store, base=base)
        assert plan.nodes_recomputed == 0
        outcome = execute_plan(plan, store, backend="process")
        outcome.raise_if_failed()
        assert outcome.nodes_reused == 3 and outcome.nodes_run == 0

    def test_empty_cone_counters_and_result_contract(self, tmp_path):
        store = RunStore(tmp_path)
        base = chain(3)
        run_ensemble(base, store=store)
        observer = obs.enable()
        observer.reset()
        try:
            plan = plan_delta(base, store, base=base)
            outcome = execute_plan(plan, store)
            values = observer.metrics.snapshot()["values"]
        finally:
            obs.disable()
        # The DeltaResult contract is identical to the pre-shortcut path…
        assert outcome.nodes_reused == 3
        assert outcome.nodes_run == outcome.nodes_failed == 0
        assert outcome.results == {}
        assert outcome.store_stats is not None
        assert {r.status for r in outcome.reports.values()} == {"reused"}
        counters = values["counters"]
        assert counters.get("delta.plan") == 1
        assert counters.get("delta.reused") == 3
        # …and the fan-out layer was never touched: no parallel.* counter
        # may appear for a dispatch of zero nodes.
        assert not any(name.startswith("parallel.") for name in counters)

    def test_dispatch_isolated_empty_returns_without_backend(self):
        from repro.exec.substrate import Substrate

        substrate = Substrate.__new__(Substrate)  # no backend attribute
        assert substrate.dispatch_isolated([], scope="delta.dispatch") == []


class TestDiffEvictionRace:
    """diff_timelines reports a mid-diff eviction as ``unstored``."""

    def _stored_branches(self, store):
        base = chain(3, scenario="test.array")
        target = perturb(base, params={"n1": {"x": 99}}, name="chain~b")
        run_ensemble(base, store=store)
        run_ensemble(target, store=store)
        return base, target

    def test_half_evicted_entry_reports_unstored(self, tmp_path):
        store = RunStore(tmp_path)
        base, target = self._stored_branches(store)
        diff = diff_timelines(store, base, target)
        changed = {n.name for n in diff.nodes if n.status == "changed"}
        assert "n1" in changed
        # Simulate a gc racing the diff: run.json survives the contains
        # check but arrays.npz is already gone when the load happens.
        from repro.ensemble import compute_run_keys

        key = compute_run_keys(target)["n1"]
        entry_dir = store._candidate_dirs(key)[0]
        os.unlink(os.path.join(entry_dir, "arrays.npz"))
        raced = diff_timelines(store, base, target)
        statuses = {n.name: n.status for n in raced.nodes}
        assert statuses["n1"] == "unstored"
        # The rest of the diff still completes normally: n0 is untouched
        # and n2 (re-keyed through the Merkle fold) still loads and diffs.
        assert statuses["n0"] == "same"
        assert statuses["n2"] == "changed"

    def test_fully_evicted_entry_reports_unstored(self, tmp_path):
        store = RunStore(tmp_path)
        base, target = self._stored_branches(store)
        from repro.ensemble import compute_run_keys

        store.evict(compute_run_keys(target)["n1"])
        raced = diff_timelines(store, base, target)
        statuses = {n.name: n.status for n in raced.nodes}
        assert statuses["n1"] == "unstored"
        assert raced.count("unstored") >= 1
