"""Tests for repro.stats.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    RandomStreamFactory,
    antithetic_uniforms,
    deterministic_cycle,
    make_rng,
    stratified_uniforms,
)


class TestRandomStreamFactory:
    def test_same_key_reproduces_stream(self):
        factory = RandomStreamFactory(seed=7)
        a = factory.stream("demand").uniform(size=5)
        b = factory.stream("demand").uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        factory = RandomStreamFactory(seed=7)
        a = factory.stream("demand").uniform(size=5)
        b = factory.stream("queue").uniform(size=5)
        assert not np.allclose(a, b)

    def test_streams_independent_of_request_order(self):
        f1 = RandomStreamFactory(seed=3)
        f1.stream("x")
        a = f1.stream("y").uniform(size=4)
        f2 = RandomStreamFactory(seed=3)
        b = f2.stream("y").uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_replication_streams_count_and_independence(self):
        factory = RandomStreamFactory(seed=1)
        streams = factory.replication_streams("mc", 4)
        assert len(streams) == 4
        draws = [s.uniform() for s in streams]
        assert len(set(draws)) == 4

    def test_spawn_subfactory_deterministic(self):
        a = RandomStreamFactory(seed=5).spawn("child").stream("s").uniform()
        b = RandomStreamFactory(seed=5).spawn("child").stream("s").uniform()
        assert a == b

    def test_root_entropy_exposed(self):
        assert RandomStreamFactory(seed=42).root_entropy == (42,)

    def test_tuple_keys_supported(self):
        factory = RandomStreamFactory(seed=0)
        a = factory.stream(("rep", 3)).uniform()
        b = factory.stream(("rep", 4)).uniform()
        assert a != b


class TestHelpers:
    def test_make_rng_reproducible(self):
        assert make_rng(9).uniform() == make_rng(9).uniform()

    def test_antithetic_pair_sums_to_one(self, rng):
        u, v = antithetic_uniforms(rng, 10)
        np.testing.assert_allclose(u + v, np.ones(10))

    def test_stratified_uniforms_cover_strata(self, rng):
        size = 16
        u = stratified_uniforms(rng, size)
        strata = np.floor(np.sort(u) * size).astype(int)
        np.testing.assert_array_equal(strata, np.arange(size))

    def test_deterministic_cycle_fixed_rotation(self):
        assert deterministic_cycle(["a", "b"], 5) == ["a", "b", "a", "b", "a"]

    def test_deterministic_cycle_empty_raises(self):
        with pytest.raises(ValueError):
            deterministic_cycle([], 3)
