"""Tests for the SQL dialect."""

from __future__ import annotations

import pytest

from repro.engine import Database, Schema
from repro.errors import QueryError


@pytest.fixture
def db(people_db):
    return people_db


class TestSelect:
    def test_select_star(self, db):
        rows = db.sql("SELECT * FROM person")
        assert len(rows) == 20
        assert "pid" in rows[0]

    def test_where_between(self, db):
        rows = db.sql("SELECT pid FROM person WHERE age BETWEEN 0 AND 10")
        assert all(isinstance(r["pid"], int) for r in rows)

    def test_arithmetic_projection(self, db):
        rows = db.sql("SELECT pid, income / 1000 AS k FROM person LIMIT 1")
        assert rows[0]["k"] == 20.0

    def test_string_literal(self, db):
        rows = db.sql("SELECT COUNT(*) AS n FROM person WHERE region = 'east'")
        assert rows[0]["n"] == 10

    def test_in_list(self, db):
        rows = db.sql("SELECT pid FROM person WHERE pid IN (1, 2, 3)")
        assert {r["pid"] for r in rows} == {1, 2, 3}

    def test_not_in(self, db):
        rows = db.sql("SELECT pid FROM person WHERE pid NOT IN (0)")
        assert len(rows) == 19

    def test_is_null(self, db):
        db.table("person").insert(
            {"pid": 77, "age": 5, "region": "east", "income": None}
        )
        rows = db.sql("SELECT pid FROM person WHERE income IS NULL")
        assert rows == [{"pid": 77}]
        rows = db.sql(
            "SELECT COUNT(*) AS n FROM person WHERE income IS NOT NULL"
        )
        assert rows[0]["n"] == 20

    def test_group_by_having(self, db):
        rows = db.sql(
            "SELECT region, COUNT(*) AS n, AVG(income) AS m "
            "FROM person GROUP BY region HAVING n >= 10 ORDER BY region"
        )
        assert [r["region"] for r in rows] == ["east", "west"]

    def test_order_by_desc_limit(self, db):
        rows = db.sql(
            "SELECT pid, income FROM person ORDER BY income DESC LIMIT 2"
        )
        assert rows[0]["income"] >= rows[1]["income"]
        assert len(rows) == 2

    def test_join_with_aliases(self, db):
        db.create_table("flag", Schema.of(pid=int, tag=str))
        db.table("flag").insert({"pid": 2, "tag": "vip"})
        rows = db.sql(
            "SELECT p.pid, f.tag FROM person p JOIN flag f ON p.pid = f.pid"
        )
        assert rows == [{"pid": 2, "tag": "vip"}]

    def test_left_join(self, db):
        db.create_table("flag", Schema.of(pid=int, tag=str))
        db.table("flag").insert({"pid": 2, "tag": "vip"})
        rows = db.sql(
            "SELECT p.pid, f.tag FROM person p "
            "LEFT JOIN flag f ON p.pid = f.pid WHERE f.tag IS NULL"
        )
        assert len(rows) == 19

    def test_implicit_cross_join_with_where(self, db):
        db.create_table("param", Schema.of(cut=int))
        db.table("param").insert({"cut": 70})
        rows = db.sql(
            "SELECT p.pid FROM person p, param q WHERE p.age > q.cut"
        )
        assert all(isinstance(r["pid"], int) for r in rows)

    def test_subquery_in_from(self, db):
        rows = db.sql(
            "SELECT COUNT(*) AS n FROM "
            "(SELECT pid FROM person WHERE age < 40) sub"
        )
        assert rows[0]["n"] == db.sql(
            "SELECT COUNT(*) AS n FROM person WHERE age < 40"
        )[0]["n"]

    def test_distinct(self, db):
        rows = db.sql("SELECT DISTINCT region FROM person")
        assert len(rows) == 2

    def test_union(self, db):
        rows = db.sql(
            "SELECT pid FROM person WHERE pid = 0 "
            "UNION SELECT pid FROM person WHERE pid = 1"
        )
        assert len(rows) == 2

    def test_count_distinct(self, db):
        rows = db.sql("SELECT COUNT(DISTINCT region) AS n FROM person")
        assert rows[0]["n"] == 2

    def test_scalar_functions(self, db):
        rows = db.sql("SELECT ABS(0 - 5) AS a FROM person LIMIT 1")
        assert rows[0]["a"] == 5


class TestDDLDML:
    def test_create_insert_select(self):
        db = Database()
        db.sql("CREATE TABLE t (x int, label text)")
        db.sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert db.sql("SELECT COUNT(*) AS n FROM t")[0]["n"] == 2

    def test_insert_with_columns(self):
        db = Database()
        db.sql("CREATE TABLE t (x int, y int)")
        db.sql("INSERT INTO t (y, x) VALUES (2, 1)")
        assert db.sql("SELECT * FROM t") == [{"x": 1, "y": 2}]

    def test_insert_select(self, db):
        db.sql("CREATE TABLE young (pid int)")
        db.sql("INSERT INTO young SELECT pid FROM person WHERE age < 10")
        n = db.sql("SELECT COUNT(*) AS n FROM young")[0]["n"]
        assert n == len(db.sql("SELECT pid FROM person WHERE age < 10"))

    def test_create_table_as(self, db):
        db.sql(
            "CREATE TABLE seniors AS SELECT pid, age FROM person "
            "WHERE age >= 60"
        )
        assert "seniors" in db
        rows = db.sql("SELECT * FROM seniors")
        assert all(r["age"] >= 60 for r in rows)

    def test_update(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("INSERT INTO t VALUES (1), (2)")
        db.sql("UPDATE t SET x = x * 10 WHERE x = 2")
        assert sorted(r["x"] for r in db.sql("SELECT x FROM t")) == [1, 20]

    def test_delete(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("INSERT INTO t VALUES (1), (2), (3)")
        db.sql("DELETE FROM t WHERE x > 1")
        assert db.sql("SELECT COUNT(*) AS n FROM t")[0]["n"] == 1

    def test_drop(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("DROP TABLE t")
        assert "t" not in db

    def test_negative_literals(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("INSERT INTO t VALUES (-5)")
        assert db.sql("SELECT x FROM t") == [{"x": -5}]

    def test_quoted_string_with_escape(self):
        db = Database()
        db.sql("CREATE TABLE t (s text)")
        db.sql("INSERT INTO t VALUES ('it''s')")
        assert db.sql("SELECT s FROM t") == [{"s": "it's"}]


class TestErrors:
    def test_syntax_error(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT FROM person")

    def test_trailing_garbage(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT pid FROM person extra garbage here")

    def test_unknown_table(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT * FROM nope")

    def test_group_by_violation(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT pid, COUNT(*) AS n FROM person GROUP BY region")

    def test_insert_arity_mismatch(self):
        db = Database()
        db.sql("CREATE TABLE t (x int, y int)")
        with pytest.raises(QueryError):
            db.sql("INSERT INTO t VALUES (1)")


class TestQualifiedNames:
    """Table names qualify their own columns, aliased or not."""

    def test_table_name_qualifier_in_join(self, db):
        db.create_table("flag", Schema.of(pid=int, tag=str))
        db.table("flag").insert({"pid": 3, "tag": "vip"})
        rows = db.sql(
            "SELECT person.pid, flag.tag FROM person "
            "JOIN flag ON person.pid = flag.pid"
        )
        assert rows == [{"pid": 3, "tag": "vip"}]

    def test_qualified_name_single_unaliased_table(self, db):
        rows = db.sql("SELECT person.pid FROM person WHERE person.age < 8")
        assert all(isinstance(r["pid"], int) for r in rows)

    def test_scientific_notation_literals(self, db):
        rows = db.sql("SELECT COUNT(*) AS n FROM person WHERE income > 1e4")
        assert rows[0]["n"] == 20
        rows = db.sql(
            "SELECT COUNT(*) AS n FROM person WHERE income > 3.5E4"
        )
        assert rows[0]["n"] < 20

    def test_mixed_alias_and_table_name(self, db):
        db.create_table("flag", Schema.of(pid=int))
        db.table("flag").insert({"pid": 0})
        rows = db.sql(
            "SELECT p.age FROM person p JOIN flag ON p.pid = flag.pid"
        )
        assert len(rows) == 1


class TestSubqueriesAndCtes:
    def test_in_subquery(self, db):
        db.create_table("vip", Schema.of(pid=int))
        db.table("vip").insert_many([{"pid": 1}, {"pid": 3}])
        rows = db.sql(
            "SELECT pid FROM person WHERE pid IN (SELECT pid FROM vip)"
        )
        assert {r["pid"] for r in rows} == {1, 3}

    def test_not_in_subquery(self, db):
        db.create_table("vip", Schema.of(pid=int))
        db.table("vip").insert({"pid": 0})
        rows = db.sql(
            "SELECT COUNT(*) AS n FROM person "
            "WHERE pid NOT IN (SELECT pid FROM vip)"
        )
        assert rows[0]["n"] == 19

    def test_in_subquery_multi_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.sql(
                "SELECT pid FROM person WHERE pid IN "
                "(SELECT pid, age FROM person)"
            )

    def test_with_cte(self, db):
        rows = db.sql(
            "WITH young (pid) AS (SELECT pid FROM person WHERE age < 40) "
            "SELECT COUNT(pid) AS n FROM young"
        )
        assert rows[0]["n"] == len(
            db.sql("SELECT pid FROM person WHERE age < 40")
        )

    def test_with_cte_chaining(self, db):
        rows = db.sql(
            "WITH young (pid) AS (SELECT pid FROM person WHERE age < 40), "
            "young_even (pid) AS "
            "(SELECT pid FROM young WHERE pid % 2 = 0) "
            "SELECT COUNT(pid) AS n FROM young_even"
        )
        direct = db.sql(
            "SELECT COUNT(pid) AS n FROM person "
            "WHERE age < 40 AND pid % 2 = 0"
        )
        assert rows == direct

    def test_empty_cte_with_declared_columns(self, db):
        rows = db.sql(
            "WITH nobody (pid) AS (SELECT pid FROM person WHERE age > 999) "
            "SELECT COUNT(pid) AS n FROM nobody"
        )
        assert rows[0]["n"] == 0

    def test_empty_cte_without_columns_rejected(self, db):
        with pytest.raises(QueryError):
            db.sql(
                "WITH nobody AS (SELECT pid FROM person WHERE age > 999) "
                "SELECT COUNT(pid) AS n FROM nobody"
            )

    def test_cte_does_not_leak_into_catalog(self, db):
        db.sql(
            "WITH young (pid) AS (SELECT pid FROM person WHERE age < 40) "
            "SELECT COUNT(pid) AS n FROM young"
        )
        assert "young" not in db
