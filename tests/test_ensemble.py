"""Tests for repro.ensemble: specs, the run store, and the scheduler.

The acceptance surface of the ensemble ISSUE: run keys are stable under
dict reordering and numpy re-typing and move when the schema version
moves; a warm store serves an unchanged ensemble with *zero*
re-executions, byte-identical to the cold run, on every backend; a
branched ensemble recomputes only its post-branch nodes; an injected
node failure is retried per :mod:`repro.faults` and an exhausted node
marks its descendants skipped with a terminal report instead of
crashing the run.

Scenario callables live at module level so they pickle for the process
backend.  CI runs this file under an ambient ``REPRO_FAULTS`` plan, so
tests that assert exact retry counts pin their own plan (or ``None``)
via :func:`repro.faults.injected`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.ensemble import (
    STORE_SCHEMA_VERSION,
    Ensemble,
    EnsembleResult,
    RunStore,
    ScenarioSpec,
    canonical_json,
    canonical_params,
    compute_run_keys,
    current_node_context,
    normalize_result,
    register_scenario,
    registered_scenarios,
    result_fingerprint,
    run_ensemble,
    run_key,
    scenario_qualname,
)
from repro.ensemble.scenarios import (
    composite_caching_ensemble,
    epidemic_branching_ensemble,
    response_sweep_ensemble,
)
from repro.ensemble.store import decode_result, encode_result
from repro.errors import SimulationError
from repro.faults import FaultPlan, RetryPolicy, injected

BACKENDS = ("serial", "thread", "process")

REPO_ROOT = Path(__file__).resolve().parents[1]


# -- module-level scenarios (picklable for the process backend) --------------

def double_scenario(params, seed, upstream):
    dep = params.get("upstream_node")
    base = upstream[dep]["value"] if dep else 0
    return {"value": (params.get("x", 0) + base) * 2, "seed": seed}


def array_scenario(params, seed, upstream):
    rng = np.random.default_rng(seed)
    return {
        "curve": rng.normal(size=int(params.get("n", 5))),
        "total": float(params.get("n", 5)),
    }


def flaky_scenario(params, seed, upstream):
    return {"ok": True, "x": params.get("x", 0)}


def always_fails(params, seed, upstream):
    raise SimulationError("scenario is broken on purpose")


def context_probe(params, seed, upstream):
    context = current_node_context()
    return {
        "has_context": context is not None,
        "has_checkpoint_dir": bool(context and context.checkpoint_dir),
    }


register_scenario("test.double", double_scenario)
register_scenario("test.array", array_scenario)
register_scenario("test.flaky", flaky_scenario)
register_scenario("test.always_fails", always_fails)
register_scenario("test.context_probe", context_probe)


def chain(depth=3, scenario="test.double", x=1):
    """A linear DAG n0 -> n1 -> ... (each consuming its predecessor)."""
    ensemble = Ensemble("chain")
    prev = None
    for i in range(depth):
        params = {"x": x + i}
        if prev is not None:
            params["upstream_node"] = prev
        name = f"n{i}"
        deps = (prev,) if prev else ()
        ensemble.add(name, ScenarioSpec(scenario, params, seed=5), deps=deps)
        prev = name
    return ensemble


# ---------------------------------------------------------------------------
# Canonical params and run-key stability (regression tests)
# ---------------------------------------------------------------------------

class TestCanonicalization:
    def test_dict_ordering_is_invisible(self):
        a = {"beta": 0.5, "gamma": 0.1, "nested": {"x": 1, "y": 2}}
        b = {"nested": {"y": 2, "x": 1}, "gamma": 0.1, "beta": 0.5}
        assert canonical_json(a) == canonical_json(b)
        assert run_key("f", a, 0) == run_key("f", b, 0)

    def test_numpy_scalars_equal_python_scalars(self):
        py = {"rate": 0.25, "count": 7, "flag": True}
        npy = {
            "rate": np.float64(0.25),
            "count": np.int64(7),
            "flag": np.bool_(True),
        }
        assert canonical_params(npy) == canonical_params(py)
        assert run_key("f", npy, 0) == run_key("f", py, 0)

    def test_arrays_and_tuples_collapse_to_lists(self):
        assert canonical_params((1, 2, 3)) == [1, 2, 3]
        assert canonical_params(np.array([1.0, 2.0])) == [1.0, 2.0]
        assert run_key("f", {"xs": (1, 2)}, 0) == run_key(
            "f", {"xs": np.array([1, 2])}, 0
        )

    def test_schema_version_changes_key(self):
        params = {"x": 1}
        assert run_key("f", params, 0) != run_key(
            "f", params, 0, schema_version=STORE_SCHEMA_VERSION + 1
        )

    def test_seed_qualname_params_upstream_all_participate(self):
        base = run_key("f", {"x": 1}, 0)
        assert run_key("f", {"x": 1}, 1) != base
        assert run_key("g", {"x": 1}, 0) != base
        assert run_key("f", {"x": 2}, 0) != base
        assert run_key("f", {"x": 1}, 0, upstream={"dep": "a" * 64}) != base
        assert run_key("f", {"x": 1}, 0, upstream={"dep": "b" * 64}) != run_key(
            "f", {"x": 1}, 0, upstream={"dep": "a" * 64}
        )

    def test_non_finite_and_non_string_keys_rejected(self):
        with pytest.raises(SimulationError):
            canonical_params({"x": float("nan")})
        with pytest.raises(SimulationError):
            canonical_params({"x": float("inf")})
        with pytest.raises(SimulationError):
            canonical_params({1: "x"})
        with pytest.raises(SimulationError):
            canonical_params({"x": object()})

    def test_spec_canonicalizes_on_construction(self):
        spec = ScenarioSpec(
            "test.double", {"b": np.float64(2.0), "a": (1, 2)}, np.int64(3)
        )
        assert spec.params == {"a": [1, 2], "b": 2.0}
        assert spec.seed == 3 and isinstance(spec.seed, int)
        assert spec.with_params(a=[9]).params == {"a": [9], "b": 2.0}

    def test_registry_rejects_rebinding(self):
        register_scenario("test.double", double_scenario)  # idempotent
        with pytest.raises(SimulationError):
            register_scenario("test.double", array_scenario)
        assert "test.double" in registered_scenarios()
        assert scenario_qualname("test.double").endswith("double_scenario")


# ---------------------------------------------------------------------------
# Ensemble DAG construction
# ---------------------------------------------------------------------------

class TestEnsembleDag:
    def test_add_rejects_forward_refs_and_duplicates(self):
        ensemble = Ensemble()
        ensemble.add("a", ScenarioSpec("test.double"))
        with pytest.raises(SimulationError):
            ensemble.add("a", ScenarioSpec("test.double"))
        with pytest.raises(SimulationError):
            ensemble.add("b", ScenarioSpec("test.double"), deps=("missing",))
        with pytest.raises(SimulationError):
            ensemble.branch("missing", "b", ScenarioSpec("test.double"))

    def test_waves_are_topological_levels(self):
        ensemble = Ensemble()
        ensemble.add("a", ScenarioSpec("test.double"))
        ensemble.add("b", ScenarioSpec("test.double"))
        ensemble.add("c", ScenarioSpec("test.double"), deps=("a", "b"))
        ensemble.branch("c", "d", ScenarioSpec("test.double"))
        waves = [[n.name for n in wave] for wave in ensemble.waves()]
        assert waves == [["a", "b"], ["c"], ["d"]]
        assert [n.name for n in ensemble.topological_order()] == [
            "a", "b", "c", "d",
        ]

    def test_cycle_detection(self):
        ensemble = chain(2)
        # Corrupt the DAG under the hood; public `add` can't build cycles.
        node = ensemble._nodes["n0"]
        ensemble._nodes["n0"] = type(node)(node.name, node.spec, ("n1",))
        with pytest.raises(SimulationError, match="unsatisfiable"):
            ensemble.topological_order()

    def test_sweep_constructors(self):
        lh = Ensemble.latin_hypercube(
            "test.flaky", {"x": (0.0, 1.0), "y": (-1.0, 1.0)},
            runs=4, seed=2, name="sweep",
        )
        assert len(lh) == 4
        names = [node.name for node in lh.nodes()]
        assert names == ["sweep/000", "sweep/001", "sweep/002", "sweep/003"]
        for node in lh.nodes():
            assert 0.0 <= node.spec.params["x"] <= 1.0
            assert -1.0 <= node.spec.params["y"] <= 1.0
            assert node.spec.seed == 2
        fact = Ensemble.factorial("test.flaky", {"x": (0.0, 1.0)})
        assert sorted(n.spec.params["x"] for n in fact.nodes()) == [0.0, 1.0]
        with pytest.raises(SimulationError):
            Ensemble.from_design("test.flaky", ["x"], np.zeros((2, 3)))


# ---------------------------------------------------------------------------
# The run store
# ---------------------------------------------------------------------------

class TestRunStore:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store = RunStore(tmp_path)
        key = run_key("f", {"x": 1}, 0)
        original = {
            "curve": np.arange(6, dtype=np.float32).reshape(2, 3),
            "stats": {"mean": np.float64(2.5), "n": np.int32(6)},
            "tags": ("a", "b"),
        }
        put_back = store.put(key, original, scenario="f", seed=0)
        got = store.get(key)
        assert result_fingerprint(got) == result_fingerprint(original)
        assert result_fingerprint(put_back) == result_fingerprint(got)
        assert got["curve"].dtype == np.float32
        assert got["stats"] == {"mean": 2.5, "n": 6}
        assert got["tags"] == ["a", "b"]
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 0, "puts": 1, "evictions": 0,
        }

    def test_miss_then_hit_accounting(self, tmp_path):
        store = RunStore(tmp_path)
        key = run_key("f", {}, 0)
        assert store.get(key) is None
        assert not store.contains(key)
        store.put(key, {"v": 1})
        assert store.contains(key)
        assert store.get(key) == {"v": 1}
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_put_is_atomic_and_race_tolerant(self, tmp_path):
        store = RunStore(tmp_path)
        key = run_key("f", {"x": 1}, 0)
        store.put(key, {"v": 1})
        store.put(key, {"v": 1})  # losing the rename race is harmless
        assert store.get(key) == {"v": 1}
        # A failed put leaves only scratch debris, never a partial entry.
        bad_key = run_key("f", {"x": 2}, 0)
        with pytest.raises(SimulationError):
            store.put(bad_key, {"v": object()})
        assert not store.contains(bad_key)
        assert store.get(bad_key) is None

    def test_malformed_key_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(SimulationError):
            store.get("../../etc/passwd")
        with pytest.raises(SimulationError):
            store.put("short", {})

    def test_ls_oldest_first_and_gc(self, tmp_path):
        store = RunStore(tmp_path)
        keys = [run_key("f", {"x": i}, 0) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"x": i}, scenario="f", seed=0)
            run_json = os.path.join(store._entry_dir(key), "run.json")
            os.utime(run_json, (1000.0 + i, 1000.0 + i))
        listed = store.ls()
        assert [entry.key for entry in listed] == keys
        assert all(entry.scenario == "f" for entry in listed)
        # Age: evict everything strictly older than the newest entry.
        evicted = store.gc(max_age_seconds=0.5, now=1002.0)
        assert evicted == keys[:2]
        # Size: evicting oldest-first until under the byte bound.
        evicted = store.gc(max_total_bytes=0)
        assert evicted == [keys[2]]
        assert store.ls() == [] and store.total_bytes() == 0
        assert store.stats.evictions == 3

    def test_evict_removes_chain_checkpoint(self, tmp_path):
        store = RunStore(tmp_path)
        key = run_key("f", {}, 0)
        store.put(key, {"v": 1})
        checkpoint = Path(store.checkpoint_dir()) / f"{key}.ckpt"
        checkpoint.write_bytes(b"stub")
        assert store.evict(key)
        assert not checkpoint.exists()
        assert not store.evict(key)

    def test_gc_sweeps_scratch_debris(self, tmp_path):
        import time as _time

        store = RunStore(tmp_path)
        debris = Path(store._scratch_dir()) / "crashed-put"
        debris.mkdir()
        (debris / "run.json").write_text("{}")
        stale = _time.time() - 3600.0
        os.utime(debris, (stale, stale))
        # A fresh staging dir — a concurrent in-flight put — survives.
        inflight = Path(store._scratch_dir()) / "inflight-put"
        inflight.mkdir()
        assert store.gc() == []
        assert not debris.exists()
        assert inflight.exists()
        # Shrinking the age gate sweeps the remaining dir too.
        assert store.gc(scratch_age_seconds=-1.0) == []
        assert not inflight.exists()

    def test_normalize_matches_store_normal_form(self):
        raw = {"a": (1, np.int64(2)), "b": np.float32(1.5)}
        normal = normalize_result(raw)
        assert normal == {"a": [1, 2], "b": 1.5}
        tree, arrays = encode_result(raw)
        assert decode_result(tree, arrays) == normal

    def test_encode_rejects_marker_collision(self):
        with pytest.raises(SimulationError):
            encode_result({"__npz__": "x"})


# ---------------------------------------------------------------------------
# Scheduler: caching, branching, recovery
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestWarmStoreAcceptance:
    def test_warm_rerun_is_zero_recompute_and_byte_identical(
        self, tmp_path, backend
    ):
        store = RunStore(tmp_path)
        with injected(None):
            cold = run_ensemble(chain(3), store=store, backend=backend)
            warm = run_ensemble(chain(3), store=store, backend=backend)
        cold.raise_if_failed()
        assert cold.nodes_run == 3 and cold.nodes_cached == 0
        assert warm.nodes_run == 0 and warm.nodes_cached == warm.nodes
        assert warm.fingerprints() == cold.fingerprints()
        assert warm.store_stats["hits"] == warm.nodes
        assert warm.results["n2"]["value"] == cold.results["n2"]["value"]

    def test_array_results_identical_across_cold_and_warm(
        self, tmp_path, backend
    ):
        ensemble = Ensemble("arrays")
        ensemble.add("a", ScenarioSpec("test.array", {"n": 8}, seed=3))
        store = RunStore(tmp_path)
        with injected(None):
            cold = run_ensemble(ensemble, store=store, backend=backend)
            warm = run_ensemble(ensemble, store=store, backend=backend)
        assert isinstance(warm.results["a"]["curve"], np.ndarray)
        assert warm.fingerprints() == cold.fingerprints()

    def test_node_failure_is_retried_and_result_unperturbed(
        self, tmp_path, backend
    ):
        plan = FaultPlan(failures={("ensemble.node", 0): 1})
        with injected(None):
            clean = run_ensemble(chain(3), backend=backend)
        faulty = run_ensemble(
            chain(3), store=RunStore(tmp_path), backend=backend, faults=plan
        )
        faulty.raise_if_failed()
        assert faulty.nodes_retried == 1
        assert faulty.reports["n0"].retried
        assert faulty.reports["n0"].attempts == 2
        assert faulty.fingerprints() == clean.fingerprints()


class TestSchedulerSemantics:
    def test_results_without_store_match_store_normal_form(self):
        with injected(None):
            bare = run_ensemble(chain(2))
        assert bare.store_stats is None
        assert bare.ok and bare.nodes_run == 2
        assert bare.results["n1"] == {"value": 8, "seed": 5}

    def test_branch_recomputes_only_post_branch_nodes(self, tmp_path):
        store = RunStore(tmp_path)
        base = Ensemble("base")
        base.add("prefix", ScenarioSpec("test.double", {"x": 1}, seed=5))
        base.branch(
            "prefix", "a",
            ScenarioSpec("test.double", {"x": 10, "upstream_node": "prefix"}),
        )
        with injected(None):
            first = run_ensemble(base, store=store)

            forked = Ensemble("forked")
            forked.add("prefix", ScenarioSpec("test.double", {"x": 1}, seed=5))
            forked.branch(
                "prefix", "a",
                ScenarioSpec(
                    "test.double", {"x": 10, "upstream_node": "prefix"}
                ),
            )
            forked.branch(
                "prefix", "b",
                ScenarioSpec(
                    "test.double", {"x": 99, "upstream_node": "prefix"}
                ),
            )
            second = run_ensemble(forked, store=store)
        assert first.ok and second.ok
        # Shared prefix and the unchanged branch come from the store;
        # only the genuinely new timeline executes.
        assert second.reports["prefix"].status == "cached"
        assert second.reports["a"].status == "cached"
        assert second.reports["b"].status == "run"
        assert second.nodes_run == 1

    def test_changed_prefix_invalidates_downstream(self, tmp_path):
        store = RunStore(tmp_path)
        with injected(None):
            run_ensemble(chain(3), store=store)
            moved = run_ensemble(chain(3, x=2), store=store)
        # Different root params shift every Merkle-folded downstream key.
        assert moved.nodes_run == 3 and moved.nodes_cached == 0

    def test_failed_node_marks_descendants_skipped(self):
        ensemble = Ensemble("doomed")
        ensemble.add("ok", ScenarioSpec("test.flaky"))
        ensemble.add("boom", ScenarioSpec("test.always_fails"))
        ensemble.branch("boom", "child", ScenarioSpec("test.flaky"))
        ensemble.branch("child", "grandchild", ScenarioSpec("test.flaky"))
        with injected(None):
            result = run_ensemble(ensemble)
        assert not result.ok
        assert result.reports["ok"].status == "run"
        assert result.reports["boom"].status == "failed"
        assert "broken on purpose" in result.reports["boom"].error
        for name in ("child", "grandchild"):
            assert result.reports[name].status == "skipped"
            assert result.reports[name].blocked_on == "boom"
        with pytest.raises(SimulationError, match="did not complete"):
            result.raise_if_failed()
        assert "boom" in result.render()

    def test_exhausted_retries_report_attempt_history(self):
        plan = FaultPlan(failures={("ensemble.node", 0): 9})
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        result = run_ensemble(
            chain(2), faults=plan, retry=policy
        )
        assert result.reports["n0"].status == "failed"
        assert result.reports["n0"].attempts == 3
        assert "attempt" in result.reports["n0"].error
        assert result.reports["n1"].status == "skipped"

    def test_run_keys_pin_whole_timeline(self):
        keys = compute_run_keys(chain(3))
        assert set(keys) == {"n0", "n1", "n2"}
        assert len(set(keys.values())) == 3
        again = compute_run_keys(chain(3))
        assert keys == again

    def test_node_context_is_set_inside_scheduled_runs(self, tmp_path):
        ensemble = Ensemble("ctx")
        ensemble.add("probe", ScenarioSpec("test.context_probe"))
        with injected(None):
            stored = run_ensemble(ensemble, store=RunStore(tmp_path))
            bare = run_ensemble(ensemble)
        assert stored.results["probe"] == {
            "has_context": True, "has_checkpoint_dir": True,
        }
        assert bare.results["probe"]["has_checkpoint_dir"] is False
        assert current_node_context() is None

    def test_ensemble_obs_counters(self, tmp_path):
        observer = obs.enable()
        try:
            store = RunStore(tmp_path)
            with injected(None):
                run_ensemble(chain(2), store=store)
                run_ensemble(chain(2), store=store)
            counters = observer.metrics.snapshot()["values"]["counters"]
        finally:
            obs.disable()
        assert counters["ensemble.nodes"] == 4
        assert counters["ensemble.nodes_run"] == 2
        assert counters["ensemble.nodes_cached"] == 2
        assert counters["ensemble.store.hits"] == 2
        assert counters["ensemble.store.misses"] == 2
        assert counters["ensemble.store.puts"] == 2
        assert "ensemble.nodes_failed" not in counters

    def test_demo_ensembles_complete_quickly(self, tmp_path):
        with injected(None):
            for builder in (
                composite_caching_ensemble,
                epidemic_branching_ensemble,
                response_sweep_ensemble,
            ):
                result = run_ensemble(
                    builder(seed=0, quick=True),
                    store=RunStore(tmp_path / builder.__name__),
                )
                result.raise_if_failed()
                assert result.nodes_run == result.nodes

    def test_epidemic_prefix_checkpoint_lands_in_store(self, tmp_path):
        store = RunStore(tmp_path)
        with injected(None):
            result = run_ensemble(
                epidemic_branching_ensemble(quick=True), store=store
            )
        result.raise_if_failed()
        checkpoints = list(Path(store.checkpoint_dir()).glob("*.ckpt"))
        keys = {report.key for report in result.reports.values()}
        assert checkpoints, "chain prefix should persist its checkpoint"
        assert all(p.stem in keys for p in checkpoints)


class TestEnsembleResultApi:
    def test_counts_and_render(self):
        result = EnsembleResult(name="x")
        assert result.ok and result.nodes == 0
        assert "0 node(s)" in result.render()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_cli(*args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=180,
    )


class TestEnsembleCli:
    def test_run_ls_gc_cycle(self, tmp_path):
        store = str(tmp_path / "store")
        cold = _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick", "--store", store
        )
        assert cold.returncode == 0, cold.stderr
        assert "run" in cold.stdout

        warm = _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick", "--store", store
        )
        assert warm.returncode == 0, warm.stderr
        assert "0 run" in warm.stdout and "cached" in warm.stdout

        listed = _run_cli("ensemble", "ls", "--store", store)
        assert listed.returncode == 0
        assert "response.surface" in listed.stdout

        swept = _run_cli("ensemble", "gc", "--store", store, "--max-bytes", "0")
        assert swept.returncode == 0 and "evicted" in swept.stdout
        empty = _run_cli("ensemble", "ls", "--store", store)
        assert "empty" in empty.stdout

    def test_store_env_var_default(self, tmp_path):
        store = str(tmp_path / "env-store")
        result = _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick",
            env_extra={"REPRO_ENSEMBLE_STORE": store},
        )
        assert result.returncode == 0, result.stderr
        assert os.path.isdir(os.path.join(store, "objects"))

    def test_help_epilog_lists_commands(self):
        result = _run_cli("--help")
        assert result.returncode == 0
        for command in ("tour", "obs-report", "ensemble"):
            assert command in result.stdout


def test_run_json_on_disk_is_canonical(tmp_path):
    """The persisted entry is valid JSON with the schema + canonical params."""
    store = RunStore(tmp_path)
    spec = ScenarioSpec("test.double", {"b": 2, "a": 1}, seed=4)
    key = run_key(scenario_qualname("test.double"), spec.params, spec.seed)
    store.put(key, {"v": 1}, scenario=spec.scenario, params=spec.params,
              seed=spec.seed)
    document = json.loads(
        (Path(store._entry_dir(key)) / "run.json").read_text()
    )
    assert document["schema"] == STORE_SCHEMA_VERSION
    assert document["key"] == key
    assert document["params"] == '{"a":1,"b":2}'
    assert document["seed"] == 4


class TestNestedBranching:
    def test_branch_of_branch_shares_each_prefix_level(self, tmp_path):
        """A 3-level timeline tree reuses every shared prefix level."""
        store = RunStore(tmp_path)

        def tree(with_grandchild=False):
            ensemble = Ensemble("tree")
            ensemble.add("root", ScenarioSpec("test.double", {"x": 1}, seed=5))
            ensemble.branch(
                "root", "child",
                ScenarioSpec("test.double", {"x": 10, "upstream_node": "root"}),
            )
            if with_grandchild:
                ensemble.branch(
                    "child", "grandchild",
                    ScenarioSpec(
                        "test.double", {"x": 100, "upstream_node": "child"}
                    ),
                )
            return ensemble

        with injected(None):
            first = run_ensemble(tree(), store=store)
            second = run_ensemble(tree(with_grandchild=True), store=store)
        assert first.ok and second.ok
        # Levels 1 and 2 are shared prefixes; only level 3 executes.
        assert second.reports["root"].status == "cached"
        assert second.reports["child"].status == "cached"
        assert second.reports["grandchild"].status == "run"
        assert second.nodes_run == 1
        # Each level folds its whole ancestry: values chain through.
        assert second.results["grandchild"]["value"] == \
            (100 + (10 + 1 * 2) * 2) * 2

    def test_sibling_branches_rekey_independently(self, tmp_path):
        """Perturbing one grandchild leaves its sibling's key untouched."""
        ensemble = Ensemble("tree")
        ensemble.add("root", ScenarioSpec("test.double", {"x": 1}, seed=5))
        ensemble.branch(
            "root", "child",
            ScenarioSpec("test.double", {"x": 10, "upstream_node": "root"}),
        )
        for leaf, x in (("ga", 100), ("gb", 200)):
            ensemble.branch(
                "child", leaf,
                ScenarioSpec("test.double", {"x": x, "upstream_node": "child"}),
            )
        before = compute_run_keys(ensemble)
        moved = ensemble.with_specs(
            {"ga": ScenarioSpec(
                "test.double", {"x": 101, "upstream_node": "child"}
            )}
        )
        after = compute_run_keys(moved)
        assert after["ga"] != before["ga"]
        assert after["gb"] == before["gb"]
        assert after["root"] == before["root"]


class TestStoreListing:
    def fill(self, tmp_path, count=5):
        store = RunStore(tmp_path)
        for i in range(count):
            spec = ScenarioSpec("test.double", {"x": i}, seed=i)
            key = run_key(
                scenario_qualname("test.double"), spec.params, spec.seed
            )
            store.put(key, {"v": i}, scenario=spec.scenario,
                      params=spec.params, seed=spec.seed)
        return store

    def test_ls_limit_truncates_before_metadata_reads(self, tmp_path):
        store = self.fill(tmp_path)
        limited = store.ls(limit=2)
        assert len(limited) == 2
        assert [e.key for e in limited] == [e.key for e in store.ls()[:2]]
        assert all(e.scenario == "test.double" for e in limited)

    def test_ls_without_meta_skips_run_json(self, tmp_path):
        store = self.fill(tmp_path, count=2)
        bare = store.ls(with_meta=False)
        assert all(e.scenario == "" and e.seed == 0 for e in bare)
        assert all(e.size_bytes > 0 for e in bare)

    def test_ls_negative_limit_rejected(self, tmp_path):
        store = self.fill(tmp_path, count=1)
        with pytest.raises(SimulationError):
            store.ls(limit=-1)

    def test_summary_matches_full_listing(self, tmp_path):
        store = self.fill(tmp_path)
        count, total = store.summary()
        entries = store.ls()
        assert count == len(entries) == 5
        assert total == sum(e.size_bytes for e in entries)
        assert store.total_bytes() == total

    def test_cli_ls_limit_and_summary(self, tmp_path):
        store = str(tmp_path / "store")
        _run_cli(
            "ensemble", "run", "--demo", "sweep", "--quick", "--store", store
        )
        limited = _run_cli("ensemble", "ls", "--store", store, "--limit", "2")
        assert limited.returncode == 0, limited.stderr
        body = [l for l in limited.stdout.splitlines() if l.startswith("  ")]
        assert len(body) == 3  # 2 entries + the "... more" footer
        assert "more; raise --limit" in body[-1]

        summary = _run_cli("ensemble", "ls", "--store", store, "--summary")
        assert summary.returncode == 0
        assert "5 run(s)" in summary.stdout
        assert "response.surface" not in summary.stdout
