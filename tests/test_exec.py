"""The unified execution substrate: behavior-preservation goldens + units.

The substrate port (mapreduce, MCDB, the sharded particle filter, the
ensemble scheduler) claims *zero behavior change*.  The goldens below
pin result fingerprints captured on the pre-refactor implementations;
if a port drifts — seeds, ordering, retry semantics, anything — a
fingerprint moves and the test names which subsystem.

The unit half covers the substrate surface itself: ordered fan-out,
retry accounting, isolated (run-to-terminal-state) dispatch, degrade-
mode splitting, the two seed-spawning conventions, and the canonical
key hashing shared by the mapreduce shuffle and partitioned tables.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.assimilation.particle_filter import (
    LinearGaussianSSM,
    particle_filter,
)
from repro.engine import Database, Schema
from repro.ensemble import result_fingerprint, run_ensemble
from repro.ensemble.scenarios import response_sweep_ensemble
from repro.exec import (
    IsolatedCall,
    Substrate,
    TaskOutcome,
    canonical_key_bytes,
    crc32_rng,
    partition_index,
    run_isolated,
    spawned_rng,
    split_failures,
)
from repro.faults.plan import FaultPlan, injected
from repro.faults.retry import NO_RETRY, RetryPolicy, TaskFailed
from repro.mapreduce import Cluster, MapReduceJob, sum_reducer
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
from repro.stats import make_rng


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    # CI jobs export backend/fault knobs globally; goldens must run on
    # the exact configuration they were captured on.
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


# -- golden workloads (module-level so every piece pickles) ------------------

def _wc_mapper(_, line):
    for word in line.split():
        yield word, 1


def _build_sbp_mcdb():
    db = Database()
    db.create_table("patients", Schema.of(pid=int, gender=str))
    for i in range(30):
        db.table("patients").insert(
            {"pid": i, "gender": "f" if i % 2 else "m"}
        )
    db.create_table("sbp_param", Schema.of(mean=float, std=float))
    db.table("sbp_param").insert({"mean": 120.0, "std": 10.0})
    mc = MonteCarloDatabase(db, seed=42)
    mc.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters="SELECT mean, std FROM sbp_param",
            select={
                "pid": "outer.pid",
                "gender": "outer.gender",
                "sbp": "vg.value",
            },
        )
    )
    return mc


def _avg_sbp(inst):
    return inst.sql("SELECT AVG(sbp) AS m FROM sbp_data")[0]["m"]


def _bundle_avg(bundles, _db):
    return bundles["sbp_data"].aggregate_avg("sbp")


#: Fingerprints captured on the pre-substrate implementations of each
#: subsystem (identical across repeated runs).  These are the oracle
#: for "the port changed nothing".
GOLDEN = {
    "mapreduce": (
        "b00b1f0041bc508a526fa13feeee7d087242abeed9ac84f8f745ed0aead928ab"
    ),
    "mcdb_naive": (
        "dd46196247f220cd18f0cb4fe8d5c633b8c54c3b3ed6c50af973f8c54be70856"
    ),
    "mcdb_bundled": (
        "a0d2593243f2070b4032de4a3d17cf6f07677fd87ba19a24761eff24725ec2d4"
    ),
    "particle_filter": (
        "f645af67d371fbbbca5b9c0ddab0c2440df3f4e34e3838fc148a14a70c3392e6"
    ),
    "ensemble": (
        "cb09793c0ae02283c1e4859de39c379ca667b8599b815f33961b1ce31a9f0d57"
    ),
}


class TestPortGoldens:
    """Every ported subsystem reproduces its pre-refactor fingerprint."""

    def test_mapreduce(self):
        job = MapReduceJob("wc", _wc_mapper, sum_reducer, num_reducers=3)
        inputs = [(None, f"alpha beta w{i % 5} w{i % 3}") for i in range(24)]
        with injected(None):
            out = Cluster(num_workers=3).run(job, inputs)
        fp = result_fingerprint([list(pair) for pair in out])
        assert fp == GOLDEN["mapreduce"]

    def test_mcdb_naive(self):
        mc = _build_sbp_mcdb()
        with injected(None):
            dist = mc.run_naive(_avg_sbp, n_mc=24, backend="serial")
        assert result_fingerprint(dist.samples) == GOLDEN["mcdb_naive"]

    def test_mcdb_bundled(self):
        mc = _build_sbp_mcdb()
        with injected(None):
            dist = mc.run_bundled(_bundle_avg, n_mc=16, backend="serial")
        assert result_fingerprint(dist.samples) == GOLDEN["mcdb_bundled"]

    def test_particle_filter(self):
        ssm = LinearGaussianSSM()
        _, y = ssm.simulate(25, make_rng(3))
        with injected(None):
            result = particle_filter(
                ssm.to_state_space_model(),
                y,
                60,
                backend="serial",
                seed=11,
                n_shards=4,
            )
        fp = result_fingerprint(
            {
                "filtered_means": result.filtered_means,
                "log_likelihood": result.log_likelihood,
                "ess": result.effective_sample_sizes,
            }
        )
        assert fp == GOLDEN["particle_filter"]

    def test_ensemble(self):
        with injected(None):
            result = run_ensemble(
                response_sweep_ensemble(seed=5, quick=True), backend="serial"
            )
        fp = result_fingerprint(dict(sorted(result.fingerprints().items())))
        assert fp == GOLDEN["ensemble"]

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_goldens_backend_invariant(self, backend):
        # Spot-check one golden per fan-out style off the serial path.
        job = MapReduceJob("wc", _wc_mapper, sum_reducer, num_reducers=3)
        inputs = [(None, f"alpha beta w{i % 5} w{i % 3}") for i in range(24)]
        with injected(None):
            out = Cluster(num_workers=3, backend=backend).run(job, inputs)
        fp = result_fingerprint([list(pair) for pair in out])
        assert fp == GOLDEN["mapreduce"]


# -- substrate units ---------------------------------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class TestSubstrate:
    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    def test_submit_preserves_item_order(self, backend):
        sub = Substrate(backend)
        items = list(range(23))
        assert sub.submit(_square, items, scope="t.sq") == [
            i * i for i in items
        ]

    def test_backend_instance_passthrough(self):
        sub = Substrate("serial")
        assert Substrate(sub.backend).backend is sub.backend

    def test_submit_with_stats_counts_injected_retries(self):
        plan = FaultPlan(failures={("t.flaky", 2): 1})
        sub = Substrate("serial")
        results, stats = sub.submit_with_stats(
            _square,
            range(5),
            scope="t.flaky",
            faults=plan,
            retry=RetryPolicy(max_attempts=2),
        )
        assert results == [0, 1, 4, 9, 16]
        assert stats.attempts == 6
        assert stats.tasks_retried == 1
        assert stats.injected == 1
        assert stats.tasks_failed == 0

    def test_submit_collect_marks_terminal_failures(self):
        plan = FaultPlan(failures={("t.dead", 1): 3})
        sub = Substrate("serial")
        outputs = sub.submit(
            _square,
            range(3),
            scope="t.dead",
            faults=plan,
            retry=RetryPolicy(max_attempts=2),
            on_error="collect",
        )
        survivors, failures = split_failures(outputs)
        assert survivors == [0, 4]
        assert [f.index for f in failures] == [1]
        assert all(isinstance(f, TaskFailed) for f in failures)

    def test_run_isolated_ok_and_failed(self):
        ok = run_isolated(
            IsolatedCall(_square, 7, "t.iso", 0, NO_RETRY, None)
        )
        assert isinstance(ok, TaskOutcome)
        assert (ok.status, ok.value) == ("ok", 49)
        assert ok.stats.attempts == 1
        dead = run_isolated(
            IsolatedCall(_boom, 7, "t.iso", 1, NO_RETRY, None)
        )
        assert dead.status == "failed"
        assert isinstance(dead.value, TaskFailed)
        assert dead.value.index == 1
        assert dead.stats.tasks_failed == 1

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_dispatch_isolated_never_raises(self, backend):
        calls = [
            IsolatedCall(
                _boom if i == 1 else _square, i, "t.iso", i, NO_RETRY, None
            )
            for i in range(4)
        ]
        outcomes = Substrate(backend).dispatch_isolated(
            calls, scope="t.dispatch"
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok", "ok"]
        assert [o.value for o in outcomes if o.status == "ok"] == [0, 4, 9]

    def test_spawned_rng_matches_seedsequence_convention(self):
        expected = np.random.default_rng(
            np.random.SeedSequence(entropy=123, spawn_key=(5,))
        )
        assert spawned_rng(123, 5).random(4).tolist() == expected.random(
            4
        ).tolist()

    def test_crc32_rng_matches_named_stream_convention(self):
        expected = np.random.default_rng(
            np.random.SeedSequence(
                entropy=9, spawn_key=(zlib.crc32(b"sbp_data"),)
            )
        )
        assert crc32_rng(9, "sbp_data").random(4).tolist() == expected.random(
            4
        ).tolist()


class TestCanonicalKeys:
    def test_equality_equal_numerics_share_bytes(self):
        assert canonical_key_bytes(1) == b"1"
        assert canonical_key_bytes(1.0) == b"1"
        assert canonical_key_bytes(True) == b"1"
        assert canonical_key_bytes(np.int64(1)) == b"1"
        assert canonical_key_bytes(0.0) == canonical_key_bytes(False)
        assert canonical_key_bytes(1.5) == b"1.5"
        assert canonical_key_bytes(np.float64(1.5)) == b"1.5"

    def test_strings_keep_their_repr(self):
        # Pre-existing string-keyed assignments must not move.
        assert canonical_key_bytes("a") == repr("a").encode()
        assert partition_index("a", 7) == zlib.crc32(b"'a'") % 7

    def test_tuples_canonicalize_elementwise(self):
        assert canonical_key_bytes((1.0, "x")) == canonical_key_bytes(
            (True, "x")
        )
        assert canonical_key_bytes((1, 2)) != canonical_key_bytes((1, 2.5))

    def test_partition_index_is_equality_invariant(self):
        for n in (2, 3, 5, 7, 16):
            assert (
                partition_index(1, n)
                == partition_index(1.0, n)
                == partition_index(True, n)
            )
            assert partition_index(0, n) == partition_index(0.0, n)

    def test_partition_index_range(self):
        for key in (0, 1, 17.5, "abc", None.__class__, (1, "x")):
            assert 0 <= partition_index(key, 5) < 5
