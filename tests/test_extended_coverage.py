"""Second-round coverage: paths the first test wave left untouched."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assimilation import LinearGaussianSSM, particle_filter
from repro.engine import Database, Schema, col
from repro.epidemics import (
    DiseaseParameters,
    HealthState,
    IndemicsEngine,
    SEIRProcess,
    build_contact_network,
    generate_population,
    run_with_policy,
)
from repro.errors import SimulationError
from repro.metamodel import GaussianProcessMetamodel
from repro.stats import make_rng


class TestFearDynamics:
    """The paper's 'behavioral status (e.g., fear level)' transitions."""

    @pytest.fixture(scope="class")
    def network(self):
        population = generate_population(80, make_rng(0))
        return build_contact_network(population, make_rng(1))

    def test_fear_grows_near_infection(self, network):
        params = DiseaseParameters(fear_growth=0.1)
        process = SEIRProcess(network, params, make_rng(2))
        process.seed_infections(list(network.nodes)[:10])
        for _ in range(5):
            process.step_day()
        fears = [h.fear for h in process.health.values()]
        assert max(fears) > 0.0

    def test_fear_capped_at_one(self, network):
        params = DiseaseParameters(fear_growth=1.0)
        process = SEIRProcess(network, params, make_rng(3))
        process.seed_infections(list(network.nodes)[:20])
        for _ in range(10):
            process.step_day()
        assert max(h.fear for h in process.health.values()) <= 1.0

    def test_fear_reduces_attack_rate(self, network):
        rates = {}
        for growth in (0.0, 0.5):
            params = DiseaseParameters(
                fear_growth=growth, fear_contact_reduction=0.9
            )
            process = SEIRProcess(network, params, make_rng(4))
            process.seed_infections(list(network.nodes)[:5])
            for _ in range(40):
                process.step_day()
            rates[growth] = process.attack_rate()
        assert rates[0.5] <= rates[0.0]


class TestEconomicDamage:
    def test_damage_accumulates(self):
        population = generate_population(100, make_rng(5))
        engine = IndemicsEngine(population, DiseaseParameters(), seed=6)
        engine.seed_infections(5)
        run_with_policy(engine, None, days=20)
        assert engine.person_days_infected() > 0
        damage = engine.economic_damage(cost_per_sick_day=2.0)
        assert damage == pytest.approx(2.0 * engine.person_days_infected())

    def test_vaccination_cost_counted(self):
        population = generate_population(100, make_rng(7))
        engine = IndemicsEngine(population, DiseaseParameters(), seed=8)
        engine.seed_infections(3)
        pids = engine.select_pids("SELECT pid FROM person")
        engine.vaccinate(pids)
        engine.advance(1)
        sick_only = engine.economic_damage(1.0, 0.0)
        with_vax = engine.economic_damage(1.0, 0.5)
        assert with_vax == pytest.approx(sick_only + 0.5 * len(pids))

    def test_negative_cost_rejected(self):
        population = generate_population(30, make_rng(9))
        engine = IndemicsEngine(population, DiseaseParameters(), seed=10)
        with pytest.raises(SimulationError):
            engine.economic_damage(cost_per_sick_day=-1.0)


class TestGPFixedTheta:
    def test_fixed_theta_skips_optimization(self):
        rng = make_rng(0)
        x = rng.uniform(0, 1, size=(12, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        theta = np.array([5.0, 5.0])
        gp = GaussianProcessMetamodel(theta=theta).fit(
            x, y, optimize_theta=False
        )
        np.testing.assert_array_equal(gp.theta, theta)
        # Still interpolates (any positive theta does, via Eq. 6).
        np.testing.assert_allclose(gp.predict(x), y, atol=1e-3)


class TestParticleFilterSummarizer:
    def test_custom_summarizer(self):
        ssm = LinearGaussianSSM()
        _, y = ssm.simulate(10, make_rng(0))
        result = particle_filter(
            ssm.to_state_space_model(),
            y,
            200,
            make_rng(1),
            summarizer=lambda particles: particles**2,
        )
        # Squared-state means are nonnegative by construction.
        assert np.all(result.filtered_means >= 0.0)


class TestEngineEdgeCases:
    def test_left_join_against_empty_right(self):
        db = Database()
        db.create_table("a", Schema.of(k=int))
        db.create_table("b", Schema.of(k=int, v=int))
        db.table("a").insert({"k": 1})
        rows = db.sql(
            "SELECT a.k, b.v FROM a LEFT JOIN b ON a.k = b.k"
        )
        assert rows == [{"k": 1, "v": None}]

    def test_distinct_with_nulls(self):
        db = Database()
        db.create_table("t", Schema.of(x=int))
        db.table("t").insert({"x": None})
        db.table("t").insert({"x": None})
        db.table("t").insert({"x": 1})
        rows = db.sql("SELECT DISTINCT x FROM t")
        assert len(rows) == 2

    def test_order_by_mixed_directions_via_plan(self):
        from repro.engine import plan as lp
        from repro.engine.operators import Executor

        db = Database()
        db.create_table("t", Schema.of(a=int, b=int))
        for a in (1, 2):
            for b in (1, 2):
                db.table("t").insert({"a": a, "b": b})
        node = lp.OrderBy(
            lp.Scan("t"),
            (col("a"), col("b")),
            (False, True),  # a ascending, b descending
        )
        rows = Executor(db).execute(node)
        assert [(r["a"], r["b"]) for r in rows] == [
            (1, 2), (1, 1), (2, 2), (2, 1),
        ]

    def test_group_by_expression(self):
        db = Database()
        db.create_table("t", Schema.of(x=int))
        for x in range(10):
            db.table("t").insert({"x": x})
        rows = db.sql(
            "SELECT x % 2 AS parity, COUNT(*) AS n FROM t "
            "GROUP BY x % 2 ORDER BY parity"
        )
        assert rows == [
            {"parity": 0, "n": 5},
            {"parity": 1, "n": 5},
        ]

    def test_having_on_aggregate_alias(self):
        db = Database()
        db.create_table("t", Schema.of(g=int, v=float))
        for g in (1, 2):
            for i in range(g * 2):
                db.table("t").insert({"g": g, "v": float(i)})
        rows = db.sql(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > 2"
        )
        assert rows == [{"g": 2, "n": 4}]


class TestBundleEdgeCases:
    def test_min_max_all_filtered_out_is_nan(self):
        from repro.mcdb import BundledTable

        rows = [{"pid": 0, "v": np.array([1.0, 2.0])}]
        bundle = BundledTable("b", rows, 2)
        empty = bundle.filter(lambda row: row["v"] > 10.0)
        assert len(empty) == 0
        mins = BundledTable("b", rows, 2).filter(
            lambda row: row["v"] > 1.5
        ).aggregate_min("v")
        assert np.isnan(mins[0]) and mins[1] == 2.0

    def test_scalar_columns_broadcast(self):
        from repro.mcdb import BundledTable

        rows = [{"pid": 7, "v": np.array([1.0, 3.0]), "w": 2.0}]
        bundle = BundledTable("b", rows, 2)
        out = bundle.derive("vw", lambda row: row["v"] * row["w"])
        np.testing.assert_allclose(out.aggregate_sum("vw"), [2.0, 6.0])
