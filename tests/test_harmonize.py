"""Tests for the harmonization stack (time series, mapping, alignment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.harmonize import (
    AlignmentClass,
    FieldMapping,
    NaturalCubicSpline,
    SchemaMapping,
    TimeAligner,
    TimeSeries,
    aggregate_series,
    classify_alignment,
    convert_units,
    interpolate_on_cluster,
    interpolate_series,
    linear_interpolate,
)
from repro.mapreduce import Cluster
from repro.stats import make_rng


class TestTimeSeries:
    def test_regular_construction(self):
        ts = TimeSeries.regular(0.0, 1.0, {"a": [1.0, 2.0, 3.0]})
        np.testing.assert_array_equal(ts.times, [0.0, 1.0, 2.0])
        assert ts.median_spacing == 1.0

    def test_validation(self):
        with pytest.raises(AlignmentError):
            TimeSeries(times=np.array([0.0, 0.0]), channels={"a": np.zeros(2)})
        with pytest.raises(AlignmentError):
            TimeSeries(times=np.array([0.0, 1.0]), channels={"a": np.zeros(3)})
        with pytest.raises(AlignmentError):
            TimeSeries(times=np.array([0.0, 1.0]), channels={})

    def test_records_roundtrip(self):
        ts = TimeSeries.regular(0.0, 0.5, {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        back = TimeSeries.from_records(ts.to_records())
        np.testing.assert_array_equal(back.times, ts.times)
        np.testing.assert_array_equal(back.channel("b"), ts.channel("b"))

    def test_slice_time(self):
        ts = TimeSeries.regular(0.0, 1.0, {"a": list(range(10))})
        sliced = ts.slice_time(2.0, 5.0)
        assert len(sliced) == 4

    def test_unknown_channel(self):
        ts = TimeSeries.regular(0.0, 1.0, {"a": [1.0, 2.0]})
        with pytest.raises(AlignmentError):
            ts.channel("zz")


class TestSchemaMapping:
    def test_rename(self):
        ts = TimeSeries.regular(0.0, 1.0, {"sick": [1.0, 2.0]})
        mapped = SchemaMapping.renames({"infected": "sick"}).apply(ts)
        np.testing.assert_array_equal(mapped.channel("infected"), [1.0, 2.0])

    def test_computed_field(self):
        ts = TimeSeries.regular(0.0, 1.0, {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        mapping = SchemaMapping(
            [FieldMapping("total", ("a", "b"), transform=lambda a, b: a + b)]
        )
        np.testing.assert_array_equal(mapping.apply(ts).channel("total"), [4.0, 6.0])

    def test_unit_conversion(self):
        ts = TimeSeries.regular(0.0, 1.0, {"w": [1.0, 2.0]})
        mapping = SchemaMapping(
            [FieldMapping("w_lb", ("w",), source_unit="kg", target_unit="lb")]
        )
        out = mapping.apply(ts)
        assert out.channel("w_lb")[0] == pytest.approx(2.2046, abs=1e-3)
        assert out.units["w_lb"] == "lb"

    def test_affine_temperature_conversion(self):
        c = np.array([0.0, 100.0])
        f = convert_units(c, "celsius", "fahrenheit")
        np.testing.assert_allclose(f, [32.0, 212.0])
        np.testing.assert_allclose(convert_units(f, "fahrenheit", "celsius"), c)

    def test_unknown_conversion(self):
        with pytest.raises(AlignmentError):
            convert_units(np.zeros(1), "kg", "mi")

    def test_mismatch_detection(self):
        mapping = SchemaMapping.renames({"x": "a", "y": "b"})
        report = mapping.detect_mismatches(
            source_channels=["a"], target_channels=["x", "y", "z"]
        )
        assert not report.ok
        assert report.missing_sources == ("b",)
        assert report.unmapped_targets == ("z",)

    def test_clean_mapping_ok(self):
        mapping = SchemaMapping.identity(["a"])
        report = mapping.detect_mismatches(["a"], ["a"])
        assert report.ok

    def test_duplicate_targets_rejected(self):
        with pytest.raises(AlignmentError):
            SchemaMapping(
                [FieldMapping("x", ("a",)), FieldMapping("x", ("b",))]
            )


class TestClassification:
    def test_classes(self):
        assert classify_alignment(1.0, 7.0) is AlignmentClass.AGGREGATION
        assert classify_alignment(7.0, 1.0) is AlignmentClass.INTERPOLATION
        assert classify_alignment(1.0, 1.0) is AlignmentClass.IDENTITY

    def test_validation(self):
        with pytest.raises(AlignmentError):
            classify_alignment(0.0, 1.0)


class TestAggregation:
    def test_weekly_mean(self):
        daily = TimeSeries.regular(0.0, 1.0, {"v": list(range(14))})
        weekly = aggregate_series(daily, [0.0, 7.0], method="mean")
        np.testing.assert_allclose(weekly.channel("v"), [3.0, 10.0])

    def test_sum_and_last(self):
        daily = TimeSeries.regular(0.0, 1.0, {"v": [1.0, 2.0, 3.0, 4.0]})
        total = aggregate_series(daily, [0.0, 2.0], method="sum")
        np.testing.assert_allclose(total.channel("v"), [3.0, 7.0])
        last = aggregate_series(daily, [0.0, 2.0], method="last")
        np.testing.assert_allclose(last.channel("v"), [2.0, 4.0])

    def test_empty_window_is_nan(self):
        ts = TimeSeries(times=np.array([5.0, 6.0]), channels={"v": np.array([1.0, 2.0])})
        out = aggregate_series(ts, [0.0, 2.0, 5.0])
        assert np.isnan(out.channel("v")[0])

    def test_unknown_method(self):
        ts = TimeSeries.regular(0.0, 1.0, {"v": [1.0, 2.0]})
        with pytest.raises(AlignmentError):
            aggregate_series(ts, [0.0], method="mode")


class TestSpline:
    def test_matches_scipy_natural(self):
        from scipy.interpolate import CubicSpline

        t = np.linspace(0, 10, 20)
        y = np.sin(t) + 0.3 * t
        ours = NaturalCubicSpline.fit(t, y)
        ref = CubicSpline(t, y, bc_type="natural")
        query = np.linspace(0, 10, 77)
        np.testing.assert_allclose(ours.evaluate(query), ref(query), atol=1e-10)

    def test_interpolates_knots_exactly(self):
        t = np.linspace(0, 5, 9)
        y = np.cos(t)
        spline = NaturalCubicSpline.fit(t, y)
        np.testing.assert_allclose(spline.evaluate(t), y, atol=1e-12)

    def test_out_of_range(self):
        spline = NaturalCubicSpline.fit([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        with pytest.raises(AlignmentError):
            spline.evaluate([3.0])

    def test_linear_interpolate(self):
        out = linear_interpolate([0.0, 1.0], [0.0, 10.0], [0.25])
        assert out[0] == pytest.approx(2.5)

    def test_fit_with_external_constants(self):
        from repro.harmonize import SGDConfig, dsgd_solve
        from repro.stats import spline_system

        t = np.linspace(0, 10, 30)
        y = np.sin(t)
        system = spline_system(t, y)
        result = dsgd_solve(
            system,
            make_rng(0),
            SGDConfig(epochs=300, step_exponent=0.6, step_scale=None),
        )
        approx = NaturalCubicSpline.fit(t, y, sigma_interior=result.x)
        exact = NaturalCubicSpline.fit(t, y)
        query = np.linspace(0, 10, 50)
        np.testing.assert_allclose(
            approx.evaluate(query), exact.evaluate(query), atol=0.05
        )


class TestClusterInterpolation:
    def test_matches_sequential_cubic(self):
        t = np.linspace(0, 20, 40)
        series = TimeSeries(times=t, channels={"v": np.sin(t / 2.0)})
        targets = np.linspace(0.0, 20.0, 161)
        sequential = interpolate_series(series, targets, method="cubic")
        distributed = interpolate_on_cluster(Cluster(5), series, targets)
        np.testing.assert_allclose(
            distributed.channel("v"), sequential.channel("v"), atol=1e-12
        )

    def test_linear_mode(self):
        t = np.linspace(0, 4, 5)
        series = TimeSeries(times=t, channels={"v": t * 2.0})
        out = interpolate_on_cluster(
            Cluster(2), series, [0.5, 1.5], method="linear"
        )
        np.testing.assert_allclose(out.channel("v"), [1.0, 3.0])

    def test_target_out_of_range(self):
        series = TimeSeries.regular(0.0, 1.0, {"v": [0.0, 1.0, 2.0]})
        with pytest.raises(AlignmentError):
            interpolate_on_cluster(Cluster(1), series, [5.0])


class TestTimeAligner:
    def test_picks_aggregation(self):
        daily = TimeSeries.regular(0.0, 1.0, {"v": list(range(28))})
        weekly_times = [0.0, 7.0, 14.0, 21.0]
        out = TimeAligner().align(daily, weekly_times)
        assert len(out) == 4
        assert out.channel("v")[0] == pytest.approx(3.0)

    def test_picks_interpolation(self):
        weekly = TimeSeries.regular(0.0, 7.0, {"v": [0.0, 7.0, 14.0, 21.0]})
        daily_times = np.arange(0.0, 21.1, 1.0)
        out = TimeAligner(interpolation_method="cubic").align(weekly, daily_times)
        # Data is linear, so interpolation should be near-exact.
        np.testing.assert_allclose(out.channel("v"), daily_times, atol=1e-9)

    def test_cluster_backed_aligner(self):
        weekly = TimeSeries.regular(0.0, 7.0, {"v": [0.0, 7.0, 14.0]})
        aligner = TimeAligner(cluster=Cluster(3))
        out = aligner.align(weekly, np.arange(0.0, 14.1, 1.0))
        np.testing.assert_allclose(out.channel("v"), np.arange(0.0, 14.1, 1.0), atol=1e-9)

    def test_needs_two_targets(self):
        ts = TimeSeries.regular(0.0, 1.0, {"v": [1.0, 2.0]})
        with pytest.raises(AlignmentError):
            TimeAligner().align(ts, [0.0])


class TestUnitConversionProperties:
    @pytest.mark.parametrize(
        "a,b",
        [("kg", "lb"), ("km", "mi"), ("m", "ft"),
         ("per_day", "per_week"), ("count", "thousands")],
    )
    def test_conversions_invert(self, a, b):
        values = np.array([0.0, 1.0, 123.456])
        roundtrip = convert_units(convert_units(values, a, b), b, a)
        np.testing.assert_allclose(roundtrip, values, rtol=1e-9, atol=1e-12)

    def test_compile_returns_working_function(self):
        mapping = SchemaMapping.renames({"y": "x"})
        fn = mapping.compile()
        ts = TimeSeries.regular(0.0, 1.0, {"x": [1.0, 2.0]})
        np.testing.assert_array_equal(fn(ts).channel("y"), [1.0, 2.0])
