"""Smoke test for the ``python -m repro`` guided tour."""

from __future__ import annotations

import subprocess
import sys


def test_tour_runs_and_mentions_every_layer():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout
    for marker in ("[mcdb]", "[indemics]", "[assimilate]", "[caching]"):
        assert marker in out
    assert "alpha*" in out
