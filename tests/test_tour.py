"""Smoke tests for the ``python -m repro`` guided tour."""

from __future__ import annotations

import subprocess
import sys

from repro.__main__ import tour
from repro.errors import SimulationError


def test_tour_runs_and_mentions_every_layer():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout
    for marker in (
        "[mcdb]", "[indemics]", "[assimilate]", "[caching]", "[ensemble]",
        "[serve]",
    ):
        assert marker in out
    assert "alpha*" in out
    assert "byte-identical: True" in out


def test_tour_exits_nonzero_when_a_stage_raises(capsys):
    def broken():
        raise SimulationError("stage is broken")

    code = tour(stages=(("good", lambda: print("[good] fine")),
                        ("bad", broken)))
    captured = capsys.readouterr()
    assert code == 1
    assert "[good] fine" in captured.out
    assert "stage is broken" in captured.err
    assert "tour failed in stage(s): bad" in captured.err


def test_tour_exit_code_zero_when_all_stages_pass(capsys):
    assert tour(stages=(("ok", lambda: None),)) == 0
    assert "failed" not in capsys.readouterr().err
