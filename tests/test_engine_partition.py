"""Partitioned tables: byte-identity at every partition count.

Slice 1 of the sharded data plane answers to the same oracle as every
other executor in this engine: registering a partitioning may change
*how* a plan runs (one morsel stream per partition, fanned out through
the ``repro.exec`` substrate), but never *what* it produces — values,
``None`` placement, row order, ``ExecutionMetrics``, and the obs
``values`` snapshot must be byte-identical to the unpartitioned plan at
every partition count, on both schemes, on all three backends.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.engine import (
    Database,
    ExecutionMetrics,
    PARTITION_SCOPE,
    PartitionedMorselExecutor,
    PartitionedTable,
    Schema,
    parse_select,
)
from repro.engine.morsel import _SCAN_CACHE
from repro.engine.table import Table
from repro.ensemble.store import result_fingerprint
from repro.errors import CatalogError
from repro.faults.plan import FaultPlan, injected

from tests.test_engine_columnar import CORPUS, nullful_db  # noqa: F401

BACKENDS = ("serial", "thread", "process")

#: person has 60 rows; counts that are trivial (1), split evenly-ish
#: (2), and guarantee ragged/empty partitions (7).
PARTITION_COUNTS = (1, 2, 7)

SCHEMES = ("hash", "range")


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    # Neutralize the CI jobs' global knobs: this file sets execution
    # modes, backends, and fault plans explicitly per test.
    monkeypatch.delenv("REPRO_ENGINE_MORSEL", raising=False)
    monkeypatch.delenv("REPRO_ENGINE_EXECUTION", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    _SCAN_CACHE.clear()


def _corpus_results(db):
    return [db.sql(sql) for sql in CORPUS]


class TestPartitionedIdentity:
    """The partitioned corpus fingerprint equals the unpartitioned one."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_corpus_fingerprint_hash(
        self, nullful_db, n, backend, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        baseline = result_fingerprint(
            [nullful_db.sql(sql, execution="row") for sql in CORPUS]
        )
        unpartitioned = result_fingerprint(_corpus_results(nullful_db))
        nullful_db.partition_table("person", "region", n, scheme="hash")
        try:
            partitioned = result_fingerprint(_corpus_results(nullful_db))
        finally:
            nullful_db.unpartition_table("person")
        assert unpartitioned == baseline
        assert partitioned == baseline

    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    @pytest.mark.parametrize("key", ("pid", "age", "income", "region"))
    def test_corpus_fingerprint_range_any_key(self, nullful_db, n, key):
        # Range partitioning on every column type, including the NULL-
        # rich ones (NULL keys land on partition 0) and the group key
        # itself, with a small morsel size to force multi-morsel fans.
        baseline = result_fingerprint(
            [nullful_db.sql(sql, execution="row") for sql in CORPUS]
        )
        nullful_db.partition_table("person", key, n, scheme="range")
        try:
            partitioned = result_fingerprint(
                [nullful_db.sql(sql, morsel_size=7) for sql in CORPUS]
            )
        finally:
            nullful_db.unpartition_table("person")
        assert partitioned == baseline

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_corpus_obs_values(self, nullful_db, scheme, backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        snapshots = {}
        for label in ("row", "partitioned"):
            if label == "partitioned":
                nullful_db.partition_table("person", "region", 3, scheme)
            observer = obs.enable()
            observer.reset()
            try:
                for sql in CORPUS:
                    if label == "row":
                        nullful_db.sql(sql, execution="row")
                    else:
                        nullful_db.sql(sql, morsel_size=7)
                snapshots[label] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
                nullful_db.unpartition_table("person")
        assert snapshots["partitioned"] == snapshots["row"]

    @pytest.mark.parametrize("n", PARTITION_COUNTS)
    def test_metrics_identical(self, nullful_db, n):
        sql = (
            "SELECT region, count(*) AS c, sum(income) AS s "
            "FROM person WHERE age > 10 GROUP BY region"
        )
        counts = {}
        for label in ("row", "partitioned"):
            if label == "partitioned":
                nullful_db.partition_table("person", "pid", n)
            nullful_db.metrics.reset()
            try:
                nullful_db.sql(
                    sql,
                    **(
                        {"execution": "row"}
                        if label == "row"
                        else {"morsel_size": 7}
                    ),
                )
            finally:
                nullful_db.unpartition_table("person")
            m = nullful_db.metrics
            counts[label] = (m.rows_scanned, m.rows_output)
        assert counts["partitioned"] == counts["row"]
        assert counts["row"][0] == 60

    def test_partitioning_alone_enables_morsel_execution(self, nullful_db):
        # No morsel_size, no env knob: registering a partitioning is
        # enough to route eligible plans through the partitioned
        # executor, identically.
        baseline = nullful_db.sql(
            "SELECT pid FROM person WHERE age > 30", execution="row"
        )
        nullful_db.partition_table("person", "region", 3)
        try:
            rows = nullful_db.sql("SELECT pid FROM person WHERE age > 30")
        finally:
            nullful_db.unpartition_table("person")
        assert rows == baseline

    def test_fault_injection_recovers_identically(self, nullful_db):
        # Kill the first attempt of the first partition morsel: the
        # substrate's default retry policy recovers and the result is
        # still byte-identical.
        baseline = nullful_db.sql(
            "SELECT region, count(*) AS n FROM person GROUP BY region",
            execution="row",
        )
        nullful_db.partition_table("person", "pid", 3)
        plan = FaultPlan(failures={(PARTITION_SCOPE, 0): 1})
        try:
            with injected(plan):
                rows = nullful_db.sql(
                    "SELECT region, count(*) AS n FROM person "
                    "GROUP BY region",
                    morsel_size=7,
                )
        finally:
            nullful_db.unpartition_table("person")
        assert rows == baseline


class TestPartitionedTable:
    def _table(self):
        t = Table("t", Schema.of(k=int, label=str))
        for i in range(20):
            t.insert({"k": i % 6 if i % 4 else None, "label": f"r{i}"})
        return t

    def test_validation(self):
        t = self._table()
        with pytest.raises(CatalogError):
            PartitionedTable(t, "k", 0)
        with pytest.raises(CatalogError):
            PartitionedTable(t, "k", 2, scheme="round_robin")
        with pytest.raises(CatalogError):
            PartitionedTable(t, "missing", 2)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_positions_partition_every_row_exactly_once(self, scheme):
        t = self._table()
        parted = PartitionedTable(t, "k", 3, scheme)
        positions = parted.positions()
        merged = np.sort(np.concatenate(positions))
        assert merged.tolist() == list(range(len(t)))
        assert sum(parted.partition_sizes()) == len(t)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_null_keys_land_on_partition_zero(self, scheme):
        t = self._table()
        parted = PartitionedTable(t, "k", 4, scheme)
        null_rows = [
            i for i, v in enumerate(t.column_values("k")) if v is None
        ]
        assert null_rows  # the fixture really has NULL keys
        assert set(null_rows) <= set(parted.positions()[0].tolist())

    def test_hash_assignment_is_spelling_invariant(self):
        t = Table("t", Schema.of(k=float))
        for v in [1.0, 2.0, 0.0, 5.5]:
            t.insert({"k": v})
        ti = Table("ti", Schema.of(k=int))
        for v in [1, 2, 0]:
            ti.insert({"k": v})
        by_float = PartitionedTable(t, "k", 5)
        by_int = PartitionedTable(ti, "k", 5)
        float_assign = {
            v: p
            for p, pos in enumerate(by_float.positions())
            for v in np.asarray(t.column_values("k"))[pos]
        }
        int_assign = {
            v: p
            for p, pos in enumerate(by_int.positions())
            for v in np.asarray(ti.column_values("k"))[pos]
        }
        for v in (1, 2, 0):
            assert float_assign[float(v)] == int_assign[v]

    def test_range_boundaries_are_sorted_and_deterministic(self):
        t = self._table()
        a = PartitionedTable(t, "k", 3, "range")
        b = PartitionedTable(t, "k", 3, "range")
        assert a._boundaries == sorted(a._boundaries)
        assert a._boundaries == b._boundaries
        for p, pos in enumerate(a.positions()):
            assert pos.tolist() == b.positions()[p].tolist()

    def test_range_preserves_key_order_across_partitions(self):
        t = Table("t", Schema.of(k=int))
        for v in [9, 1, 7, 3, 5, 2, 8, 4, 6, 0]:
            t.insert({"k": v})
        parted = PartitionedTable(t, "k", 3, "range")
        values = t.column_values("k")
        per_part = [
            [values[i] for i in pos] for pos in parted.positions()
        ]
        # every key in partition p is <= every key in partition p+1
        for lo, hi in zip(per_part, per_part[1:]):
            if lo and hi:
                assert max(lo) < min(hi)

    def test_stale_and_refresh_on_mutation(self):
        t = self._table()
        parted = PartitionedTable(t, "k", 3)
        assert not parted.stale
        t.insert({"k": 2, "label": "late"})
        assert parted.stale
        assert sum(parted.partition_sizes()) == len(t)
        assert not parted.stale


class TestCatalogPartitioning:
    def test_partition_and_unpartition(self, nullful_db):
        parted = nullful_db.partition_table("person", "region", 3)
        assert nullful_db.partitioning("person") is parted
        assert nullful_db.partitioning("region") is None
        nullful_db.unpartition_table("person")
        assert nullful_db.partitioning("person") is None

    def test_partition_unknown_table_or_column(self, nullful_db):
        with pytest.raises(CatalogError):
            nullful_db.partition_table("nope", "x", 2)
        with pytest.raises(CatalogError):
            nullful_db.partition_table("person", "nope", 2)

    def test_replace_and_drop_invalidate(self, nullful_db):
        nullful_db.partition_table("person", "region", 3)
        nullful_db.create_table(
            "person", Schema.of(pid=int, age=int, region=str, income=float),
            replace=True,
        )
        # A replaced table must not execute against stale positions.
        assert nullful_db.partitioning("person") is None
        nullful_db.partition_table("region", "region", 2)
        nullful_db.drop_table("region")
        assert nullful_db.partitioning("region") is None

    def test_register_replace_invalidates(self, nullful_db):
        nullful_db.partition_table("region", "region", 2)
        fresh = Table("region", Schema.of(region=str, mult=float))
        nullful_db.register(fresh, replace=True)
        assert nullful_db.partitioning("region") is None

    def test_refresh_tracks_inserts_through_queries(self, nullful_db):
        nullful_db.partition_table("person", "pid", 3)
        try:
            before = nullful_db.sql("SELECT count(*) AS n FROM person")
            nullful_db.table("person").insert(
                {"pid": 60, "age": 33, "region": "east", "income": 1.0}
            )
            after = nullful_db.sql("SELECT count(*) AS n FROM person")
        finally:
            nullful_db.unpartition_table("person")
        assert before == [{"n": 60}]
        assert after == [{"n": 61}]


class TestPartitionRunAccounting:
    def _execute(self, db, sql, morsel_size=7):
        plan = db.optimize_plan(parse_select(sql))
        executor = PartitionedMorselExecutor(
            db, ExecutionMetrics(), morsel_size=morsel_size
        )
        batch = executor.execute(plan)
        return executor, batch

    def test_chain_records_one_run(self, nullful_db):
        nullful_db.partition_table("person", "region", 3)
        try:
            executor, rows = self._execute(
                nullful_db, "SELECT pid FROM person WHERE age > 30"
            )
        finally:
            nullful_db.unpartition_table("person")
        (run,) = executor.partition_runs
        assert (run.table, run.key, run.scheme) == (
            "person", "region", "hash"
        )
        assert run.partitions == 3
        assert sum(run.partition_rows) == 60
        assert run.rows_in == 60
        assert run.rows_merged == len(rows)
        # 60 rows over 3 partitions at morsel size 7 → at least one
        # morsel per non-empty partition.
        assert run.morsels >= sum(1 for r in run.partition_rows if r)

    def test_aggregate_records_merge_of_all_rows(self, nullful_db):
        nullful_db.partition_table("person", "pid", 7)
        try:
            executor, _ = self._execute(
                nullful_db,
                "SELECT region, count(*) AS n FROM person GROUP BY region",
            )
        finally:
            nullful_db.unpartition_table("person")
        (run,) = executor.partition_runs
        assert run.rows_in == 60
        assert run.rows_merged == 60  # no filter: every row reaches merge
        assert run.partitions == 7

    def test_non_partitioned_scan_records_nothing(self, nullful_db):
        executor, _ = self._execute(
            nullful_db, "SELECT pid FROM person WHERE age > 30"
        )
        assert executor.partition_runs == []
