"""Tests for repro.engine.schema and repro.engine.table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Schema, Table, col, lit
from repro.engine.schema import Column
from repro.errors import SchemaError


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(pid=int, name=str, score=float)
        assert schema.names == ("pid", "name", "score")
        assert len(schema) == 3

    def test_from_spec_with_type_names(self):
        schema = Schema.from_spec({"a": "int", "b": "float"})
        assert schema.column("a").dtype is int

    def test_from_spec_unknown_type(self):
        with pytest.raises(SchemaError):
            Schema.from_spec({"a": "decimal"})

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("x", int), Column("x", float)])

    def test_validate_row_coerces(self):
        schema = Schema.of(a=int, b=float)
        row = schema.validate_row({"a": "3", "b": 2})
        assert row == {"a": 3, "b": 2.0}
        assert isinstance(row["b"], float)

    def test_validate_row_missing_becomes_null(self):
        schema = Schema.of(a=int, b=float)
        assert schema.validate_row({"a": 1}) == {"a": 1, "b": None}

    def test_validate_row_rejects_extras(self):
        schema = Schema.of(a=int)
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zz": 2})

    def test_coerce_failure(self):
        schema = Schema.of(a=int)
        with pytest.raises(SchemaError):
            schema.validate_row({"a": "not-a-number"})

    def test_prefixed(self):
        schema = Schema.of(a=int).prefixed("t")
        assert schema.names == ("t.a",)

    def test_rename_and_project(self):
        schema = Schema.of(a=int, b=float)
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert schema.project(["b"]).names == ("b",)

    def test_bool_column_string_coercion(self):
        schema = Schema.of(flag=bool)
        assert schema.validate_row({"flag": "true"})["flag"] is True
        assert schema.validate_row({"flag": "no"})["flag"] is False


class TestTable:
    def test_insert_and_len(self):
        t = Table("t", Schema.of(x=int))
        t.insert({"x": 1})
        t.insert({"x": 2})
        assert len(t) == 2

    def test_from_rows_infers_schema(self):
        t = Table.from_rows("t", [{"a": 1, "b": 2.5, "c": "s", "d": True}])
        assert t.schema.column("a").dtype is int
        assert t.schema.column("b").dtype is float
        assert t.schema.column("c").dtype is str
        assert t.schema.column("d").dtype is bool

    def test_from_rows_empty_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", [])

    def test_from_columns(self):
        t = Table.from_columns("t", {"x": [1, 2, 3], "y": [4.0, 5.0, 6.0]})
        assert len(t) == 3
        assert t.column_values("x") == [1, 2, 3]

    def test_from_columns_ragged(self):
        with pytest.raises(SchemaError):
            Table.from_columns("t", {"x": [1], "y": [1, 2]})

    def test_delete_where(self):
        t = Table.from_columns("t", {"x": [1, 2, 3, 4]})
        removed = t.delete_where(col("x") > 2)
        assert removed == 2
        assert t.column_values("x") == [1, 2]

    def test_update_where(self):
        t = Table.from_columns("t", {"x": [1, 2, 3]})
        updated = t.update_where(col("x") >= 2, {"x": col("x") * 10})
        assert updated == 2
        assert t.column_values("x") == [1, 20, 30]

    def test_update_unknown_column(self):
        t = Table.from_columns("t", {"x": [1]})
        with pytest.raises(SchemaError):
            t.update_where(lit(True), {"zz": lit(0)})

    def test_column_array_handles_none(self):
        t = Table("t", Schema.of(x=float))
        t.insert({"x": 1.0})
        t.insert({"x": None})
        arr = t.column_array("x")
        assert arr[0] == 1.0
        assert np.isnan(arr[1])

    def test_copy_is_independent(self):
        t = Table.from_columns("t", {"x": [1]})
        clone = t.copy()
        clone.rows[0]["x"] = 99
        assert t.rows[0]["x"] == 1

    def test_pretty_string_contains_header(self):
        t = Table.from_columns("t", {"alpha": [1, 2]})
        rendered = t.to_pretty_string()
        assert "alpha" in rendered
        assert "1" in rendered

    def test_truncate(self):
        t = Table.from_columns("t", {"x": [1, 2]})
        t.truncate()
        assert len(t) == 0


class TestVersionSemantics:
    """Pin the version/reorg_epoch contract the delta layer builds on.

    ``version`` moves exactly once per mutation that changed rows (a
    no-op mutation must NOT move it — version-keyed caches stay valid);
    ``reorg_epoch`` moves only on the non-append mutations, which is
    the signal :class:`repro.delta.AppendLog` uses to prove pure-append
    intervals.
    """

    def make(self):
        return Table.from_columns("t", {"x": [1, 2, 3]})

    def test_insert_many_bumps_once_per_batch(self):
        t = self.make()
        v = t.version
        t.insert_many([{"x": 4}, {"x": 5}, {"x": 6}])
        assert t.version == v + 1
        assert t.reorg_epoch == 0

    def test_insert_many_empty_batch_is_a_noop(self):
        t = self.make()
        v = t.version
        assert t.insert_many([]) == 0
        assert t.version == v

    def test_insert_many_is_atomic_on_bad_row(self):
        t = self.make()
        v = t.version
        with pytest.raises(SchemaError):
            t.insert_many([{"x": 7}, {"zz": 1}])
        assert len(t) == 3 and t.version == v

    def test_delete_where_bumps_only_on_removal(self):
        t = self.make()
        v, e = t.version, t.reorg_epoch
        assert t.delete_where(lit(False)) == 0
        assert t.version == v and t.reorg_epoch == e
        assert t.delete_where(col("x") == lit(2)) == 1
        assert t.version == v + 1 and t.reorg_epoch == e + 1

    def test_update_where_bumps_only_on_match(self):
        t = self.make()
        v, e = t.version, t.reorg_epoch
        assert t.update_where(lit(False), {"x": lit(0)}) == 0
        assert t.version == v and t.reorg_epoch == e
        assert t.update_where(col("x") == lit(1), {"x": lit(9)}) == 1
        assert t.version == v + 1 and t.reorg_epoch == e + 1

    def test_truncate_bumps_only_when_nonempty(self):
        t = self.make()
        v, e = t.version, t.reorg_epoch
        t.truncate()
        assert t.version == v + 1 and t.reorg_epoch == e + 1
        t.truncate()  # already empty: no-op
        assert t.version == v + 1 and t.reorg_epoch == e + 1

    def test_single_insert_bumps_version_not_epoch(self):
        t = self.make()
        v = t.version
        t.insert({"x": 10})
        assert t.version == v + 1 and t.reorg_epoch == 0
