"""Failure-injection tests: wrong usage must fail loudly and precisely.

A library this size lives or dies by its error messages; these tests
exercise the failure paths across subsystems — malformed inputs, broken
user callbacks, and numerically degenerate situations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assimilation import (
    LinearGaussianSSM,
    WildfireModel,
    WildfireParameters,
    particle_filter,
)
from repro.engine import Database, Schema, col, lit
from repro.errors import (
    AlignmentError,
    FilteringError,
    QueryError,
    ReproError,
    SchemaError,
    SimulationError,
    VGFunctionError,
)
from repro.mapreduce import Cluster, MapReduceJob
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
from repro.stats import make_rng


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AlignmentError,
            FilteringError,
            QueryError,
            SchemaError,
            SimulationError,
            VGFunctionError,
        ],
    )
    def test_all_errors_are_repro_errors(self, exc):
        assert issubclass(exc, ReproError)

    def test_single_catch_covers_subsystems(self):
        db = Database()
        with pytest.raises(ReproError):
            db.table("missing")
        with pytest.raises(ReproError):
            db.sql("SELEKT 1")


class TestBrokenUserCallbacks:
    def test_mapper_exception_propagates(self):
        def mapper(key, value):
            raise RuntimeError("user bug in mapper")
            yield  # pragma: no cover

        job = MapReduceJob("bad", mapper, lambda k, vs: iter(()))
        with pytest.raises(RuntimeError, match="user bug"):
            Cluster(2).run(job, [(None, 1)])

    def test_vg_function_bad_output_column(self, rng):
        db = Database()
        db.create_table("outer_t", Schema.of(k=int))
        db.table("outer_t").insert({"k": 1})

        class BadVG(NormalVG):
            def generate(self, rng, params):
                return {"unexpected": 1.0}

        spec = RandomTableSpec(
            name="r",
            vg=BadVG(),
            outer_table="outer_t",
            parameters={"mean": 0.0, "std": 1.0},
            select={"out": "vg.value"},
        )
        with pytest.raises(KeyError):
            spec.instantiate(db, rng)

    def test_naive_query_returning_non_scalar(self):
        db = Database()
        db.create_table("outer_t", Schema.of(k=int))
        db.table("outer_t").insert({"k": 1})
        mc = MonteCarloDatabase(db, seed=0)
        mc.register_random_table(
            RandomTableSpec(
                name="r",
                vg=NormalVG(),
                outer_table="outer_t",
                parameters={"mean": 0.0, "std": 1.0},
            )
        )
        with pytest.raises((TypeError, ValueError)):
            mc.run_naive(lambda inst: "not a number", n_mc=2)


class TestDegenerateNumerics:
    def test_particle_filter_impossible_observation(self):
        """All particles at zero likelihood must raise, not NaN out."""
        ssm = LinearGaussianSSM()
        model = ssm.to_state_space_model()
        with pytest.raises(FilteringError):
            particle_filter(model, [np.inf], 10, make_rng(0))

    def test_wildfire_observation_density_finite(self):
        params = WildfireParameters(height=4, width=4)
        model = WildfireModel(params, seed=0)
        state = model.initial_state((1, 1))
        obs = np.full(len(model.sensor_rows), 20.0)
        ll = model.observation_log_density(state[None, ...], obs)
        assert np.all(np.isfinite(ll))

    def test_update_where_with_failing_expression(self):
        db = Database()
        db.create_table("t", Schema.of(x=int))
        db.table("t").insert({"x": 1})
        with pytest.raises(QueryError):
            db.table("t").update_where(lit(True), {"x": col("missing")})

    def test_division_by_zero_in_sql(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("INSERT INTO t VALUES (0)")
        with pytest.raises(ZeroDivisionError):
            db.sql("SELECT 1 / x AS y FROM t")


class TestSchemaEnforcement:
    def test_insert_after_drop_fails(self):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("DROP TABLE t")
        with pytest.raises(ReproError):
            db.sql("INSERT INTO t VALUES (1)")

    def test_create_as_empty_result_fails(self, people_db):
        with pytest.raises(QueryError):
            people_db.sql(
                "CREATE TABLE e AS SELECT pid FROM person WHERE pid < 0"
            )

    def test_join_column_clobbering_detected(self):
        db = Database()
        db.create_table("a", Schema.of(k=int, v=int))
        db.create_table("b", Schema.of(k=int, v=int))
        db.table("a").insert({"k": 1, "v": 10})
        db.table("b").insert({"k": 1, "v": 20})
        # Default aliases clash ("v" twice); the parser disambiguates.
        rows = db.sql("SELECT a.v, b.v FROM a JOIN b ON a.k = b.k")
        assert rows == [{"v": 10, "b_v": 20}]
