"""Tests for the Indemics epidemic system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.epidemics import (
    DiseaseParameters,
    HealthState,
    IndemicsEngine,
    SchoolClosurePolicy,
    SEIRProcess,
    VaccinatePreschoolersPolicy,
    build_contact_network,
    deactivate_edges,
    generate_population,
    reactivate_all,
    run_with_policy,
)
from repro.errors import SimulationError
from repro.stats import make_rng


@pytest.fixture(scope="module")
def population():
    return generate_population(150, make_rng(0))


@pytest.fixture(scope="module")
def network(population):
    return build_contact_network(population, make_rng(1))


class TestPopulation:
    def test_sizes(self, population):
        assert len(population) > 150  # households have >= 1 member
        assert population.num_households == 150

    def test_age_structure(self, population):
        ages = population.ages()
        assert ages.min() >= 0
        assert ages.max() < 80
        assert (ages < 18).sum() > 0
        assert (ages >= 18).sum() > 0

    def test_preschoolers_are_young(self, population):
        by_pid = {p.pid: p for p in population.persons}
        for pid in population.preschoolers():
            assert 0 <= by_pid[pid].age <= 4

    def test_to_database(self, population):
        db = population.to_database()
        n = db.sql("SELECT COUNT(*) AS n FROM person")[0]["n"]
        assert n == len(population)
        kids = db.sql(
            "SELECT COUNT(*) AS n FROM person WHERE age BETWEEN 0 AND 4"
        )[0]["n"]
        assert kids == len(population.preschoolers())

    def test_validation(self):
        with pytest.raises(SimulationError):
            generate_population(0, make_rng(0))


class TestNetwork:
    def test_every_person_is_a_node(self, population, network):
        assert network.number_of_nodes() == len(population)

    def test_households_are_cliques(self, population, network):
        from collections import defaultdict

        households = defaultdict(list)
        for p in population.persons:
            households[p.household_id].append(p.pid)
        for members in list(households.values())[:20]:
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert network.has_edge(a, b)

    def test_edge_attributes(self, network):
        for _, _, data in list(network.edges(data=True))[:50]:
            assert data["duration"] >= 0
            assert data["contact_type"] in (
                "household", "school", "work", "community",
            )
            assert data["active"] is True

    def test_deactivate_and_reactivate(self, population, network):
        graph = network.copy()
        pids = [population.persons[0].pid]
        count = deactivate_edges(graph, pids)
        assert count == graph.degree(pids[0])
        reactivate_all(graph)
        active = sum(
            1 for _, _, d in graph.edges(data=True) if d["active"]
        )
        assert active == graph.number_of_edges()

    def test_deactivate_filtered_by_type(self, population, network):
        graph = network.copy()
        all_pids = [p.pid for p in population.persons]
        count = deactivate_edges(graph, all_pids, {"school"})
        school_edges = sum(
            1
            for _, _, d in graph.edges(data=True)
            if d["contact_type"] == "school"
        )
        assert count == school_edges


class TestSEIR:
    def test_epidemic_spreads(self, network):
        process = SEIRProcess(network, DiseaseParameters(), make_rng(2))
        seeds = list(network.nodes)[:5]
        process.seed_infections(seeds)
        for _ in range(40):
            process.step_day()
        assert process.attack_rate() > 0.2

    def test_states_partition_population(self, network):
        process = SEIRProcess(network, DiseaseParameters(), make_rng(3))
        process.seed_infections(list(network.nodes)[:3])
        for _ in range(10):
            process.step_day()
        total = sum(process.count(s) for s in HealthState)
        assert total == network.number_of_nodes()

    def test_vaccination_protects(self, network):
        params = DiseaseParameters(vaccine_efficacy=1.0)
        runs = {}
        for vaccinate in (False, True):
            process = SEIRProcess(network, params, make_rng(4))
            seeds = list(network.nodes)[:5]
            if vaccinate:
                others = [n for n in network.nodes if n not in seeds]
                process.vaccinate(others)
            process.seed_infections(seeds)
            for _ in range(40):
                process.step_day()
            runs[vaccinate] = process.attack_rate()
        assert runs[True] < runs[False]
        # Perfect vaccine: only the seeds are ever infected.
        assert runs[True] == pytest.approx(5 / network.number_of_nodes())

    def test_unknown_person(self, network):
        process = SEIRProcess(network, DiseaseParameters(), make_rng(5))
        with pytest.raises(SimulationError):
            process.seed_infections([999999])

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            DiseaseParameters(transmission_rate=0.0)
        with pytest.raises(SimulationError):
            DiseaseParameters(vaccine_efficacy=1.5)


class TestEngine:
    def _engine(self, population, seed=6):
        engine = IndemicsEngine(population, DiseaseParameters(), seed=seed)
        engine.seed_infections(5)
        return engine

    def test_sql_observation(self, population):
        engine = self._engine(population)
        n = engine.scalar("SELECT COUNT(*) AS n FROM infected_person")
        assert n == 5

    def test_advance_records_history(self, population):
        engine = self._engine(population)
        engine.advance(10)
        assert len(engine.history) == 10
        assert engine.epidemic_curve().shape == (10,)

    def test_sync_reflects_process(self, population):
        engine = self._engine(population)
        engine.advance(5)
        n_sql = engine.scalar("SELECT COUNT(*) AS n FROM infected_person")
        n_proc = engine.process.count(HealthState.EXPOSED) + engine.process.count(
            HealthState.INFECTIOUS
        )
        assert n_sql == n_proc

    def test_select_pids_requires_pid_column(self, population):
        engine = self._engine(population)
        with pytest.raises(SimulationError):
            engine.select_pids("SELECT age FROM person LIMIT 1")

    def test_intervention_via_sql_selection(self, population):
        engine = self._engine(population)
        pids = engine.select_pids(
            "SELECT pid FROM person WHERE age BETWEEN 0 AND 4"
        )
        new = engine.vaccinate(pids)
        assert new == len(pids)
        vaccinated = engine.scalar(
            "SELECT COUNT(*) AS n FROM health_state WHERE vaccinated = true"
        )
        assert vaccinated == len(pids)


class TestAlgorithm1:
    def test_policy_triggers_and_vaccinates(self, population):
        engine = IndemicsEngine(population, DiseaseParameters(), seed=7)
        engine.seed_infections(8)
        policy = VaccinatePreschoolersPolicy(threshold=0.01)
        log = run_with_policy(engine, policy, days=40)
        triggered = [e for e in log if e.triggered]
        assert len(triggered) == 1
        assert triggered[0].action_size == len(population.preschoolers())

    def test_policy_reduces_preschool_attack_rate(self, population):
        results = {}
        for use_policy in (False, True):
            engine = IndemicsEngine(
                population,
                DiseaseParameters(vaccine_efficacy=0.95),
                seed=8,
            )
            engine.seed_infections(8)
            policy = (
                VaccinatePreschoolersPolicy(0.005) if use_policy else None
            )
            run_with_policy(engine, policy, days=50)
            preschool = set(population.preschoolers())
            infected = sum(
                1
                for pid, h in engine.process.health.items()
                if pid in preschool and h.infected_on_day is not None
            )
            results[use_policy] = infected / max(len(preschool), 1)
        assert results[True] < results[False]

    def test_school_closure_policy(self, population):
        engine = IndemicsEngine(population, DiseaseParameters(), seed=9)
        engine.seed_infections(8)
        policy = SchoolClosurePolicy(threshold=0.01)
        log = run_with_policy(engine, policy, days=30)
        triggered = [e for e in log if e.triggered]
        assert len(triggered) <= 1
        if triggered:
            assert triggered[0].action_size > 0

    def test_policy_without_setup_raises(self, population):
        engine = IndemicsEngine(population, DiseaseParameters(), seed=10)
        policy = VaccinatePreschoolersPolicy()
        with pytest.raises(SimulationError):
            policy.apply(engine, 1)
