"""Tests for the repro.obs observability subsystem.

Covers the ISSUE 2 acceptance surface: registry determinism across all
three execution backends, the no-op disabled path, Chrome-trace export
validity (JSON, sorted keys), and span nesting under the parallel
backend (worker-side suppression).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.tracing import Tracer
from repro.parallel.backend import get_backend


@pytest.fixture
def observer():
    """A live observer for the duration of one test."""
    obs.disable()
    live = obs.enable()
    yield live
    obs.disable()


@pytest.fixture(autouse=True)
def _restore_disabled():
    """Every test leaves the process in the default (disabled) state."""
    yield
    obs.disable()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 1, "a": "x"}) == "m{a=x,b=1}"
        assert metric_key("m", {}) == "m"

    def test_instruments_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").add(4)
        registry.gauge("g", kind="size").set(17)
        for v in (2.0, 6.0, 4.0):
            registry.histogram("h").observe(v)
        registry.timer("t").add(0.25)
        snap = registry.snapshot()
        assert snap["values"]["counters"]["c"] == 5
        assert snap["values"]["gauges"]["g{kind=size}"] == 17
        hist = snap["values"]["histograms"]["h"]
        assert hist == {
            "count": 3, "sum": 12.0, "min": 2.0, "max": 6.0, "mean": 4.0
        }
        assert snap["timing"]["t"]["count"] == 1
        assert snap["timing"]["t"]["seconds"] == 0.25

    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1) is registry.counter("c", a=1)
        assert registry.counter("c", a=1) is not registry.counter("c", a=2)

    def test_snapshot_json_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").add(2)
        text = registry.to_json()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, sort_keys=True, indent=2)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.timer("t").add(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["values"]["counters"] == {}
        assert snap["timing"] == {}


# ---------------------------------------------------------------------------
# No-op disabled path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_disabled_observer_is_shared_null(self):
        obs.disable()
        first = obs.get_observer()
        assert first is obs.get_observer()
        assert not first.enabled

    def test_null_instruments_and_spans_are_singletons(self):
        obs.disable()
        null = obs.get_observer()
        assert null.counter("a", x=1) is null.counter("b")
        assert null.span("a") is null.span("b", attr=2)
        with null.span("s") as span:
            span.set(anything=1)  # absorbs silently
        null.counter("c").add(10)
        null.histogram("h").observe(3.0)

    def test_disabled_run_records_nothing(self):
        obs.disable()
        from repro.mapreduce.job import MapReduceJob, sum_reducer
        from repro.mapreduce.runtime import Cluster

        job = MapReduceJob("wc", _word_mapper, sum_reducer)
        Cluster(num_workers=2).run(job, [(None, "a b a")])
        # Enabling *afterwards* starts from an empty registry: nothing
        # leaked from the disabled run.
        live = obs.enable()
        assert live.metrics.snapshot()["values"]["counters"] == {}

    def test_suppressed_wins_over_enabled(self, observer):
        with obs.suppressed():
            assert not obs.get_observer().enabled
            with obs.suppressed():
                assert not obs.get_observer().enabled
            assert not obs.get_observer().enabled
        assert obs.get_observer() is observer

    def test_env_gate(self):
        assert not obs.env_enabled({})
        assert not obs.env_enabled({"REPRO_OBS": "0"})
        assert not obs.env_enabled({"REPRO_OBS": "false"})
        assert obs.env_enabled({"REPRO_OBS": "1"})
        assert obs.env_enabled({"REPRO_OBS": "trace"})


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", kind="outer"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[1].children] == ["grandchild"]
        assert root.end is not None and root.duration >= 0.0

    def test_chrome_trace_is_valid_sorted_json(self):
        tracer = Tracer()
        with tracer.span("root", job="wc"):
            with tracer.span("inner"):
                pass
        text = tracer.to_chrome_json()
        document = json.loads(text)
        # Sorted keys all the way down: re-serialization is a fixpoint.
        assert text == json.dumps(document, sort_keys=True, indent=2)
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["root", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0
        assert events[0]["args"] == {"job": "wc"}

    def test_exception_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (root,) = tracer.roots
        assert root.end is not None

    def test_summary_aggregates_siblings(self):
        tracer = Tracer()
        with tracer.span("run"):
            for step in range(5):
                with tracer.span("step", step=step):
                    pass
        summary = tracer.summary()
        assert "run" in summary
        assert "calls=5" in summary


# ---------------------------------------------------------------------------
# Span nesting / suppression under the parallel backends
# ---------------------------------------------------------------------------


def _word_mapper(_key, line):
    for word in line.split():
        yield word, 1


def _task_with_spans(i: int) -> int:
    """A task body that tries to observe — must be suppressed."""
    observer = obs.get_observer()
    with observer.span("worker.task", i=i):
        observer.counter("worker.calls").inc()
    return i * i


class TestParallelIntegration:
    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_task_bodies_are_suppressed(self, observer, backend_name):
        with observer.span("outer"):
            results = get_backend(backend_name).map(
                _task_with_spans, list(range(6))
            )
        assert results == [i * i for i in range(6)]
        counters = observer.metrics.snapshot()["values"]["counters"]
        assert "worker.calls" not in counters
        assert counters["parallel.tasks"] == 6
        (root,) = observer.tracer.roots
        assert root.name == "outer"
        names = {s.name for s in root.walk()}
        assert "parallel.map" in names
        assert "worker.task" not in names

    def test_span_nesting_under_thread_backend(self, observer):
        with observer.span("driver"):
            get_backend("thread").map(_task_with_spans, list(range(4)))
            with observer.span("after"):
                pass
        (root,) = observer.tracer.roots
        child_names = [c.name for c in root.children]
        assert child_names == ["parallel.map", "after"]


# ---------------------------------------------------------------------------
# Registry determinism across backends
# ---------------------------------------------------------------------------


def _naive_query(db) -> float:
    rows = db.sql("SELECT avg(value) AS m FROM sbp")
    return float(rows[0]["m"])


def _observability_workload(backend_name: str) -> None:
    """A miniature multi-subsystem run, instrumented end to end."""
    from repro.assimilation import LinearGaussianSSM, particle_filter
    from repro.calibration.optimizers import random_search
    from repro.engine import Database
    from repro.mapreduce.job import MapReduceJob, sum_reducer
    from repro.mapreduce.runtime import Cluster
    from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
    from repro.stats import make_rng

    job = MapReduceJob("wc", _word_mapper, sum_reducer)
    Cluster(num_workers=3, backend=backend_name).run(
        job, [(None, "a b c a"), (None, "b a"), (None, "c c a b")]
    )

    db = Database()
    db.sql("CREATE TABLE patients (pid int)")
    for i in range(12):
        db.sql(f"INSERT INTO patients VALUES ({i})")
    mcdb = MonteCarloDatabase(db, seed=1)
    mcdb.register_random_table(
        RandomTableSpec(
            name="sbp",
            vg=NormalVG(),
            outer_table="patients",
            parameters={"mean": 120.0, "std": 10.0},
        )
    )
    mcdb.run_naive(_naive_query, 6, backend=backend_name)
    mcdb.instantiate_bundles(6, backend=backend_name)

    ssm = LinearGaussianSSM()
    _, observations = ssm.simulate(8, make_rng(3))
    particle_filter(
        ssm.to_state_space_model(),
        observations,
        64,
        backend=backend_name,
        seed=5,
    )

    random_search(
        _quadratic, [(-1.0, 1.0)], make_rng(9), evaluations=10,
        backend=backend_name,
    )


def _quadratic(x: np.ndarray) -> float:
    return float(np.sum((x - 0.25) ** 2))


class TestDeterminismAcrossBackends:
    def test_values_snapshot_is_byte_identical(self):
        serialized = {}
        for backend_name in ("serial", "thread", "process"):
            obs.disable()
            observer = obs.enable()
            _observability_workload(backend_name)
            serialized[backend_name] = observer.metrics.values_json()
            obs.disable()
        assert serialized["thread"] == serialized["serial"]
        assert serialized["process"] == serialized["serial"]
        # Sanity: the workload actually recorded something substantial.
        values = json.loads(serialized["serial"])
        assert values["counters"]["mapreduce.shuffle_bytes"] > 0
        assert values["counters"]["assimilation.steps"] == 8
        assert values["histograms"]["assimilation.ess"]["count"] == 8
        assert (
            values["counters"][
                "calibration.evaluations{method=random_search}"
            ]
            == 10
        )


# ---------------------------------------------------------------------------
# obs-report entry point
# ---------------------------------------------------------------------------


class TestObsReport:
    def test_obs_report_writes_valid_artifacts(self, tmp_path):
        from repro.obs.report import run_report

        trace_path, metrics_path, snapshot = run_report(
            out_dir=tmp_path, backend="serial", quick=True,
            echo=lambda *a: None,
        )
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"], "trace must contain spans"
        assert trace_path.read_text().rstrip("\n") == json.dumps(
            trace, sort_keys=True, indent=2
        )
        metrics = json.loads(metrics_path.read_text())
        assert metrics["backend"] == "serial"
        assert metrics["values"] == snapshot["values"]
        assert metrics["values"]["counters"]["mapreduce.shuffle_bytes"] > 0

    def test_cli_dispatches_obs_report(self, tmp_path):
        from repro.__main__ import main

        main(["obs-report", "--quick", "--out-dir", str(tmp_path)])
        assert (tmp_path / "OBS_report_trace.json").exists()
        assert (tmp_path / "OBS_report_metrics.json").exists()
