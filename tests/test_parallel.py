"""Tests for repro.parallel: backend primitives and equivalence.

The determinism contract — any backend produces byte-identical results
to serial — is exercised on the three workload families the ISSUE names:
a MapReduce wordcount, MCDB execution (naive Monte Carlo loop and
tuple-bundle aggregation), and a seeded particle-filter run; plus the
caching/calibration fan-outs.

Task closures live at module level so they pickle for the process
backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assimilation import LinearGaussianSSM, particle_filter
from repro.calibration import genetic_algorithm, nelder_mead, random_search
from repro.composite import (
    ArrivalProcessModel,
    QueueModel,
    measure_estimator_variance,
    run_with_caching,
)
from repro.engine import Database, Schema
from repro.errors import FilteringError, SimulationError
from repro.mapreduce import Cluster, JobCounters, MapReduceJob, sum_reducer
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    available_backends,
    get_backend,
    task_seed_sequences,
)
from repro.stats import make_rng

BACKENDS = ("serial", "thread", "process")


# -- module-level (picklable) task closures ---------------------------------


def square(x):
    return x * x


def type_name(x):
    return type(x).__name__


def raise_type_error(x):
    raise TypeError(f"task-level bug on {x}")


def wc_mapper(_, line):
    for word in line.split():
        yield word, 1


def wordcount_job(combiner=False):
    return MapReduceJob(
        "wc", wc_mapper, sum_reducer, combiner=sum_reducer if combiner else None
    )


def mc_query(instance):
    total = 0.0
    count = 0
    for row in instance.table("sbp_data"):
        total += row["sbp"]
        count += 1
    return total / count


def build_mcdb(num_rows=12):
    db = Database()
    db.create_table("patients", Schema.of(pid=int))
    for i in range(num_rows):
        db.table("patients").insert({"pid": i})
    mcdb = MonteCarloDatabase(db, seed=5)
    mcdb.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters={"mean": 120.0, "std": 10.0},
            select={"pid": "outer.pid", "sbp": "vg.value"},
        )
    )
    return mcdb


def sphere(x):
    return float(np.sum(np.asarray(x) ** 2))


# -- backend primitives -----------------------------------------------------


class TestBackendPrimitives:
    def test_factory_names(self):
        assert available_backends() == ("process", "serial", "thread")
        for name in BACKENDS:
            assert get_backend(name).name == name

    def test_factory_returns_shared_instances(self):
        assert get_backend("thread") is get_backend("thread")

    def test_backend_instance_passthrough(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            get_backend("gpu")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert get_backend(None).name == "thread"
        monkeypatch.delenv("REPRO_BACKEND")
        assert get_backend(None).name == "serial"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_preserves_order(self, name):
        items = list(range(23))
        assert get_backend(name).map(square, items) == [square(x) for x in items]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_empty_and_singleton(self, name):
        backend = get_backend(name)
        assert backend.map(square, []) == []
        assert backend.map(square, [3]) == [9]

    def test_explicit_chunksize(self):
        backend = get_backend("thread")
        items = list(range(10))
        assert backend.map(square, items, chunksize=3) == [
            square(x) for x in items
        ]
        with pytest.raises(SimulationError):
            backend.map(square, items, chunksize=0)

    def test_process_backend_falls_back_on_unpicklable(self):
        backend = ProcessBackend(max_workers=2)
        captured = []  # closure => unpicklable task
        with pytest.warns(RuntimeWarning, match="unpicklable"):
            out = backend.map(lambda x: captured.append(x) or x + 1, [1, 2, 3])
        assert out == [2, 3, 4]
        assert captured == [1, 2, 3]
        backend.shutdown()

    def test_process_backend_falls_back_on_unpicklable_later_payload(self):
        # The cheap up-front probe only sees items[0]; an unpicklable
        # payload deeper in the list fails pool-side (in the executor's
        # feeder machinery) and must fall back, not crash.
        import threading

        backend = ProcessBackend(max_workers=2)
        try:
            items = [1, threading.Lock(), 3.5, "text"]
            with pytest.warns(RuntimeWarning, match="unpicklable|broke"):
                out = backend.map(type_name, items)
            assert out == ["int", "lock", "float", "str"]
            # The pool must remain usable for picklable work afterwards.
            assert backend.map(square, [1, 2, 3]) == [1, 4, 9]
        finally:
            backend.shutdown()

    def test_process_backend_worker_errors_still_propagate(self):
        # A task that genuinely raises a pickling-family exception is a
        # task bug, not a submission failure — it must not be silently
        # retried in-process.
        backend = ProcessBackend(max_workers=2)
        try:
            with pytest.raises(TypeError, match="task-level"):
                backend.map(raise_type_error, range(8))
            assert backend.map(square, [1, 2, 3]) == [1, 4, 9]
        finally:
            backend.shutdown()

    def test_task_seed_sequences_deterministic_and_independent(self):
        a = task_seed_sequences(42, "mc", 4)
        b = task_seed_sequences(42, "mc", 4)
        draws_a = [np.random.default_rng(s).uniform() for s in a]
        draws_b = [np.random.default_rng(s).uniform() for s in b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 4
        other = task_seed_sequences(42, "other", 4)
        assert np.random.default_rng(other[0]).uniform() != draws_a[0]

    def test_task_seed_sequences_picklable(self):
        import pickle

        seqs = task_seed_sequences(7, "ship", 3)
        clones = pickle.loads(pickle.dumps(seqs))
        for seq, clone in zip(seqs, clones):
            assert (
                np.random.default_rng(seq).uniform()
                == np.random.default_rng(clone).uniform()
            )


# -- workload equivalence ---------------------------------------------------


class TestMapReduceEquivalence:
    @pytest.fixture(scope="class")
    def serial_run(self):
        inputs = [(None, f"w{i % 7} w{i % 3} common") for i in range(60)]
        counters = JobCounters()
        output = Cluster(num_workers=4, backend="serial").run(
            wordcount_job(combiner=True), inputs, counters
        )
        return inputs, output, counters

    @pytest.mark.parametrize("name", BACKENDS)
    def test_wordcount_identical(self, name, serial_run):
        inputs, expected_output, expected_counters = serial_run
        counters = JobCounters()
        output = Cluster(num_workers=4, backend=name).run(
            wordcount_job(combiner=True), inputs, counters
        )
        assert output == expected_output
        assert counters == expected_counters

    @pytest.mark.parametrize("name", BACKENDS)
    def test_num_reducers_override_does_not_mutate_job(self, name):
        job = wordcount_job()
        inputs = [(None, f"w{i % 5}") for i in range(30)]
        cluster = Cluster(2, backend=name)
        a = dict(cluster.run(job, inputs))
        b = dict(cluster.run(job, inputs, num_reducers=7))
        assert a == b
        assert job.num_reducers == 4
        with pytest.raises(SimulationError):
            cluster.run(job, inputs, num_reducers=0)

    def test_run_chain_returns_list_without_rematerializing(self):
        cluster = Cluster(2)
        out, counters = cluster.run_chain(
            [wordcount_job()], iter([(None, "a a b")])
        )
        assert isinstance(out, list)
        assert dict(out) == {"a": 2, "b": 1}
        assert counters.records_read == 1


class TestMcdbEquivalence:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_naive_samples_byte_identical(self, name):
        expected = build_mcdb().run_naive(mc_query, 8).samples
        got = build_mcdb().run_naive(mc_query, 8, backend=name).samples
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_bundled_aggregation_byte_identical(self, name):
        def agg(bundles, _db):
            return bundles["sbp_data"].aggregate_avg("sbp")

        expected = build_mcdb().run_bundled(agg, 16).samples
        # The bundle query closure stays in the driver; only per-table
        # instantiation fans out, so even unpicklable queries are fine.
        got = build_mcdb().run_bundled(agg, 16, backend=name).samples
        np.testing.assert_array_equal(got, expected)


class TestParticleFilterEquivalence:
    @pytest.fixture(scope="class")
    def setting(self):
        ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
        _, observations = ssm.simulate(12, make_rng(0))
        return ssm.to_state_space_model(), ssm, observations

    @pytest.mark.parametrize("name", BACKENDS)
    def test_bootstrap_filter_byte_identical(self, name, setting):
        model, _, observations = setting
        expected = particle_filter(
            model, observations, 64, backend="serial", seed=9
        )
        got = particle_filter(model, observations, 64, backend=name, seed=9)
        np.testing.assert_array_equal(
            got.filtered_means, expected.filtered_means
        )
        np.testing.assert_array_equal(
            got.final_particles, expected.final_particles
        )
        assert got.log_likelihood == expected.log_likelihood

    @pytest.mark.parametrize("name", BACKENDS)
    def test_optimal_proposal_byte_identical(self, name, setting):
        model, ssm, observations = setting
        expected = particle_filter(
            model,
            observations,
            32,
            backend="serial",
            seed=4,
            proposal=ssm.optimal_proposal(),
        )
        got = particle_filter(
            model,
            observations,
            32,
            backend=name,
            seed=4,
            proposal=ssm.optimal_proposal(),
        )
        np.testing.assert_array_equal(
            got.filtered_means, expected.filtered_means
        )

    def test_parallel_mode_requires_seed(self, setting):
        model, _, observations = setting
        with pytest.raises(FilteringError):
            particle_filter(model, observations, 16, backend="serial")

    def test_legacy_mode_requires_rng(self, setting):
        model, _, observations = setting
        with pytest.raises(FilteringError):
            particle_filter(model, observations, 16)

    def test_shard_count_changes_draws_but_not_validity(self, setting):
        # n_shards is part of the determinism contract: same seed, same
        # shards => same result; different shard layout => different draws.
        model, _, observations = setting
        a = particle_filter(
            model, observations, 64, backend="serial", seed=9, n_shards=4
        )
        b = particle_filter(
            model, observations, 64, backend="thread", seed=9, n_shards=4
        )
        np.testing.assert_array_equal(a.filtered_means, b.filtered_means)


class TestCompositeEquivalence:
    @pytest.fixture(scope="class")
    def models(self):
        return (
            ArrivalProcessModel("m1", cost=2.0),
            QueueModel("m2", cost=0.5),
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_run_with_caching_backend_invariant(self, name, models):
        m1, m2 = models
        expected = run_with_caching(
            m1, m2, n=20, alpha=0.25, rng=None, backend="serial", seed=11
        )
        got = run_with_caching(
            m1, m2, n=20, alpha=0.25, rng=None, backend=name, seed=11
        )
        np.testing.assert_array_equal(got.samples, expected.samples)
        assert got.m1_runs == expected.m1_runs

    @pytest.mark.parametrize("name", BACKENDS)
    def test_measure_estimator_variance_matches_legacy(self, name, models):
        m1, m2 = models
        legacy = measure_estimator_variance(
            m1, m2, budget=60.0, alpha=0.5, replications=4, seed=3
        )
        parallel = measure_estimator_variance(
            m1, m2, budget=60.0, alpha=0.5, replications=4, seed=3,
            backend=name,
        )
        assert parallel == legacy

    def test_parallel_caching_requires_seed(self, models):
        m1, m2 = models
        with pytest.raises(SimulationError):
            run_with_caching(m1, m2, n=10, alpha=0.5, rng=None, backend="serial")


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_nelder_mead_backend_invariant(self, name):
        baseline = nelder_mead(sphere, [1.0, -2.0, 0.5])
        result = nelder_mead(sphere, [1.0, -2.0, 0.5], backend=name)
        np.testing.assert_array_equal(result.x, baseline.x)
        assert result.value == baseline.value
        assert result.evaluations == baseline.evaluations

    @pytest.mark.parametrize("name", BACKENDS)
    def test_genetic_algorithm_backend_invariant(self, name):
        bounds = [(-3.0, 3.0)] * 2
        baseline = genetic_algorithm(
            sphere, bounds, make_rng(5), population_size=10, generations=5
        )
        result = genetic_algorithm(
            sphere, bounds, make_rng(5), population_size=10, generations=5,
            backend=name,
        )
        np.testing.assert_array_equal(result.x, baseline.x)
        assert result.value == baseline.value
        assert result.evaluations == baseline.evaluations

    @pytest.mark.parametrize("name", BACKENDS)
    def test_random_search_backend_invariant(self, name):
        bounds = [(-1.0, 1.0)] * 3
        baseline = random_search(sphere, bounds, make_rng(2), evaluations=40)
        result = random_search(
            sphere, bounds, make_rng(2), evaluations=40, backend=name
        )
        np.testing.assert_array_equal(result.x, baseline.x)
        assert result.value == baseline.value
