"""Tests for the MapReduce substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.mapreduce import (
    Cluster,
    JobCounters,
    MapReduceJob,
    identity_mapper,
    identity_reducer,
    sum_reducer,
)
from repro.mapreduce.counters import _approximate_size


def word_count_job(num_reducers: int = 4, combiner: bool = False):
    def mapper(_, line):
        for word in line.split():
            yield word, 1

    return MapReduceJob(
        "wc",
        mapper,
        sum_reducer,
        combiner=sum_reducer if combiner else None,
        num_reducers=num_reducers,
    )


class TestWordCount:
    def test_basic(self):
        cluster = Cluster(num_workers=3)
        inputs = [(None, "a b a"), (None, "b c"), (None, "a")]
        out = dict(cluster.run(word_count_job(), inputs))
        assert out == {"a": 3, "b": 2, "c": 1}

    def test_same_result_any_workers(self):
        inputs = [(None, f"w{i % 7} w{i % 3}") for i in range(40)]
        baseline = dict(Cluster(num_workers=1).run(word_count_job(), inputs))
        for workers in (2, 5, 16):
            out = dict(Cluster(num_workers=workers).run(word_count_job(), inputs))
            assert out == baseline

    def test_combiner_reduces_shuffle(self):
        inputs = [(None, "x x x x x")] * 10
        plain = JobCounters()
        Cluster(num_workers=2).run(word_count_job(), inputs, plain)
        combined = JobCounters()
        Cluster(num_workers=2).run(
            word_count_job(combiner=True), inputs, combined
        )
        assert combined.records_shuffled < plain.records_shuffled
        # But results identical:
        out_a = dict(Cluster(2).run(word_count_job(), inputs))
        out_b = dict(Cluster(2).run(word_count_job(combiner=True), inputs))
        assert out_a == out_b

    def test_reducer_partition_count_does_not_change_results(self):
        inputs = [(None, f"w{i % 5}") for i in range(30)]
        a = dict(Cluster(2).run(word_count_job(num_reducers=1), inputs))
        b = dict(Cluster(2).run(word_count_job(num_reducers=7), inputs))
        assert a == b


class TestCounters:
    def test_counts_flow(self):
        counters = JobCounters()
        inputs = [(None, "a b"), (None, "c")]
        Cluster(1).run(word_count_job(), inputs, counters)
        assert counters.records_read == 2
        assert counters.records_mapped == 3
        assert counters.records_shuffled == 3
        assert counters.records_reduced == 3
        assert counters.records_written == 3
        assert counters.shuffle_bytes > 0

    def test_custom_counters_merge(self):
        a = JobCounters()
        a.increment("hits", 2)
        b = JobCounters()
        b.increment("hits")
        b.increment("misses")
        merged = a.merge(b)
        assert merged.custom == {"hits": 3, "misses": 1}

    def test_summary_renders(self):
        assert "shuffled" in JobCounters().summary()

    def test_summary_includes_custom_counters(self):
        counters = JobCounters()
        counters.increment("misses", 2)
        counters.increment("hits", 7)
        assert "custom[hits=7 misses=2]" in counters.summary()

    def test_merge_matches_absorb(self):
        a = JobCounters(records_read=3, shuffle_bytes=10)
        a.increment("hits", 1)
        b = JobCounters(records_mapped=4, shuffle_bytes=5)
        b.increment("hits", 2)
        merged = a.merge(b)
        absorbed = JobCounters()
        absorbed.absorb(a)
        absorbed.absorb(b)
        assert merged == absorbed
        # merge leaves both operands untouched
        assert a.shuffle_bytes == 10 and b.shuffle_bytes == 5


class TestApproximateSize:
    def test_str_counts_utf8_bytes(self):
        assert _approximate_size("abc") == 3
        assert _approximate_size("é") == 2  # 2 bytes in UTF-8, 1 char

    def test_bytes_and_bytearray_count_length(self):
        assert _approximate_size(b"abcd") == 4
        assert _approximate_size(bytearray(5)) == 5

    def test_containers_sum_their_elements(self):
        flat = _approximate_size([1, 2.0, "ab"])
        assert flat == 8 + 8 + 2 + 8  # elements + container overhead
        assert _approximate_size({"k": 1}) == 1 + 8 + 8

    def test_deep_nesting_is_capped(self):
        nested: list = []
        for _ in range(10_000):
            nested = [nested]
        # Must not RecursionError; deep tails get a flat charge.
        assert _approximate_size(nested) > 0

    def test_last_counters_requires_history(self):
        with pytest.raises(SimulationError):
            Cluster(1).last_counters()


def _spelling_mapper(_, record):
    yield record, 1


class TestShuffleKeyCanonicalization:
    """Partition assignment must be a pure function of the key.

    ``_partition_index`` used to hash ``repr(key)`` while the shuffle
    memo looked keys up by dict equality, so equality-equal spellings
    (``1`` vs ``1.0`` vs ``True``) landed on whichever partition the
    *first-emitted* spelling hashed to.
    """

    def test_equal_keys_share_a_partition_index(self):
        from repro.mapreduce.runtime import _partition_index

        for n in (2, 3, 5, 7, 16):
            assert (
                _partition_index(1, n)
                == _partition_index(1.0, n)
                == _partition_index(True, n)
            )
            assert (
                _partition_index(0, n)
                == _partition_index(0.0, n)
                == _partition_index(False, n)
            )
            # Strings keep their historical repr-based assignment.
            import zlib

            assert _partition_index("a", n) == zlib.crc32(b"'a'") % n

    def test_mixed_type_keys_do_not_depend_on_emission_order(self):
        job = MapReduceJob(
            "mixed", _spelling_mapper, sum_reducer, num_reducers=4
        )
        spellings = [1, 1.0, True, 0, 0.0, False, 2.0, 2, 1, 0.0]
        forward = Cluster(num_workers=1).run(
            job, [(None, s) for s in spellings]
        )
        backward = Cluster(num_workers=1).run(
            job, [(None, s) for s in reversed(spellings)]
        )
        # Same partition per key regardless of which spelling arrived
        # first, so the concatenated reduce output is identical.
        assert forward == backward
        assert dict(forward) == {1: 4, 0: 4, 2: 2}


class TestChaining:
    def test_two_stage_pipeline(self):
        # Stage 1: word count; stage 2: histogram of counts.
        def histogram_mapper(word, count):
            yield count, 1

        stage2 = MapReduceJob("hist", histogram_mapper, sum_reducer)
        inputs = [(None, "a a b b c")]
        cluster = Cluster(2)
        out, counters = cluster.run_chain([word_count_job(), stage2], inputs)
        assert dict(out) == {2: 2, 1: 1}
        assert counters.records_read == 1 + 3  # stage1 lines + stage2 pairs


class TestIdentityHelpers:
    def test_identity_roundtrip(self):
        job = MapReduceJob("id", identity_mapper, identity_reducer)
        inputs = [(1, "x"), (2, "y")]
        out = sorted(Cluster(2).run(job, inputs))
        assert out == [(1, "x"), (2, "y")]


class TestValidation:
    def test_bad_worker_count(self):
        with pytest.raises(SimulationError):
            Cluster(0)

    def test_bad_reducer_count(self):
        with pytest.raises(ValueError):
            MapReduceJob("x", identity_mapper, identity_reducer, num_reducers=0)


@given(
    words=st.lists(
        st.sampled_from(["alpha", "beta", "gamma", "delta"]),
        min_size=1,
        max_size=60,
    ),
    workers=st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_wordcount_matches_counter(words, workers):
    from collections import Counter

    inputs = [(None, w) for w in words]
    out = dict(Cluster(workers).run(word_count_job(), inputs))
    assert out == dict(Counter(words))
