"""Cross-module property and integration tests.

These tests check invariants that tie subsystems together: SQL vs fluent
query equivalence, optimizer result preservation under random predicates,
naive vs tuple-bundle MCDB agreement, resampling expectation
preservation, and the g(alpha) formula relationships.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composite import CompositeStatistics, g_approx, g_exact
from repro.engine import Database, Schema, col, parse_select
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
from repro.stats import make_rng


def make_db(rows):
    db = Database()
    db.create_table("t", Schema.of(k=int, v=float, tag=str))
    tags = ["a", "b", "c"]
    for i, v in enumerate(rows):
        db.table("t").insert({"k": i % 5, "v": v, "tag": tags[i % 3]})
    return db


class TestSqlFluentEquivalence:
    @given(
        rows=st.lists(st.floats(-100, 100), min_size=1, max_size=30),
        cutoff=st.floats(-100, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_filter_equivalence(self, rows, cutoff):
        db = make_db(rows)
        sql = db.sql(f"SELECT v FROM t WHERE v > {cutoff!r}")
        fluent = db.query("t").where(col("v") > cutoff).select("v").run()
        assert sorted(r["v"] for r in sql) == sorted(r["v"] for r in fluent)

    @given(rows=st.lists(st.floats(-50, 50), min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_aggregate_equivalence(self, rows):
        db = make_db(rows)
        sql = db.sql(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k "
            "ORDER BY k"
        )
        from repro.engine import count, sum_

        fluent = (
            db.query("t")
            .aggregate(count(alias="n"), sum_("v", alias="s"), group_by=["k"])
            .order_by("k")
            .run()
        )
        assert len(sql) == len(fluent)
        for a, b in zip(sql, fluent):
            assert a["k"] == b["k"]
            assert a["n"] == b["n"]
            assert a["s"] == pytest.approx(b["s"], rel=1e-9, abs=1e-9)


class TestOptimizerPreservesResults:
    @given(
        rows=st.lists(st.floats(-20, 20), min_size=1, max_size=25),
        cutoff=st.floats(-20, 20),
        tag=st.sampled_from(["a", "b", "c"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_join_with_filters(self, rows, cutoff, tag):
        db = make_db(rows)
        db.create_table("dim", Schema.of(k=int, label=str))
        for k in range(5):
            db.table("dim").insert({"k": k, "label": f"L{k}"})
        db.analyze()
        sql = (
            f"SELECT t.v, d.label FROM t JOIN dim d ON t.k = d.k "
            f"WHERE t.v <= {cutoff!r} AND t.tag = '{tag}'"
        )
        plan = parse_select(sql)
        raw = db.execute_plan(plan, optimized=False)
        opt = db.execute_plan(plan, optimized=True)
        key = lambda r: (r["v"], r["label"])
        assert sorted(raw, key=key) == sorted(opt, key=key)


class TestAggregateAlgebra:
    @given(rows=st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_avg_times_count_equals_sum(self, rows):
        db = make_db(rows)
        result = db.sql(
            "SELECT COUNT(v) AS n, AVG(v) AS a, SUM(v) AS s FROM t"
        )[0]
        assert result["a"] * result["n"] == pytest.approx(
            result["s"], rel=1e-9, abs=1e-6
        )

    @given(rows=st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_min_le_avg_le_max(self, rows):
        db = make_db(rows)
        result = db.sql(
            "SELECT MIN(v) AS lo, AVG(v) AS a, MAX(v) AS hi FROM t"
        )[0]
        assert result["lo"] - 1e-9 <= result["a"] <= result["hi"] + 1e-9


class TestMcdbModes:
    @given(
        mean=st.floats(-50, 50),
        std=st.floats(0.5, 10.0),
        n_rows=st.integers(3, 15),
    )
    @settings(max_examples=15, deadline=None)
    def test_naive_and_bundled_agree(self, mean, std, n_rows):
        db = Database()
        db.create_table("outer_t", Schema.of(oid=int))
        for i in range(n_rows):
            db.table("outer_t").insert({"oid": i})
        mc = MonteCarloDatabase(db, seed=5)
        mc.register_random_table(
            RandomTableSpec(
                name="r",
                vg=NormalVG(),
                outer_table="outer_t",
                parameters={"mean": mean, "std": std},
            )
        )
        n_mc = 150
        naive = mc.run_naive(
            lambda inst: inst.sql("SELECT AVG(value) AS m FROM r")[0]["m"],
            n_mc,
        )
        bundled = mc.run_bundled(
            lambda bundles, _db: bundles["r"].aggregate_avg("value"), n_mc
        )
        # Same target: E = mean, sd of the sample mean = std/sqrt(rows).
        tolerance = 5.0 * std / np.sqrt(n_rows * n_mc) + 1e-9
        assert abs(naive.expectation() - mean) < tolerance
        assert abs(bundled.expectation() - mean) < tolerance


class TestResamplingExpectation:
    @given(
        weights_raw=st.lists(
            st.floats(0.01, 10.0), min_size=3, max_size=30
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_systematic_resample_preserves_mean(self, weights_raw, seed):
        from repro.assimilation import systematic_resample

        weights = np.asarray(weights_raw)
        weights = weights / weights.sum()
        values = np.arange(weights.size, dtype=float)
        target = float(weights @ values)
        rng = make_rng(seed)
        means = []
        for _ in range(100):
            indices = systematic_resample(weights, rng)
            means.append(values[indices].mean())
        # Systematic resampling is unbiased; its Monte Carlo error over
        # 100 draws is small relative to the value scale.
        assert np.mean(means) == pytest.approx(target, abs=0.5)


class TestGFormulaRelations:
    @given(
        c1=st.floats(0.5, 50),
        c2=st.floats(0.1, 10),
        v1=st.floats(0.5, 20),
        ratio=st.floats(0.05, 1.0),
        k=st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_equals_approx_at_inverse_integers(
        self, c1, c2, v1, ratio, k
    ):
        stats = CompositeStatistics(c1=c1, c2=c2, v1=v1, v2=v1 * ratio)
        alpha = 1.0 / k
        assert g_exact(alpha, stats) == pytest.approx(
            g_approx(alpha, stats), rel=1e-9
        )

    @given(
        c1=st.floats(0.5, 50),
        c2=st.floats(0.1, 10),
        v1=st.floats(0.5, 20),
        ratio=st.floats(0.05, 0.95),
        alpha=st.floats(0.02, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_g_exact_at_least_intrinsic_floor(
        self, c1, c2, v1, ratio, alpha
    ):
        """g can never fall below the cost floor times fresh-noise var."""
        stats = CompositeStatistics(c1=c1, c2=c2, v1=v1, v2=v1 * ratio)
        floor = c2 * (v1 - stats.v2)
        assert g_exact(alpha, stats) >= floor - 1e-9


class TestSplineRefinement:
    @given(knots=st.integers(8, 40))
    @settings(max_examples=20, deadline=None)
    def test_error_shrinks_with_knot_count(self, knots):
        from repro.harmonize import NaturalCubicSpline

        f = np.sin
        coarse_t = np.linspace(0, np.pi, knots)
        fine_t = np.linspace(0, np.pi, knots * 2)
        query = np.linspace(0, np.pi, 200)
        coarse = NaturalCubicSpline.fit(coarse_t, f(coarse_t))
        fine = NaturalCubicSpline.fit(fine_t, f(fine_t))
        coarse_err = np.abs(coarse.evaluate(query) - f(query)).max()
        fine_err = np.abs(fine.evaluate(query) - f(query)).max()
        assert fine_err <= coarse_err + 1e-12
