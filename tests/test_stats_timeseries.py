"""Tests for repro.stats.timeseries (Figure 1 toolkit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.stats import (
    autocorrelation,
    extrapolate_and_score,
    fit_ar1,
    fit_polynomial_trend,
    forecast_ar1,
    synthetic_housing_prices,
)


class TestTrendFit:
    def test_recovers_exact_quadratic(self):
        t = np.arange(30.0)
        y = 1.0 + 2.0 * t + 0.5 * t**2
        model = fit_polynomial_trend(t, y, degree=2)
        np.testing.assert_allclose(model.predict(t), y, rtol=1e-9)

    def test_degree_property(self):
        model = fit_polynomial_trend(np.arange(5.0), np.arange(5.0), degree=1)
        assert model.degree == 1

    def test_too_few_points(self):
        with pytest.raises(SimulationError):
            fit_polynomial_trend([0.0, 1.0], [0.0, 1.0], degree=2)


class TestSyntheticHousing:
    def test_shape_and_span(self):
        years, prices = synthetic_housing_prices()
        assert years[0] == 1970 and years[-1] == 2011
        assert prices.shape == years.shape
        assert np.all(prices > 0)

    def test_bubble_then_collapse(self):
        years, prices = synthetic_housing_prices(noise_sd=0.0)
        peak_idx = int(np.argmax(prices))
        assert years[peak_idx] == 2006
        assert prices[-1] < prices[peak_idx]

    def test_reproducible(self):
        _, a = synthetic_housing_prices(seed=3)
        _, b = synthetic_housing_prices(seed=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_years(self):
        with pytest.raises(SimulationError):
            synthetic_housing_prices(start_year=2000, collapse_year=1990)


class TestExtrapolation:
    def test_figure1_overprediction(self):
        """The Figure 1 phenomenon: trend fit through 2006 badly
        over-predicts the post-collapse years."""
        years, prices = synthetic_housing_prices()
        report = extrapolate_and_score(years, prices, fit_through=2006)
        # Prediction should exceed actual in every post-collapse year,
        # dramatically so by the final horizon year.
        assert np.all(report.errors > 0)
        assert report.terminal_gap > 0.4

    def test_no_regime_change_extrapolates_fine(self):
        t = np.arange(1970.0, 2012.0)
        y = np.exp(0.03 * (t - 1970.0))  # smooth growth, no collapse
        report = extrapolate_and_score(t, y, fit_through=2006, degree=2)
        assert report.max_relative_error < 0.1

    def test_requires_holdout(self):
        years, prices = synthetic_housing_prices()
        with pytest.raises(SimulationError):
            extrapolate_and_score(years, prices, fit_through=2020)


class TestAR1:
    def test_recovers_parameters(self, rng):
        c_true, phi_true = 1.0, 0.7
        y = [0.0]
        for _ in range(5000):
            y.append(c_true + phi_true * y[-1] + rng.normal(0.0, 0.1))
        c, phi, sd = fit_ar1(np.asarray(y))
        assert c == pytest.approx(c_true, abs=0.05)
        assert phi == pytest.approx(phi_true, abs=0.02)
        assert sd == pytest.approx(0.1, abs=0.02)

    def test_forecast_converges_to_stationary_mean(self):
        forecast = forecast_ar1(c=1.0, phi=0.5, last_value=0.0, steps=60)
        assert forecast[-1] == pytest.approx(2.0, abs=1e-6)

    def test_forecast_validation(self):
        with pytest.raises(SimulationError):
            forecast_ar1(1.0, 0.5, 0.0, steps=0)

    def test_fit_needs_three_points(self):
        with pytest.raises(SimulationError):
            fit_ar1([1.0, 2.0])


class TestAutocorrelation:
    def test_alternating_series_negative(self):
        y = np.array([1.0, -1.0] * 20)
        assert autocorrelation(y, 1) < -0.9

    def test_constant_series_zero(self):
        assert autocorrelation(np.ones(10), 1) == 0.0

    def test_lag_validation(self):
        with pytest.raises(SimulationError):
            autocorrelation(np.arange(5.0), 5)
