"""Tests for repro.stats.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stats import (
    Bernoulli,
    Discrete,
    Empirical,
    Exponential,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
)

ALL_DISTRIBUTIONS = [
    Normal(2.0, 1.5),
    LogNormal(0.1, 0.4),
    Exponential(2.5),
    Uniform(-1.0, 3.0),
    Poisson(4.0),
    Bernoulli(0.3),
    Discrete([1.0, 2.0, 5.0], [0.2, 0.3, 0.5]),
    Empirical([1.0, 1.0, 4.0, 6.0]),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: repr(d))
def test_sample_mean_matches_theoretical(dist, rng):
    samples = np.asarray(dist.sample(rng, size=60000), dtype=float)
    tolerance = 4.0 * dist.std() / math.sqrt(samples.size) + 1e-9
    assert abs(samples.mean() - dist.mean()) < tolerance


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: repr(d))
def test_sample_variance_matches_theoretical(dist, rng):
    samples = np.asarray(dist.sample(rng, size=60000), dtype=float)
    assert samples.var() == pytest.approx(dist.var(), rel=0.15, abs=1e-3)


def test_normal_log_pdf_matches_scipy(rng):
    from scipy.stats import norm

    dist = Normal(1.0, 2.0)
    x = rng.normal(size=10)
    np.testing.assert_allclose(
        dist.log_pdf(x), norm.logpdf(x, 1.0, 2.0), rtol=1e-10
    )


def test_exponential_log_pdf_negative_support():
    dist = Exponential(1.0)
    assert dist.log_pdf(np.array([-1.0]))[0] == -np.inf


def test_lognormal_pdf_zero_below_support():
    dist = LogNormal(0.0, 1.0)
    assert dist.pdf(np.array([-0.5]))[0] == 0.0
    assert dist.pdf(np.array([1.0]))[0] > 0.0


def test_uniform_log_pdf_inside_outside():
    dist = Uniform(0.0, 2.0)
    values = dist.log_pdf(np.array([1.0, 5.0]))
    assert values[0] == pytest.approx(-math.log(2.0))
    assert values[1] == -np.inf


def test_poisson_log_pdf_integers_only():
    dist = Poisson(3.0)
    values = dist.log_pdf(np.array([2.0, 2.5]))
    assert np.isfinite(values[0])
    assert values[1] == -np.inf


def test_bernoulli_support():
    dist = Bernoulli(0.25)
    assert dist.pdf(np.array([1.0]))[0] == pytest.approx(0.25)
    assert dist.pdf(np.array([0.0]))[0] == pytest.approx(0.75)
    assert dist.pdf(np.array([0.5]))[0] == 0.0


def test_discrete_mass_function():
    dist = Discrete([1.0, 2.0], [0.4, 0.6])
    assert dist.pdf(np.array([2.0]))[0] == pytest.approx(0.6)
    assert dist.pdf(np.array([3.0]))[0] == 0.0


class TestValidation:
    def test_normal_rejects_nonpositive_sigma(self):
        with pytest.raises(SimulationError):
            Normal(0.0, 0.0)

    def test_exponential_rejects_nonpositive_rate(self):
        with pytest.raises(SimulationError):
            Exponential(-1.0)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(SimulationError):
            Uniform(2.0, 1.0)

    def test_bernoulli_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            Bernoulli(1.5)

    def test_discrete_rejects_bad_probabilities(self):
        with pytest.raises(SimulationError):
            Discrete([1.0, 2.0], [0.4, 0.4])

    def test_empirical_rejects_empty(self):
        with pytest.raises(SimulationError):
            Empirical([])


@given(
    mu=st.floats(-5, 5),
    sigma=st.floats(0.1, 3.0),
)
@settings(max_examples=25, deadline=None)
def test_normal_pdf_integrates_to_one(mu, sigma):
    dist = Normal(mu, sigma)
    x = np.linspace(mu - 8 * sigma, mu + 8 * sigma, 2001)
    integral = np.trapezoid(dist.pdf(x), x)
    assert integral == pytest.approx(1.0, abs=1e-4)


@given(rate=st.floats(0.2, 5.0))
@settings(max_examples=25, deadline=None)
def test_exponential_mean_var_relationship(rate):
    dist = Exponential(rate)
    assert dist.var() == pytest.approx(dist.mean() ** 2)
