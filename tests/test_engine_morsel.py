"""Morsel-parallel columnar execution: identity at adversarial sizes.

The morsel executor's contract is the same byte-identity oracle the
columnar executor answers to — values, ``None`` placement, Python
types, row order, ``ExecutionMetrics``, and the deterministic obs
``values`` snapshot — plus one extra axis: none of it may depend on the
morsel size or the parallel backend the morsels ran on.  The suite
sweeps the null-rich corpus at sizes that never (1, 7), exactly (60),
and more than (240) cover the base tables, on all three backends.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.engine import (
    Database,
    ExecutionMetrics,
    MORSEL_ENV_VAR,
    MorselExecutor,
    Schema,
    choose_execution,
    col,
    parse_select,
    resolve_morsel_size,
    sum_,
)
from repro.engine import plan as lp
from repro.engine.columnar import (
    ColumnBatch,
    all_null,
    concat_vectors,
    vector_from_values,
)
from repro.engine.expressions import (
    Column,
    FunctionCall,
    InList,
    evaluate_batch,
)
from repro.engine.fusion import (
    FilterStage,
    FusedPipeline,
    chain_stages,
    limit_chain,
    prune_columns,
)
from repro.engine.morsel import _SCAN_CACHE, split_batch
from repro.engine.operators import HashJoinExec, SortMergeJoinExec
from repro.engine.statistics import (
    ColumnStatistics,
    TableStatistics,
    predicate_selectivity,
)
from repro.ensemble.store import result_fingerprint
from repro.errors import QueryError
from repro.parallel.backend import get_backend

from tests.test_engine_columnar import CORPUS, nullful_db  # noqa: F401

BACKENDS = ("serial", "thread", "process")

#: person has 60 rows: sizes that divide nothing (1, 7), exactly cover
#: the table (60), and exceed it (240 — a single morsel).
MORSEL_SIZES = (1, 7, 60, 240)


@pytest.fixture(autouse=True)
def _clean_morsel_env(monkeypatch):
    # The engine-morsel CI job exports these globally; this file sets
    # execution modes explicitly per test, so neutralize the ambient
    # knobs to keep every assertion deterministic.
    monkeypatch.delenv(MORSEL_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_ENGINE_EXECUTION", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    _SCAN_CACHE.clear()


class TestCrossModeIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("size", MORSEL_SIZES)
    def test_corpus_fingerprint(self, nullful_db, size, backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        baseline = result_fingerprint(
            [nullful_db.sql(sql, execution="row") for sql in CORPUS]
        )
        morsel = result_fingerprint(
            [nullful_db.sql(sql, morsel_size=size) for sql in CORPUS]
        )
        assert morsel == baseline

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corpus_obs_values(self, nullful_db, backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        snapshots = {}
        for label, kwargs in [
            ("row", {"execution": "row"}),
            ("morsel", {"morsel_size": 7}),
        ]:
            observer = obs.enable()
            observer.reset()
            try:
                for sql in CORPUS:
                    nullful_db.sql(sql, **kwargs)
                snapshots[label] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
        assert snapshots["morsel"] == snapshots["row"]

    @pytest.mark.parametrize("size", MORSEL_SIZES)
    def test_metrics_identical(self, nullful_db, size):
        sql = (
            "SELECT p.region, count(*) AS n FROM person p JOIN region r "
            "ON p.region = r.region WHERE p.age > 10 GROUP BY p.region"
        )
        counts = {}
        for label, kwargs in [
            ("row", {"execution": "row"}),
            ("morsel", {"morsel_size": size}),
        ]:
            nullful_db.metrics.reset()
            nullful_db.sql(sql, **kwargs)
            m = nullful_db.metrics
            counts[label] = (
                m.rows_scanned,
                m.rows_joined,
                m.join_pairs_examined,
                m.rows_output,
            )
        assert counts["morsel"] == counts["row"]
        assert counts["row"][0] > 0

    def test_env_knob_routes_through_morsel(self, nullful_db, monkeypatch):
        monkeypatch.setenv(MORSEL_ENV_VAR, "7")
        rows = nullful_db.sql("SELECT pid FROM person WHERE age > 30")
        baseline = nullful_db.sql(
            "SELECT pid FROM person WHERE age > 30", execution="row"
        )
        assert rows == baseline

    def test_fluent_query_morsel(self, nullful_db):
        results = {}
        for label, kwargs in [
            ("row", {"execution": "row"}),
            ("morsel", {"morsel_size": 7}),
        ]:
            metrics = ExecutionMetrics()
            q = (
                nullful_db.query("person")
                .where(col("age") > 20)
                .aggregate(sum_("income", "total"), group_by=["region"])
            )
            results[label] = (
                q.run(metrics, **kwargs), metrics.rows_scanned
            )
        assert results["morsel"] == results["row"]


class TestVectorizedLimit:
    LIMIT_SQL = "SELECT pid FROM person WHERE age > 30 LIMIT 3"

    def test_choose_execution_requires_morsel(self, nullful_db):
        plan = nullful_db.optimize_plan(parse_select(self.LIMIT_SQL))
        assert choose_execution(plan) == "row"
        assert choose_execution(plan, morsel=True) == "columnar"

    def test_limit_over_orderby_stays_row(self, nullful_db):
        plan = nullful_db.optimize_plan(
            parse_select("SELECT pid FROM person ORDER BY age LIMIT 5")
        )
        assert choose_execution(plan, morsel=True) == "row"

    @pytest.mark.parametrize("size", MORSEL_SIZES)
    def test_limit_rows_and_obs_identical(self, nullful_db, size):
        snapshots = {}
        rows = {}
        for label, kwargs in [
            ("row", {"execution": "row"}),
            ("morsel", {"morsel_size": size}),
        ]:
            observer = obs.enable()
            observer.reset()
            nullful_db.metrics.reset()
            try:
                rows[label] = nullful_db.sql(self.LIMIT_SQL, **kwargs)
                snapshots[label] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
            snapshots[label + ".scanned"] = nullful_db.metrics.rows_scanned
        assert rows["morsel"] == rows["row"]
        assert snapshots["morsel"] == snapshots["row"]
        assert snapshots["morsel.scanned"] == snapshots["row.scanned"]

    def test_limit_larger_than_result(self, nullful_db):
        sql = "SELECT pid FROM person WHERE age > 75 LIMIT 500"
        assert nullful_db.sql(sql, morsel_size=7) == nullful_db.sql(
            sql, execution="row"
        )

    def test_limit_zero(self, nullful_db):
        sql = "SELECT pid FROM person LIMIT 0"
        for size in MORSEL_SIZES:
            assert nullful_db.sql(sql, morsel_size=size) == []

    def test_limit_chain_shapes(self, nullful_db):
        qualifying = nullful_db.optimize_plan(
            parse_select(self.LIMIT_SQL)
        )
        limit = next(
            n for n in lp.walk(qualifying) if isinstance(n, lp.Limit)
        )
        assert limit_chain(limit) is not None
        over_sort = nullful_db.optimize_plan(
            parse_select("SELECT pid FROM person ORDER BY age LIMIT 2")
        )
        limit = next(
            n for n in lp.walk(over_sort) if isinstance(n, lp.Limit)
        )
        assert limit_chain(limit) is None


class TestFusedErrorParity:
    def test_non_vectorizable_function_message_matches(self):
        batch = ColumnBatch.from_rows([{"x": 1.0}, {"x": 2.0}])
        expr = FunctionCall("upper", (Column("x"),))
        with pytest.raises(QueryError) as unfused:
            evaluate_batch(expr, batch)
        pipeline = FusedPipeline([FilterStage(expr)])
        with pytest.raises(QueryError) as fused:
            pipeline(batch)
        assert str(fused.value) == str(unfused.value)

    def test_unknown_column_message_matches(self):
        batch = ColumnBatch.from_rows([{"x": 1.0}])
        expr = Column("nope")
        with pytest.raises(QueryError) as unfused:
            evaluate_batch(expr, batch)
        with pytest.raises(QueryError) as fused:
            FusedPipeline([FilterStage(expr)])(batch)
        assert str(fused.value) == str(unfused.value)


class TestFusionHelpers:
    def _scan_chain(self):
        scan = lp.Scan("t")
        filt = lp.Filter(scan, col("a") > 1)
        proj = lp.Project(filt, (col("a"),), ("a",))
        return scan, filt, proj

    def test_chain_stages_orders_source_to_top(self):
        scan, filt, proj = self._scan_chain()
        source, stages = chain_stages(proj)
        assert source is scan
        assert stages == [filt, proj]

    def test_chain_stages_none_for_non_stage(self):
        assert chain_stages(lp.Scan("t")) is None

    def test_prune_keeps_referenced_columns_only(self):
        batch = ColumnBatch.from_rows(
            [{"a": 1, "b": 2.0, "c": "x"}, {"a": 3, "b": 4.0, "c": "y"}]
        )
        _, filt, proj = self._scan_chain()
        pruned = prune_columns(batch, [filt, proj])
        assert pruned.names == ["a"]
        assert pruned.length == 2

    def test_prune_never_drops_for_filter_only_chain(self):
        batch = ColumnBatch.from_rows([{"a": 1, "b": 2.0}])
        _, filt, _ = self._scan_chain()
        assert prune_columns(batch, [filt]) is batch

    def test_split_batch_views_and_empty(self):
        batch = ColumnBatch.from_rows([{"a": i} for i in range(10)])
        morsels = split_batch(batch, 4)
        assert [m.length for m in morsels] == [4, 4, 2]
        # Slices are views over the same buffers, not copies.
        assert (
            morsels[0].columns["a"].values.base is not None
        )
        empty = ColumnBatch.from_rows([], ["a"])
        assert [m.length for m in split_batch(empty, 4)] == [0]
        with pytest.raises(QueryError):
            split_batch(batch, 0)

    def test_pipeline_counts_per_stage(self):
        batch = ColumnBatch.from_rows([{"a": i} for i in range(10)])
        _, filt, proj = self._scan_chain()
        from repro.engine.fusion import compile_stages

        out, counts = FusedPipeline(
            compile_stages([filt, proj])
        )(batch)
        assert counts == (8, 8)
        assert out.names == ["a"]


class TestMorselKnobs:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv(MORSEL_ENV_VAR, "32")
        assert resolve_morsel_size() == 32
        assert resolve_morsel_size(5) == 5
        monkeypatch.delenv(MORSEL_ENV_VAR)
        assert resolve_morsel_size() is None

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(QueryError):
            resolve_morsel_size(0)
        with pytest.raises(QueryError):
            resolve_morsel_size(-3)
        monkeypatch.setenv(MORSEL_ENV_VAR, "banana")
        with pytest.raises(QueryError):
            resolve_morsel_size()

    def test_sql_with_invalid_morsel_size(self, nullful_db):
        with pytest.raises(QueryError):
            nullful_db.sql("SELECT pid FROM person", morsel_size=0)

    def test_scan_cache_invalidated_by_mutation(self, nullful_db):
        sql = "SELECT count(*) AS n FROM person WHERE age > 0"
        before = nullful_db.sql(sql, morsel_size=7)
        nullful_db.table("person").insert(
            {"pid": 999, "age": 55, "region": "east", "income": 1.0}
        )
        after = nullful_db.sql(sql, morsel_size=7)
        assert after[0]["n"] == before[0]["n"] + 1
        assert after == nullful_db.sql(sql, execution="row")

    def test_quiet_map_emits_no_parallel_metrics(self):
        backend = get_backend("serial")
        observer = obs.enable()
        observer.reset()
        try:
            assert backend.map(abs, [-1, -2], quiet=True) == [1, 2]
            values = observer.metrics.snapshot()["values"]
            assert not any(
                key.startswith("parallel.")
                for key in values["counters"]
            )
            assert backend.map(abs, [-3], quiet=False) == [3]
            values = observer.metrics.snapshot()["values"]
            assert any(
                key.startswith("parallel.")
                for key in values["counters"]
            )
        finally:
            obs.disable()


class TestSortMergeJoin:
    def test_pair_parity_with_hash(self):
        rng = np.random.RandomState(11)
        for _ in range(50):
            lcodes = rng.randint(0, 8, size=rng.randint(0, 30)).astype(
                np.int64
            )
            rcodes = rng.randint(0, 8, size=rng.randint(0, 30)).astype(
                np.int64
            )
            hl, hr = HashJoinExec().candidate_pairs(lcodes, rcodes)
            sl, sr = SortMergeJoinExec().candidate_pairs(lcodes, rcodes)
            assert np.array_equal(hl, sl)
            assert np.array_equal(hr, sr)

    def test_join_algorithm_field_validation(self):
        with pytest.raises(QueryError):
            lp.Join(lp.Scan("a"), lp.Scan("b"), algorithm="bogus")
        join = lp.Join(lp.Scan("a"), lp.Scan("b"), algorithm="sort_merge")
        # Labels stay algorithm-independent so obs keys are stable.
        assert lp.node_label(join) == "Join(inner)"

    def _big_join_db(self, rows=600):
        db = Database()
        db.create_table("l", Schema.of(id=int, x=float))
        db.create_table("r", Schema.of(id=int, y=float))
        db.table("l").insert_many(
            {"id": i, "x": float(i)} for i in range(rows)
        )
        db.table("r").insert_many(
            {"id": i, "y": float(i) * 2} for i in range(rows)
        )
        db.analyze()
        return db

    def test_optimizer_picks_sort_merge_on_large_unique_keys(self):
        db = self._big_join_db()
        plan = db.optimize_plan(
            parse_select("SELECT l.x, r.y FROM l JOIN r ON l.id = r.id")
        )
        join = next(n for n in lp.walk(plan) if isinstance(n, lp.Join))
        assert join.algorithm == "sort_merge"

    def test_optimizer_keeps_hash_on_small_tables(self, nullful_db):
        nullful_db.analyze()
        plan = nullful_db.optimize_plan(
            parse_select(
                "SELECT p.pid FROM person p JOIN region r "
                "ON p.region = r.region"
            )
        )
        join = next(n for n in lp.walk(plan) if isinstance(n, lp.Join))
        assert join.algorithm is None

    def test_sort_merge_end_to_end_identity(self):
        db = self._big_join_db()
        sql = (
            "SELECT l.x, r.y FROM l JOIN r ON l.id = r.id "
            "WHERE l.x > 100"
        )
        base = db.sql(sql, execution="row")
        assert db.sql(sql, execution="columnar") == base
        assert db.sql(sql, morsel_size=64) == base


class TestConcatVectorsRegressions:
    def test_empty_input_yields_empty_vector(self):
        vec = concat_vectors([])
        assert len(vec) == 0
        assert vec.to_pylist() == []

    def test_mixed_int_and_all_null_promotes_like_single_batch(self):
        merged = concat_vectors(
            [vector_from_values([1, 2, 3]), all_null(2)]
        )
        single = vector_from_values([1, 2, 3, None, None])
        assert merged.kind == single.kind
        assert merged.to_pylist() == single.to_pylist()
        assert list(merged.valid) == list(single.valid)

    def test_all_null_then_float_promotes_like_single_batch(self):
        merged = concat_vectors(
            [all_null(1), vector_from_values([1.5, None])]
        )
        single = vector_from_values([None, 1.5, None])
        assert merged.kind == single.kind
        assert merged.to_pylist() == single.to_pylist()


class TestInListSelectivity:
    def _stats(self, rows=100, ndv=10, nulls=0):
        return TableStatistics(
            row_count=rows,
            columns={
                "a": ColumnStatistics(
                    distinct_count=ndv,
                    null_count=nulls,
                    minimum=0.0,
                    maximum=100.0,
                )
            },
        )

    def test_uses_distinct_counts(self):
        pred = InList(Column("a"), (1, 2, 3))
        assert predicate_selectivity(pred, self._stats(ndv=10)) == (
            pytest.approx(0.3)
        )

    def test_caps_at_ndv(self):
        pred = InList(Column("a"), tuple(range(50)))
        assert predicate_selectivity(pred, self._stats(ndv=10)) == (
            pytest.approx(1.0)
        )

    def test_deduplicates_literals(self):
        pred = InList(Column("a"), (1, 1, 1, 2))
        assert predicate_selectivity(pred, self._stats(ndv=10)) == (
            pytest.approx(0.2)
        )

    def test_scales_by_null_fraction(self):
        pred = InList(Column("a"), (1,))
        sel = predicate_selectivity(
            pred, self._stats(rows=100, ndv=10, nulls=50)
        )
        assert sel == pytest.approx(0.05)

    def test_fallback_without_column_stats(self):
        pred = InList(Column("zzz"), (1, 2))
        stats = self._stats()
        # Unknown column: classical k * equality-selectivity bound.
        assert predicate_selectivity(pred, stats) == pytest.approx(0.2)


class TestMorselExecutorDirect:
    def test_default_size_when_constructed_directly(self, nullful_db):
        executor = MorselExecutor(nullful_db)
        assert executor.morsel_size == 4096

    def test_explicit_backend_instance(self, nullful_db):
        executor = MorselExecutor(
            nullful_db, morsel_size=7, backend=get_backend("serial")
        )
        plan = lp.Project(
            lp.Filter(lp.Scan("person"), col("age") > 30),
            (col("pid"),),
            ("pid",),
        )
        rows = executor.execute(plan)
        baseline = nullful_db.execute_plan(
            plan, optimized=False, execution="row"
        )
        assert rows == baseline
