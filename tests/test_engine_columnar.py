"""Columnar execution: cross-mode byte identity, fallback, and batches.

The columnar executor's contract is byte-identical output to the row
executor — values, ``None`` placement, Python types, float bit patterns,
row order, metrics, and deterministic observability all included.  The
equivalence suite here runs one query corpus through both modes and
compares via ``result_fingerprint`` (the repo's byte-identity oracle).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.engine import (
    ColumnarExecutor,
    Database,
    EXECUTION_ENV_VAR,
    ExecutionMetrics,
    Executor,
    Schema,
    Table,
    choose_execution,
    col,
    lit,
    resolve_execution_mode,
    sum_,
)
from repro.engine import plan as lp
from repro.engine.columnar import (
    ColumnBatch,
    all_null,
    concat_vectors,
    keep_mask,
    vector_from_values,
)
from repro.engine.expressions import FunctionCall, evaluate_batch, is_vectorizable
from repro.ensemble.store import result_fingerprint
from repro.errors import QueryError
from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec
from repro.mcdb.tuple_bundle import BundledTable

MODES = ("row", "columnar")


@pytest.fixture
def nullful_db() -> Database:
    """A database rich in NULLs, mixed types, and joinable relations."""
    db = Database()
    db.create_table(
        "person", Schema.of(pid=int, age=int, region=str, income=float)
    )
    for i in range(60):
        db.table("person").insert(
            {
                "pid": i,
                "age": (i * 7) % 80 if i % 7 else None,
                "region": ["east", "west", None][i % 3],
                "income": 20000.0 + 137.5 * i if i % 5 else None,
            }
        )
    db.create_table("region", Schema.of(region=str, mult=float))
    for name, mult in [("east", 1.5), ("west", 0.75), ("north", 2.0)]:
        db.table("region").insert({"region": name, "mult": mult})
    db.create_table("empty", Schema.of(pid=int, label=str))
    return db


CORPUS = [
    "SELECT pid, age FROM person",
    "SELECT pid, age * 2 + 1 AS a2, income / 2 AS half FROM person",
    "SELECT pid FROM person WHERE age > 30 AND income < 25000",
    "SELECT pid FROM person WHERE age > 30 OR region = 'east'",
    "SELECT pid FROM person WHERE NOT (age < 50)",
    "SELECT pid FROM person WHERE age IS NULL",
    "SELECT pid FROM person WHERE region IS NOT NULL AND income IS NULL",
    "SELECT pid FROM person WHERE region IN ('east', 'north')",
    "SELECT pid FROM person WHERE age IN (7, 14, 21) OR age IS NULL",
    "SELECT pid, -age AS neg, age % 7 AS m FROM person WHERE pid > 2",
    "SELECT pid FROM person WHERE sqrt(income) > 150",
    "SELECT pid, abs(age - 40) AS d FROM person WHERE log(income) < 11",
    "SELECT count(*) AS n FROM person",
    "SELECT count(*) AS n, count(age) AS ages, sum(income) AS s, "
    "avg(age) AS m, min(income) AS lo, max(age) AS hi, "
    "var(income) AS v, std(age) AS sd FROM person",
    "SELECT region, count(*) AS n, sum(income) AS s, avg(age) AS m "
    "FROM person GROUP BY region",
    "SELECT region, age, count(*) AS n FROM person GROUP BY region, age",
    "SELECT p.pid, r.mult FROM person p JOIN region r "
    "ON p.region = r.region",
    "SELECT p.pid, r.mult FROM person p LEFT JOIN region r "
    "ON p.region = r.region",
    "SELECT p.pid, r.mult FROM person p JOIN region r "
    "ON p.region = r.region WHERE p.age > 20",
    "SELECT a.pid AS x, b.pid AS y FROM person a JOIN person b "
    "ON a.age = b.age WHERE a.pid < b.pid",
    "SELECT region FROM person WHERE pid < 9 "
    "UNION SELECT region FROM region",
    "SELECT region, count(*) AS n FROM person GROUP BY region "
    "ORDER BY n DESC",
    "SELECT pid, age FROM person ORDER BY age LIMIT 5",
    "SELECT pid, upper(region) AS u FROM person WHERE age > 10",
    "SELECT count(DISTINCT region) AS r FROM person",
    "SELECT pid FROM empty",
    "SELECT label, count(*) AS n FROM empty GROUP BY label",
    "SELECT p.pid, e.label FROM person p LEFT JOIN empty e "
    "ON p.pid = e.pid WHERE p.pid < 4",
    "SELECT count(*) AS n FROM empty",
]


class TestCrossModeEquivalence:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_row_and_columnar_byte_identical(self, nullful_db, sql):
        row = nullful_db.sql(sql, execution="row")
        columnar = nullful_db.sql(sql, execution="columnar")
        assert result_fingerprint(row) == result_fingerprint(columnar)
        assert row == columnar

    def test_whole_corpus_fingerprint(self, nullful_db):
        fingerprints = {
            mode: result_fingerprint(
                [nullful_db.sql(sql, execution=mode) for sql in CORPUS]
            )
            for mode in MODES
        }
        assert fingerprints["row"] == fingerprints["columnar"]

    def test_metrics_identical(self, nullful_db):
        sql = (
            "SELECT p.region, count(*) AS n FROM person p JOIN region r "
            "ON p.region = r.region WHERE p.age > 10 GROUP BY p.region"
        )
        counts = {}
        for mode in MODES:
            nullful_db.metrics.reset()
            nullful_db.sql(sql, execution=mode)
            m = nullful_db.metrics
            counts[mode] = (
                m.rows_scanned,
                m.rows_joined,
                m.join_pairs_examined,
                m.rows_output,
            )
        assert counts["row"] == counts["columnar"]
        assert counts["row"][0] > 0 and counts["row"][1] > 0

    def test_obs_values_identical(self, nullful_db):
        snapshots = {}
        for mode in MODES:
            observer = obs.enable()
            observer.reset()
            try:
                for sql in CORPUS:
                    nullful_db.sql(sql, execution=mode)
                snapshots[mode] = observer.metrics.snapshot()["values"]
            finally:
                obs.disable()
        assert snapshots["row"] == snapshots["columnar"]

    def test_fluent_query_cross_mode(self, nullful_db):
        results = {}
        for mode in MODES:
            metrics = ExecutionMetrics()
            q = (
                nullful_db.query("person")
                .where(col("age") > 20)
                .aggregate(sum_("income", "total"), group_by=["region"])
            )
            results[mode] = (q.run(metrics, execution=mode), metrics.rows_scanned)
        assert results["row"] == results["columnar"]


class TestErrorsMatch:
    @pytest.mark.parametrize(
        "sql, exc",
        [
            ("SELECT pid, income / (pid - 3) AS r FROM person", ZeroDivisionError),
            ("SELECT pid, sqrt(0 - income) AS r FROM person", ValueError),
            ("SELECT log(age - age) AS r FROM person WHERE age IS NOT NULL", ValueError),
        ],
    )
    def test_same_exception_both_modes(self, nullful_db, sql, exc):
        for mode in MODES:
            with pytest.raises(exc):
                nullful_db.sql(sql, execution=mode)

    def test_join_clobber_both_modes(self, nullful_db):
        nullful_db.create_table("clash", Schema.of(pid=int, age=int))
        nullful_db.table("clash").insert({"pid": 1, "age": 99})
        sql = "SELECT pid FROM person JOIN clash ON pid = pid"
        for mode in MODES:
            with pytest.raises(QueryError):
                nullful_db.sql(sql, execution=mode)


class TestExecutionModeKnob:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV_VAR, raising=False)
        assert resolve_execution_mode() == "auto"

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV_VAR, "row")
        assert resolve_execution_mode() == "row"
        assert resolve_execution_mode("columnar") == "columnar"

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError):
            resolve_execution_mode("vectorized")

    def test_auto_picks_columnar(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV_VAR, raising=False)
        plan = lp.Filter(lp.Scan("t"), col("x") > lit(1))
        assert choose_execution(plan) == "columnar"

    def test_limit_plans_run_row_mode(self):
        # The row pipeline short-circuits under LIMIT (its operator
        # counters see only pulled rows); a materializing batch cannot
        # replicate that, so LIMIT plans stay row-mode even when forced.
        plan = lp.Limit(lp.Scan("t"), 3)
        assert choose_execution(plan, "columnar") == "row"
        assert choose_execution(plan, "auto") == "row"


class TestRowFallback:
    def test_string_function_not_vectorizable(self):
        expr = FunctionCall("upper", (col("region"),))
        assert not is_vectorizable(expr)
        assert is_vectorizable(col("age") * 2 + 1)
        assert is_vectorizable(FunctionCall("sqrt", (col("age"),)))

    def test_fallback_still_batches_children(self, nullful_db):
        # upper() forces the Project to row mode, but its Scan child and
        # the Filter above stay correct end-to-end.
        sql = (
            "SELECT upper(region) AS u, count(*) AS n FROM person "
            "WHERE region IS NOT NULL GROUP BY upper(region)"
        )
        assert nullful_db.sql(sql, execution="columnar") == nullful_db.sql(
            sql, execution="row"
        )

    def test_distinct_aggregate_falls_back(self, nullful_db):
        sql = "SELECT count(DISTINCT age) AS n FROM person"
        assert nullful_db.sql(sql, execution="columnar") == nullful_db.sql(
            sql, execution="row"
        )

    def test_executor_direct_fallback(self, nullful_db):
        # A plan the batch layer rejects wholesale still executes.
        plan = lp.Distinct(lp.Scan("region"))
        rows_row = Executor(nullful_db).execute(plan)
        rows_col = ColumnarExecutor(nullful_db).execute(plan)
        assert rows_row == rows_col


class TestColumnVectors:
    def test_homogeneous_int_packs(self):
        vec = vector_from_values([1, 2, None, 4])
        assert vec.kind == "int"
        assert vec.to_pylist() == [1, 2, None, 4]
        assert all(isinstance(v, int) for v in vec.to_pylist() if v is not None)

    def test_mixed_types_stay_objects(self):
        vec = vector_from_values([1, 2.5, None])
        assert vec.kind == "object"
        assert vec.to_pylist() == [1, 2.5, None]

    def test_huge_ints_stay_objects(self):
        big = 2 ** 60
        vec = vector_from_values([big, 1])
        assert vec.kind == "object"
        assert vec.to_pylist() == [big, 1]

    def test_all_null(self):
        vec = all_null(3)
        assert vec.to_pylist() == [None, None, None]

    def test_concat_mismatched_kinds(self):
        merged = concat_vectors(
            [vector_from_values([1, 2]), vector_from_values(["a"])]
        )
        assert merged.to_pylist() == [1, 2, "a"]

    def test_keep_mask_is_literal_true(self):
        # The row filter keeps rows only when the predicate is the
        # literal True; truthy ints are dropped.
        vec = vector_from_values([1, 0, True, False, None])
        assert keep_mask(vec).tolist() == [False, False, True, False, False]

    def test_batch_roundtrip(self):
        table = Table("t", Schema.of(x=int, s=str))
        table.insert({"x": 1, "s": ""})
        table.insert({"x": None, "s": None})
        batch = ColumnBatch.from_table(table, alias="t")
        assert batch.names == ["t.x", "t.s"]
        assert batch.to_rows() == [
            {"t.x": 1, "t.s": ""},
            {"t.x": None, "t.s": None},
        ]

    def test_resolve_matches_row_semantics(self):
        batch = ColumnBatch.from_rows([{"a.x": 1, "b.x": 2, "y": 3}])
        assert batch.resolve("y").to_pylist() == [3]
        assert batch.resolve("a.x").to_pylist() == [1]
        with pytest.raises(QueryError):
            batch.resolve("x")

    def test_evaluate_batch_three_valued_logic(self):
        batch = ColumnBatch.from_rows(
            [
                {"a": True, "b": None},
                {"a": False, "b": None},
                {"a": None, "b": None},
                {"a": True, "b": False},
            ]
        )
        conj = evaluate_batch(col("a") & col("b"), batch)
        disj = evaluate_batch(col("a") | col("b"), batch)
        assert conj.to_pylist() == [None, False, None, False]
        assert disj.to_pylist() == [True, None, None, True]


class TestMcdbColumnarBundles:
    @pytest.fixture
    def mcdb(self) -> MonteCarloDatabase:
        db = Database()
        db.create_table("patients", Schema.of(pid=int, gender=str))
        for i in range(20):
            db.table("patients").insert(
                {"pid": i, "gender": "f" if i % 2 else "m"}
            )
        db.create_table("sbp_param", Schema.of(mean=float, std=float))
        db.table("sbp_param").insert({"mean": 120.0, "std": 10.0})
        mc = MonteCarloDatabase(db, seed=11)
        mc.register_random_table(
            RandomTableSpec(
                name="sbp_data",
                vg=NormalVG(),
                outer_table="patients",
                parameters="SELECT mean, std FROM sbp_param",
                select={
                    "pid": "outer.pid",
                    "gender": "outer.gender",
                    "sbp": "vg.value",
                },
            )
        )
        return mc

    def test_columnar_samples_byte_identical(self, mcdb):
        def q(bundles, _db):
            t = bundles["sbp_data"].filter(lambda r: r["sbp"] > 110.0)
            return t.aggregate_avg("sbp")

        row = mcdb.run_bundled(q, n_mc=40, columnar=False).samples
        columnar = mcdb.run_bundled(q, n_mc=40, columnar=True).samples
        np.testing.assert_array_equal(row, columnar)

    def test_columnar_grouped_and_extremes(self, mcdb):
        def q(bundles, _db):
            t = bundles["sbp_data"]
            groups = t.grouped_aggregate_sum("gender", "sbp")
            return groups["f"] - groups["m"] + t.aggregate_max("sbp")

        row = mcdb.run_bundled(q, n_mc=25, columnar=False).samples
        columnar = mcdb.run_bundled(q, n_mc=25, columnar=True).samples
        np.testing.assert_array_equal(row, columnar)

    def test_env_knob_selects_columnar_bundles(self, mcdb, monkeypatch):
        seen = {}

        def q(bundles, _db):
            seen["type"] = type(bundles["sbp_data"]).__name__
            return bundles["sbp_data"].aggregate_count().astype(float)

        monkeypatch.setenv(EXECUTION_ENV_VAR, "columnar")
        mcdb.run_bundled(q, n_mc=5)
        assert seen["type"] == "ColumnarBundleTable"
        monkeypatch.delenv(EXECUTION_ENV_VAR)
        mcdb.run_bundled(q, n_mc=5)
        assert seen["type"] == "BundledTable"

    def test_non_uniform_bundle_stays_rowwise(self):
        rows = [
            {"x": np.ones(4)},
            {"x": np.ones(4), "extra": 1.0},
        ]
        bundle = BundledTable("odd", rows, 4)
        with pytest.raises(QueryError):
            bundle.to_columnar()
