"""Tests for simulated maximum likelihood via the particle filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assimilation import (
    LinearGaussianSSM,
    estimate_parameters,
    exact_log_likelihood,
    linear_gaussian_builder,
    pf_log_likelihood,
)
from repro.errors import FilteringError
from repro.stats import make_rng


@pytest.fixture(scope="module")
def scenario():
    true = LinearGaussianSSM(a=0.8, q=0.4, r=0.5)
    _, observations = true.simulate(120, make_rng(0))
    return true, observations


class TestPfLogLikelihood:
    def test_matches_exact_for_linear_gaussian(self, scenario):
        true, observations = scenario
        builder = linear_gaussian_builder(true)
        estimated = pf_log_likelihood(
            builder,
            np.array([true.a, true.q]),
            observations,
            n_particles=2000,
            seed=1,
        )
        exact = exact_log_likelihood(true, observations)
        assert estimated == pytest.approx(exact, abs=2.0)

    def test_common_random_numbers_deterministic(self, scenario):
        true, observations = scenario
        builder = linear_gaussian_builder(true)
        theta = np.array([0.7, 0.5])
        a = pf_log_likelihood(builder, theta, observations, 200, seed=2)
        b = pf_log_likelihood(builder, theta, observations, 200, seed=2)
        assert a == b

    def test_true_parameters_beat_wrong_ones(self, scenario):
        true, observations = scenario
        builder = linear_gaussian_builder(true)
        at_truth = pf_log_likelihood(
            builder, np.array([true.a, true.q]), observations, 1000, seed=3
        )
        far = pf_log_likelihood(
            builder, np.array([0.1, 3.0]), observations, 1000, seed=3
        )
        assert at_truth > far


class TestEstimateParameters:
    def test_recovers_dynamics_parameters(self, scenario):
        true, observations = scenario
        builder = linear_gaussian_builder(true)
        result = estimate_parameters(
            builder,
            observations,
            initial=[0.5, 1.0],
            bounds=[(0.0, 0.99), (0.05, 3.0)],
            n_particles=400,
            seed=4,
        )
        # Exact MLE differs from truth by sampling error; accept a
        # generous band around the true values.
        assert result.theta[0] == pytest.approx(true.a, abs=0.15)
        assert result.theta[1] == pytest.approx(true.q, abs=0.3)
        assert np.isfinite(result.log_likelihood)

    def test_estimated_likelihood_at_mle_not_worse_than_truth(self, scenario):
        true, observations = scenario
        builder = linear_gaussian_builder(true)
        result = estimate_parameters(
            builder,
            observations,
            initial=[0.5, 1.0],
            bounds=[(0.0, 0.99), (0.05, 3.0)],
            n_particles=400,
            seed=5,
        )
        at_truth = pf_log_likelihood(
            builder,
            np.array([true.a, true.q]),
            observations,
            400,
            seed=5,
        )
        assert result.log_likelihood >= at_truth - 1.0

    def test_empty_observations_rejected(self, scenario):
        true, _ = scenario
        with pytest.raises(FilteringError):
            estimate_parameters(
                linear_gaussian_builder(true),
                [],
                initial=[0.5, 0.5],
                bounds=[(0.0, 1.0), (0.1, 2.0)],
            )
