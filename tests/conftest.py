"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database, Schema


@pytest.fixture
def rng() -> np.random.Generator:
    """A reproducible numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def people_db() -> Database:
    """A small demographic database used across engine/mcdb tests."""
    db = Database()
    db.create_table(
        "person", Schema.of(pid=int, age=int, region=str, income=float)
    )
    regions = ["east", "west"]
    for i in range(20):
        db.table("person").insert(
            {
                "pid": i,
                "age": (i * 7) % 80,
                "region": regions[i % 2],
                "income": 20000.0 + 1000.0 * i,
            }
        )
    return db
