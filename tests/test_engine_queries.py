"""Tests for the fluent query API and executor."""

from __future__ import annotations

import pytest

from repro.engine import (
    Database,
    ExecutionMetrics,
    Schema,
    avg,
    col,
    count,
    lit,
    max_,
    min_,
    sum_,
)
from repro.errors import CatalogError, QueryError


class TestScanFilterProject:
    def test_filter(self, people_db):
        rows = people_db.query("person").where(col("age") < 10).run()
        assert all(r["age"] < 10 for r in rows)
        assert len(rows) > 0

    def test_project_with_computed(self, people_db):
        rows = (
            people_db.query("person")
            .select("pid", doubled=col("income") * 2)
            .run()
        )
        assert set(rows[0]) == {"pid", "doubled"}

    def test_alias_prefixing(self, people_db):
        rows = people_db.query("person", alias="p").limit(1).run()
        assert "p.pid" in rows[0]

    def test_empty_select_raises(self, people_db):
        with pytest.raises(QueryError):
            people_db.query("person").select()


class TestJoins:
    def test_hash_join(self, people_db):
        people_db.create_table("bonus", Schema.of(pid=int, amount=float))
        for i in range(0, 20, 2):
            people_db.table("bonus").insert({"pid": i, "amount": 10.0 * i})
        rows = (
            people_db.query("person", alias="p")
            .join(people_db.query("bonus", alias="b"), on=("p.pid", "b.pid"))
            .run()
        )
        assert len(rows) == 10
        assert all(r["p.pid"] == r["b.pid"] for r in rows)

    def test_left_join_preserves_unmatched(self, people_db):
        people_db.create_table("bonus", Schema.of(pid=int, amount=float))
        people_db.table("bonus").insert({"pid": 0, "amount": 5.0})
        rows = (
            people_db.query("person", alias="p")
            .join(
                people_db.query("bonus", alias="b"),
                on=("p.pid", "b.pid"),
                how="left",
            )
            .run()
        )
        assert len(rows) == 20
        unmatched = [r for r in rows if r["b.amount"] is None]
        assert len(unmatched) == 19

    def test_cross_join(self, people_db):
        people_db.create_table("two", Schema.of(k=int))
        people_db.table("two").insert_many([{"k": 1}, {"k": 2}])
        rows = (
            people_db.query("person", alias="p")
            .join(people_db.query("two", alias="t"))
            .run()
        )
        assert len(rows) == 40

    def test_theta_join_nested_loop(self, people_db):
        people_db.create_table("cut", Schema.of(threshold=int))
        people_db.table("cut").insert({"threshold": 40})
        rows = (
            people_db.query("person", alias="p")
            .join(
                people_db.query("cut", alias="c"),
                on=col("p.age") > col("c.threshold"),
            )
            .run()
        )
        assert all(r["p.age"] > 40 for r in rows)

    def test_join_metrics_counted(self, people_db):
        people_db.create_table("other", Schema.of(pid=int))
        people_db.table("other").insert({"pid": 3})
        metrics = ExecutionMetrics()
        (
            people_db.query("person", alias="p")
            .join(people_db.query("other", alias="o"), on=("p.pid", "o.pid"))
            .run(metrics)
        )
        assert metrics.rows_joined == 1
        assert metrics.rows_scanned == 21


class TestAggregation:
    def test_global_count(self, people_db):
        n = people_db.query("person").aggregate(count(alias="n")).scalar()
        assert n == 20

    def test_group_by_region(self, people_db):
        rows = (
            people_db.query("person")
            .aggregate(
                count(alias="n"),
                avg("income", alias="mean_income"),
                group_by=["region"],
            )
            .run()
        )
        assert len(rows) == 2
        assert {r["region"] for r in rows} == {"east", "west"}
        assert all(r["n"] == 10 for r in rows)

    def test_min_max_sum(self, people_db):
        row = (
            people_db.query("person")
            .aggregate(
                min_("income", alias="lo"),
                max_("income", alias="hi"),
                sum_("income", alias="total"),
            )
            .run()[0]
        )
        assert row["lo"] == 20000.0
        assert row["hi"] == 39000.0
        assert row["total"] == pytest.approx(sum(20000.0 + 1000 * i for i in range(20)))

    def test_count_distinct(self, people_db):
        n = (
            people_db.query("person")
            .aggregate(count("region", alias="n", distinct=True))
            .scalar()
        )
        assert n == 2

    def test_aggregate_over_empty_is_one_row(self, people_db):
        row = (
            people_db.query("person")
            .where(lit(False))
            .aggregate(count(alias="n"), avg("income", alias="m"))
            .run()
        )
        assert row == [{"n": 0, "m": None}]

    def test_var_std(self, people_db):
        import numpy as np

        incomes = np.array(people_db.table("person").column_values("income"))
        row = (
            people_db.query("person")
            .aggregate(
                __import__("repro.engine", fromlist=["agg"]).agg(
                    "var", "income", alias="v"
                )
            )
            .run()[0]
        )
        assert row["v"] == pytest.approx(float(incomes.var(ddof=1)))


class TestOrderLimitDistinctUnion:
    def test_order_by_desc(self, people_db):
        rows = (
            people_db.query("person")
            .order_by("income", descending=True)
            .limit(3)
            .run()
        )
        incomes = [r["income"] for r in rows]
        assert incomes == sorted(incomes, reverse=True)
        assert len(rows) == 3

    def test_order_nulls_last(self, people_db):
        people_db.table("person").insert(
            {"pid": 99, "age": 1, "region": "east", "income": None}
        )
        rows = people_db.query("person").order_by("income").run()
        assert rows[-1]["income"] is None

    def test_distinct(self, people_db):
        rows = people_db.query("person").select("region").distinct().run()
        assert len(rows) == 2

    def test_union(self, people_db):
        a = people_db.query("person").select("pid").limit(2)
        b = people_db.query("person").select("pid").limit(3)
        assert a.union(b).count_rows() == 5

    def test_union_mismatch(self, people_db):
        a = people_db.query("person").select("pid")
        b = people_db.query("person").select("age")
        with pytest.raises(QueryError):
            a.union(b).run()

    def test_scalar_requires_1x1(self, people_db):
        with pytest.raises(QueryError):
            people_db.query("person").select("pid").scalar()


class TestCatalog:
    def test_duplicate_table(self, people_db):
        with pytest.raises(CatalogError):
            people_db.create_table("person", Schema.of(x=int))

    def test_drop(self, people_db):
        people_db.drop_table("person")
        assert "person" not in people_db

    def test_drop_unknown(self, people_db):
        with pytest.raises(CatalogError):
            people_db.drop_table("nope")

    def test_unknown_table_query(self, people_db):
        with pytest.raises(CatalogError):
            people_db.query("nope")

    def test_analyze_collects_stats(self, people_db):
        people_db.analyze()
        stats = people_db.statistics("person")
        assert stats.row_count == 20
        assert stats.columns["region"].distinct_count == 2
        assert stats.columns["income"].minimum == 20000.0
