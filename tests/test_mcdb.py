"""Tests for the Monte Carlo database (MCDB)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database, Schema
from repro.errors import QueryError, SimulationError, VGFunctionError
from repro.mcdb import (
    BackwardRandomWalkVG,
    BayesianDemandVG,
    BundledTable,
    DiscreteChoiceVG,
    MonteCarloDatabase,
    NormalVG,
    PoissonVG,
    RandomTableSpec,
    StockOptionVG,
    threshold_query,
)
from repro.mcdb.risk import conditional_value_at_risk, extreme_quantile, value_at_risk


@pytest.fixture
def sbp_mcdb():
    """The paper's SBP_DATA blood-pressure example."""
    db = Database()
    db.create_table("patients", Schema.of(pid=int, gender=str))
    for i in range(30):
        db.table("patients").insert(
            {"pid": i, "gender": "f" if i % 2 else "m"}
        )
    db.create_table("sbp_param", Schema.of(mean=float, std=float))
    db.table("sbp_param").insert({"mean": 120.0, "std": 10.0})
    mc = MonteCarloDatabase(db, seed=42)
    mc.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters="SELECT mean, std FROM sbp_param",
            select={"pid": "outer.pid", "gender": "outer.gender", "sbp": "vg.value"},
        )
    )
    return mc


class TestVGFunctions:
    def test_normal_vg_moments(self, rng):
        vg = NormalVG()
        bundle = vg.generate_bundle(rng, {"mean": 5.0, "std": 2.0}, 20000)
        assert bundle["value"].mean() == pytest.approx(5.0, abs=0.1)
        assert bundle["value"].std() == pytest.approx(2.0, abs=0.1)

    def test_normal_vg_missing_params(self, rng):
        with pytest.raises(VGFunctionError):
            NormalVG().generate(rng, {"mean": 1.0})

    def test_poisson_vg(self, rng):
        bundle = PoissonVG().generate_bundle(rng, {"mean": 3.0}, 10000)
        assert bundle["value"].mean() == pytest.approx(3.0, abs=0.15)

    def test_discrete_choice_vg(self, rng):
        params = {"values": [1.0, 10.0], "probabilities": [0.5, 0.5]}
        bundle = DiscreteChoiceVG().generate_bundle(rng, params, 5000)
        assert set(np.unique(bundle["value"])) <= {1.0, 10.0}

    def test_backward_walk_positive_prices(self, rng):
        vg = BackwardRandomWalkVG()
        params = {"current_price": 100.0, "steps_back": 5, "sigma": 0.05}
        bundle = vg.generate_bundle(rng, params, 1000)
        assert np.all(bundle["prior_price"] > 0)
        # Median should be near the current price (symmetric log walk).
        assert np.median(bundle["prior_price"]) == pytest.approx(100.0, rel=0.05)

    def test_stock_option_value_nonnegative(self, rng):
        vg = StockOptionVG()
        params = {
            "price": 100.0,
            "strike": 105.0,
            "drift": 0.0,
            "volatility": 0.02,
            "steps": 5,
        }
        bundle = vg.generate_bundle(rng, params, 2000)
        assert np.all(bundle["option_value"] >= 0)
        assert (bundle["option_value"] > 0).mean() < 0.5  # mostly OTM

    def test_bayesian_demand_shrinks_to_history(self, rng):
        vg = BayesianDemandVG()
        base = {
            "price": 10.0,
            "base": 3.0,
            "prior_mean": 1.0,
            "prior_sd": 1.0,
            "noise_sd": 0.5,
        }
        no_history = vg.generate_bundle(
            rng, {**base, "history_mean": 2.0, "history_n": 0}, 4000
        )
        rich_history = vg.generate_bundle(
            rng, {**base, "history_mean": 2.0, "history_n": 100}, 4000
        )
        assert no_history["elasticity"].mean() == pytest.approx(1.0, abs=0.1)
        assert rich_history["elasticity"].mean() == pytest.approx(2.0, abs=0.1)
        # Posterior contracts with more data.
        assert rich_history["elasticity"].std() < no_history["elasticity"].std()

    def test_scalar_and_bundle_agree_in_distribution(self, rng):
        vg = NormalVG()
        params = {"mean": 0.0, "std": 1.0}
        scalars = [vg.generate(rng, params)["value"] for _ in range(4000)]
        assert np.mean(scalars) == pytest.approx(0.0, abs=0.08)


class TestRandomTable:
    def test_instantiate_shape(self, sbp_mcdb, rng):
        table = sbp_mcdb._specs["sbp_data"].instantiate(sbp_mcdb.db, rng)
        assert len(table) == 30
        assert set(table.schema.names) == {"pid", "gender", "sbp"}

    def test_parameter_query_must_return_one_row(self, rng):
        db = Database()
        db.create_table("outer_t", Schema.of(k=int))
        db.table("outer_t").insert({"k": 1})
        db.create_table("params", Schema.of(mean=float, std=float))
        spec = RandomTableSpec(
            name="r",
            vg=NormalVG(),
            outer_table="outer_t",
            parameters="SELECT mean, std FROM params",
        )
        with pytest.raises(VGFunctionError):
            spec.instantiate(db, rng)

    def test_row_dependent_parameters(self, rng):
        db = Database()
        db.create_table("items", Schema.of(iid=int, base=float))
        db.table("items").insert_many(
            [{"iid": 1, "base": 10.0}, {"iid": 2, "base": 1000.0}]
        )
        spec = RandomTableSpec(
            name="noisy",
            vg=NormalVG(),
            outer_table="items",
            parameters=lambda _db, row: {"mean": row["base"], "std": 1e-9},
        )
        table = spec.instantiate(db, rng)
        values = dict(zip(table.column_values("iid"), table.column_values("value")))
        assert values[1] == pytest.approx(10.0, abs=1e-6)
        assert values[2] == pytest.approx(1000.0, abs=1e-6)

    def test_column_collision_detected(self, rng):
        db = Database()
        db.create_table("outer_t", Schema.of(value=float))
        db.table("outer_t").insert({"value": 1.0})
        spec = RandomTableSpec(
            name="r",
            vg=NormalVG(),
            outer_table="outer_t",
            parameters={"mean": 0.0, "std": 1.0},
        )
        with pytest.raises(VGFunctionError):
            spec.instantiate(db, rng)

    def test_empty_outer_table(self, rng):
        db = Database()
        db.create_table("outer_t", Schema.of(k=int))
        spec = RandomTableSpec(
            name="r", vg=NormalVG(), outer_table="outer_t",
            parameters={"mean": 0.0, "std": 1.0},
        )
        with pytest.raises(VGFunctionError):
            spec.instantiate(db, rng)


class TestBundledTable:
    def _bundle(self, n_mc=100):
        rows = [
            {"pid": 0, "value": np.linspace(0, 1, n_mc)},
            {"pid": 1, "value": np.linspace(1, 2, n_mc)},
        ]
        return BundledTable("b", rows, n_mc)

    def test_aggregate_sum(self):
        b = self._bundle()
        total = b.aggregate_sum("value")
        np.testing.assert_allclose(
            total, np.linspace(0, 1, 100) + np.linspace(1, 2, 100)
        )

    def test_filter_masks_iterations(self):
        b = self._bundle()
        filtered = b.filter(lambda row: row["value"] > 0.5)
        counts = filtered.aggregate_count()
        assert counts.min() >= 1  # row 1 always > 0.5 after halfway
        assert counts.max() == 2

    def test_avg_handles_empty_iterations(self):
        rows = [{"pid": 0, "value": np.array([1.0, 10.0])}]
        b = BundledTable("b", rows, 2)
        filtered = b.filter(lambda row: row["value"] > 5.0)
        avg = filtered.aggregate_avg("value")
        # Row absent in iteration 0 -> table empty there -> no rows at all,
        # so the filtered table has the row masked out in iteration 0.
        assert np.isnan(avg[0])
        assert avg[1] == 10.0

    def test_min_max(self):
        b = self._bundle()
        np.testing.assert_allclose(b.aggregate_min("value"), np.linspace(0, 1, 100))
        np.testing.assert_allclose(b.aggregate_max("value"), np.linspace(1, 2, 100))

    def test_derive(self):
        b = self._bundle().derive("scaled", lambda row: row["value"] * 10)
        np.testing.assert_allclose(
            b.aggregate_max("scaled"), np.linspace(1, 2, 100) * 10
        )

    def test_grouped_sum(self):
        b = self._bundle()
        groups = b.grouped_aggregate_sum("pid", "value")
        assert set(groups) == {0, 1}
        np.testing.assert_allclose(groups[0], np.linspace(0, 1, 100))

    def test_join_deterministic(self):
        b = self._bundle()
        other = [{"pid": 0, "weight": 2.0}, {"pid": 1, "weight": 3.0}]
        joined = b.join_deterministic(other, "pid", "pid")
        assert len(joined) == 2
        weighted = joined.derive("w", lambda r: r["value"] * r["weight"])
        assert weighted.aggregate_sum("w")[0] == pytest.approx(
            0.0 * 2.0 + 1.0 * 3.0
        )

    def test_join_uncertain_key_rejected(self):
        b = self._bundle()
        with pytest.raises(QueryError):
            b.join_deterministic([{"value": 1}], "value", "value")

    def test_bad_predicate_shape(self):
        b = self._bundle()
        with pytest.raises(QueryError):
            b.filter(lambda row: np.array([True]))


class TestMonteCarloDatabase:
    def test_naive_expectation(self, sbp_mcdb):
        dist = sbp_mcdb.run_naive(
            lambda inst: inst.sql("SELECT AVG(sbp) AS m FROM sbp_data")[0]["m"],
            n_mc=60,
        )
        assert dist.expectation() == pytest.approx(120.0, abs=1.5)

    def test_bundled_expectation_matches_naive(self, sbp_mcdb):
        naive = sbp_mcdb.run_naive(
            lambda inst: inst.sql("SELECT AVG(sbp) AS m FROM sbp_data")[0]["m"],
            n_mc=80,
        )
        bundled = sbp_mcdb.run_bundled(
            lambda bundles, _db: bundles["sbp_data"].aggregate_avg("sbp"),
            n_mc=80,
        )
        assert bundled.expectation() == pytest.approx(
            naive.expectation(), abs=1.0
        )
        assert bundled.n == 80

    def test_probability_estimates(self, sbp_mcdb):
        dist = sbp_mcdb.run_bundled(
            lambda bundles, _db: bundles["sbp_data"].aggregate_avg("sbp"),
            n_mc=200,
        )
        p = dist.probability_above(120.0)
        assert 0.2 < p < 0.8

    def test_duplicate_registration(self, sbp_mcdb):
        with pytest.raises(SimulationError):
            sbp_mcdb.register_random_table(
                RandomTableSpec(name="sbp_data", vg=NormalVG())
            )

    def test_reproducible_across_runs(self, sbp_mcdb):
        q = lambda bundles, _db: bundles["sbp_data"].aggregate_avg("sbp")
        a = sbp_mcdb.run_bundled(q, n_mc=10).samples
        b = sbp_mcdb.run_bundled(q, n_mc=10).samples
        np.testing.assert_array_equal(a, b)

    def test_bad_bundled_shape(self, sbp_mcdb):
        with pytest.raises(SimulationError):
            sbp_mcdb.run_bundled(lambda b, d: np.zeros(3), n_mc=5)


class TestRisk:
    def test_threshold_query(self):
        groups = {
            "east": np.array([0.03] * 60 + [0.0] * 40),
            "west": np.array([0.03] * 30 + [0.0] * 70),
        }
        results = threshold_query(
            groups, lambda decline: decline > 0.02, min_probability=0.5
        )
        verdicts = {r.group: r.qualifies for r in results}
        assert verdicts == {"east": True, "west": False}
        assert results[0].group == "east"  # sorted by probability

    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            threshold_query({}, lambda x: x > 0, min_probability=0.0)

    def test_var_cvar_ordering(self, rng):
        from repro.mcdb import QueryDistribution

        dist = QueryDistribution(rng.lognormal(0, 1, size=2000))
        var = value_at_risk(dist, 0.95)
        cvar = conditional_value_at_risk(dist, 0.95)
        assert cvar >= var

    def test_extreme_quantile_extrapolates_beyond_sample(self, rng):
        # Pareto(alpha=2) data: true 0.999 quantile is ~31.6
        alpha = 2.0
        data = (1.0 - rng.uniform(size=2000)) ** (-1.0 / alpha)
        est = extreme_quantile(data, level=0.999)
        true_q = (1.0 / 0.001) ** (1.0 / alpha)
        # Tail extrapolation should land within a factor ~2 of truth and
        # recover the tail index roughly.
        assert 0.4 * true_q < est.tail_extrapolated < 2.5 * true_q
        assert est.tail_index == pytest.approx(alpha, rel=0.5)

    def test_extreme_quantile_validation(self):
        with pytest.raises(SimulationError):
            extreme_quantile([1.0] * 10, level=0.99)
        with pytest.raises(SimulationError):
            extreme_quantile(list(range(100)), level=0.4)


class TestBundleQuantiles:
    def test_per_iteration_quantile(self):
        rows = [
            {"pid": i, "value": np.full(3, float(i))} for i in range(11)
        ]
        bundle = BundledTable("b", rows, 3)
        medians = bundle.aggregate_quantile("value", 0.5)
        np.testing.assert_allclose(medians, [5.0, 5.0, 5.0])

    def test_quantile_respects_masks(self):
        rows = [
            {"pid": i, "value": np.full(2, float(i))} for i in range(10)
        ]
        bundle = BundledTable("b", rows, 2).filter(
            lambda row: row["value"] >= 5.0
        )
        q0 = bundle.aggregate_quantile("value", 0.0)
        np.testing.assert_allclose(q0, [5.0, 5.0])

    def test_quantile_empty_iteration_nan(self):
        rows = [{"pid": 0, "value": np.array([1.0, 10.0])}]
        bundle = BundledTable("b", rows, 2).filter(
            lambda row: row["value"] > 5.0
        )
        q = bundle.aggregate_quantile("value", 0.5)
        assert np.isnan(q[0]) and q[1] == 10.0

    def test_quantile_level_validation(self):
        rows = [{"pid": 0, "value": np.array([1.0])}]
        with pytest.raises(QueryError):
            BundledTable("b", rows, 1).aggregate_quantile("value", 1.5)


class TestAggregateNullSemantics:
    def test_count_star_vs_count_column(self):
        from repro.engine import Database, Schema

        db = Database()
        db.create_table("t", Schema.of(x=float))
        db.table("t").insert({"x": 1.0})
        db.table("t").insert({"x": None})
        row = db.sql(
            "SELECT COUNT(*) AS all_rows, COUNT(x) AS non_null FROM t"
        )[0]
        assert row == {"all_rows": 2, "non_null": 1}

    def test_avg_skips_nulls(self):
        from repro.engine import Database, Schema

        db = Database()
        db.create_table("t", Schema.of(x=float))
        db.table("t").insert_many(
            [{"x": 2.0}, {"x": None}, {"x": 4.0}]
        )
        assert db.sql("SELECT AVG(x) AS a FROM t")[0]["a"] == 3.0
