"""Tests for SGD/DSGD solvers and DSGD matrix completion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.harmonize import (
    RatingsMatrix,
    SGDConfig,
    direct_solver_shuffle_cost,
    dsgd_factorize,
    dsgd_solve,
    sgd_factorize,
    sgd_solve,
    strata_indices,
)
from repro.stats import (
    least_squares_loss,
    make_rng,
    random_diagonally_dominant_system,
    thomas_solve,
)


class TestSGD:
    def test_loss_decreases(self):
        system = random_diagonally_dominant_system(200, make_rng(0))
        result = sgd_solve(system, make_rng(1), SGDConfig(epochs=60))
        assert result.final_loss < result.loss_history[0] * 0.2

    def test_converges_toward_exact(self):
        system = random_diagonally_dominant_system(150, make_rng(2))
        exact = thomas_solve(system)
        result = sgd_solve(
            system, make_rng(3), SGDConfig(epochs=250, step_exponent=0.6)
        )
        rel = np.linalg.norm(result.x - exact) / np.linalg.norm(exact)
        assert rel < 0.15

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SGDConfig(step_exponent=0.3)
        with pytest.raises(SimulationError):
            SGDConfig(epochs=0)

    def test_gradient_step_count(self):
        system = random_diagonally_dominant_system(50, make_rng(4))
        result = sgd_solve(system, make_rng(5), SGDConfig(epochs=10))
        assert result.gradient_steps == 500
        assert result.records_shuffled == 500


class TestDSGD:
    def test_strata_partition_all_rows(self):
        strata = strata_indices(100, 3)
        combined = np.sort(np.concatenate(strata))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_strata_within_disjoint_updates(self):
        # Rows i, i+3 touch entry sets {i-1,i,i+1}, {i+2,i+3,i+4}: disjoint.
        strata = strata_indices(30, 3)
        for stratum in strata:
            touched = set()
            for i in stratum:
                entries = {max(i - 1, 0), i, min(i + 1, 29)}
                assert not (touched & entries)
                touched |= entries

    def test_needs_three_strata(self):
        with pytest.raises(SimulationError):
            strata_indices(10, 2)

    def test_dsgd_converges_like_sgd(self):
        system = random_diagonally_dominant_system(300, make_rng(6))
        config = SGDConfig(epochs=120, step_exponent=0.6)
        sgd = sgd_solve(system, make_rng(7), config)
        dsgd = dsgd_solve(system, make_rng(8), config, num_workers=4)
        assert dsgd.final_loss < system.rhs @ system.rhs  # made progress
        # Comparable quality to unstratified SGD (within 3x).
        assert dsgd.final_loss < max(sgd.final_loss * 3.0, 1e-8)

    def test_dsgd_shuffles_far_less(self):
        system = random_diagonally_dominant_system(600, make_rng(9))
        config = SGDConfig(epochs=20)
        sgd = sgd_solve(system, make_rng(10), config)
        dsgd = dsgd_solve(system, make_rng(11), config, num_workers=4)
        assert dsgd.records_shuffled < sgd.records_shuffled / 10
        # And both dwarfed by what a direct MapReduce solve would shuffle
        # over the same number of passes.
        assert dsgd.records_shuffled < direct_solver_shuffle_cost(600, 20)

    def test_worker_count_irrelevant_to_correctness(self):
        system = random_diagonally_dominant_system(120, make_rng(12))
        config = SGDConfig(epochs=150, step_exponent=0.6)
        exact = thomas_solve(system)
        for workers in (1, 3, 8):
            result = dsgd_solve(
                system, make_rng(13), config, num_workers=workers
            )
            rel = np.linalg.norm(result.x - exact) / np.linalg.norm(exact)
            assert rel < 0.25

    def test_validation(self):
        system = random_diagonally_dominant_system(10, make_rng(14))
        with pytest.raises(SimulationError):
            dsgd_solve(system, make_rng(15), num_workers=0)
        with pytest.raises(SimulationError):
            direct_solver_shuffle_cost(10, 0)


class TestMatrixCompletion:
    def _problem(self, seed=0):
        return RatingsMatrix.synthetic(
            num_rows=40, num_cols=30, rank=3, density=0.3, rng=make_rng(seed)
        )

    def test_synthetic_shapes(self):
        matrix, w, h = self._problem()
        assert w.shape == (40, 3)
        assert h.shape == (3, 30)
        assert matrix.num_observed > 0

    def test_sgd_reduces_loss(self):
        matrix, _, _ = self._problem(1)
        result = sgd_factorize(matrix, rank=3, rng=make_rng(2), epochs=25)
        assert result.final_loss < result.loss_history[0] * 0.3

    def test_dsgd_reduces_loss(self):
        matrix, _, _ = self._problem(3)
        result = dsgd_factorize(
            matrix, rank=3, rng=make_rng(4), num_blocks=4, epochs=25
        )
        assert result.final_loss < result.loss_history[0] * 0.3

    def test_dsgd_matches_sgd_quality(self):
        matrix, _, _ = self._problem(5)
        sgd = sgd_factorize(matrix, rank=3, rng=make_rng(6), epochs=30)
        dsgd = dsgd_factorize(
            matrix, rank=3, rng=make_rng(7), num_blocks=4, epochs=30
        )
        assert dsgd.final_loss < sgd.final_loss * 2.0 + 0.05

    def test_dsgd_shuffle_advantage(self):
        matrix, _, _ = self._problem(8)
        sgd = sgd_factorize(matrix, rank=3, rng=make_rng(9), epochs=10)
        dsgd = dsgd_factorize(
            matrix, rank=3, rng=make_rng(10), num_blocks=4, epochs=10
        )
        assert dsgd.records_shuffled < sgd.records_shuffled / 5

    def test_predict_shape(self):
        matrix, _, _ = self._problem(11)
        result = sgd_factorize(matrix, rank=3, rng=make_rng(12), epochs=5)
        pred = result.predict(matrix.rows[:5], matrix.cols[:5])
        assert pred.shape == (5,)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RatingsMatrix(2, 2, np.array([5]), np.array([0]), np.array([1.0]))
        matrix, _, _ = self._problem(13)
        with pytest.raises(SimulationError):
            sgd_factorize(matrix, rank=0, rng=make_rng(14))
