"""Tests for repro.faults: deterministic injection, retry, recovery.

The acceptance surface of the fault-injection ISSUE: a seeded
:class:`FaultPlan` replays the same failure scenario on every backend; a
retried task re-runs its original payload, so recovered runs are
byte-identical — results *and* ``values`` metrics — to failure-free
ones; exhausted retries surface :class:`TaskFailed` with the full
attempt history (across process-pool pipes included); and the mapreduce
chain checkpointing resumes mid-chain after a crash.

Task closures live at module level so they pickle for the process
backend.
"""

from __future__ import annotations

import json
import pickle
import time

import numpy as np
import pytest

from repro import obs
from repro.assimilation import LinearGaussianSSM, particle_filter
from repro.errors import (
    FaultError,
    FilteringError,
    ReproError,
    SimulationError,
)
from repro.faults import (
    DEFAULT_CHAOS_RATE,
    NO_RETRY,
    AttemptRecord,
    FaultPlan,
    InjectedFault,
    InjectedHang,
    RetryPolicy,
    RetryStats,
    TaskFailed,
    TaskTimeout,
    get_fault_plan,
    injected,
    parse_plan,
    plan_from_env,
    run_with_retry,
    set_fault_plan,
)
from repro.mapreduce import (
    ChainCheckpoint,
    Cluster,
    JobCounters,
    MapReduceJob,
    sum_reducer,
)
from repro.parallel.backend import get_backend
from repro.stats import make_rng

BACKENDS = ("serial", "thread", "process")


# -- module-level (picklable) task closures ---------------------------------


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.2)
    return x * x


def wc_mapper(_, line):
    for word in line.split():
        yield word, 1


def wordcount_job(name="wc", num_reducers=4):
    return MapReduceJob(name, wc_mapper, sum_reducer, num_reducers=num_reducers)


WC_INPUTS = [(None, f"w{i % 7} w{i % 3} common") for i in range(40)]


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    """Tests control the plan explicitly; none may leak between tests."""
    previous = get_fault_plan()
    set_fault_plan(None)
    yield
    set_fault_plan(previous)


# ---------------------------------------------------------------------------
# FaultPlan: deterministic decisions, parsing, installation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_explicit_failures_fail_leading_attempts(self):
        plan = FaultPlan(failures={("parallel", 3): 2})
        assert plan.should_fail("parallel", 3, 0)
        assert plan.should_fail("parallel", 3, 1)
        assert not plan.should_fail("parallel", 3, 2)
        assert not plan.should_fail("parallel", 4, 0)
        assert not plan.should_fail("other", 3, 0)

    def test_rate_selection_is_a_pure_function(self):
        plan = FaultPlan(seed=7, rate=0.3)
        decisions = [plan.should_fail("s", i, 0) for i in range(200)]
        # Replayable: same plan, same decisions, any query order.
        again = [
            plan.should_fail("s", i, 0) for i in reversed(range(200))
        ][::-1]
        assert decisions == again
        # Roughly rate-proportional and seed-dependent.
        assert 20 < sum(decisions) < 100
        other = FaultPlan(seed=8, rate=0.3)
        assert decisions != [other.should_fail("s", i, 0) for i in range(200)]

    def test_scope_restriction(self):
        plan = FaultPlan(rate=1.0, scopes=("mapreduce.map",))
        assert plan.should_fail("mapreduce.map", 0, 0)
        assert not plan.should_fail("pf.shard", 0, 0)

    def test_fire_raises_injected_fault(self):
        plan = FaultPlan(failures={("s", 0): 1})
        with pytest.raises(InjectedFault) as excinfo:
            plan.fire("s", 0, 0)
        assert excinfo.value.index == 0
        plan.fire("s", 0, 1)  # second attempt passes

    def test_hang_kind_sleeps_then_raises(self):
        plan = FaultPlan(failures={("s", 0): 1}, kind="hang", hang_seconds=0.01)
        start = time.perf_counter()
        with pytest.raises(InjectedHang):
            plan.fire("s", 0, 0)
        assert time.perf_counter() - start >= 0.01

    def test_injected_errors_pickle_round_trip(self):
        for exc in (
            InjectedFault("s", 1, 0),
            InjectedHang("s", 2, 1, 0.5),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert (clone.scope, clone.index, clone.attempt) == (
                exc.scope, exc.index, exc.attempt,
            )

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultPlan(rate=1.5)
        with pytest.raises(FaultError):
            FaultPlan(kind="explode")
        with pytest.raises(FaultError):
            FaultPlan(fail_attempts=0)
        with pytest.raises(FaultError):
            FaultPlan(failures={("s", 0): 0})
        assert issubclass(FaultError, ReproError)

    def test_describe_mentions_selection(self):
        text = FaultPlan(
            rate=0.5, failures={("mapreduce.map", 3): 2}
        ).describe()
        assert "rate=0.5" in text
        assert "mapreduce.map:3:2" in text


class TestPlanParsing:
    @pytest.mark.parametrize("spec", ["", "0", "off", "false", "no"])
    def test_falsey_disables(self, spec):
        assert parse_plan(spec) is None

    @pytest.mark.parametrize("spec", ["1", "on", "true", "yes"])
    def test_bare_truthy_enables_chaos_rate(self, spec):
        plan = parse_plan(spec)
        assert plan is not None
        assert plan.rate == DEFAULT_CHAOS_RATE

    def test_full_spec(self):
        plan = parse_plan(
            "seed=9,rate=0.25,scopes=mapreduce.map|pf.shard,"
            "attempts=2,kind=hang,hang=0.5"
        )
        assert plan.seed == 9
        assert plan.rate == 0.25
        assert plan.scopes == ("mapreduce.map", "pf.shard")
        assert plan.fail_attempts == 2
        assert plan.kind == "hang"
        assert plan.hang_seconds == 0.5

    def test_at_spec_with_and_without_counts(self):
        plan = parse_plan("at=mapreduce.map:3|pf.shard:0:2")
        assert plan.failures == {
            ("mapreduce.map", 3): 1,
            ("pf.shard", 0): 2,
        }

    def test_unknown_key_and_malformed_values_raise(self):
        with pytest.raises(FaultError):
            parse_plan("explode=1")
        with pytest.raises(FaultError):
            parse_plan("rate=lots")
        with pytest.raises(FaultError):
            parse_plan("at=noindex")

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": "0"}) is None
        plan = plan_from_env({"REPRO_FAULTS": "rate=0.1,seed=3"})
        assert plan.rate == 0.1 and plan.seed == 3

    def test_injected_context_installs_and_restores(self):
        plan = FaultPlan(rate=0.5)
        assert get_fault_plan() is None
        with injected(plan):
            assert get_fault_plan() is plan
        assert get_fault_plan() is None


# ---------------------------------------------------------------------------
# RetryPolicy + run_with_retry
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_capped_exponential_backoff(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.3)
        assert policy.backoff_seconds(4) == pytest.approx(0.3)

    def test_zero_base_disables_sleeping(self):
        assert RetryPolicy().backoff_seconds(5) == 0.0

    def test_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(FaultError):
            RetryPolicy().backoff_seconds(0)


class TestRunWithRetry:
    def test_flaky_task_recovers_with_stats(self):
        plan = FaultPlan(failures={("s", 4): 1})
        stats = RetryStats()
        result = run_with_retry(
            square, 4, scope="s", index=4,
            policy=RetryPolicy(), plan=plan, stats=stats,
        )
        assert result == 16
        assert stats.attempts == 2
        assert stats.retries == 1
        assert stats.tasks_retried == 1
        assert stats.injected == 1
        assert stats.tasks_failed == 0

    def test_exhausted_attempts_raise_task_failed_with_history(self):
        plan = FaultPlan(failures={("s", 0): 9})
        stats = RetryStats()
        with pytest.raises(TaskFailed) as excinfo:
            run_with_retry(
                square, 0, scope="s", index=0,
                policy=RetryPolicy(max_attempts=3), plan=plan, stats=stats,
            )
        failure = excinfo.value
        assert failure.scope == "s" and failure.index == 0
        assert len(failure.attempts) == 3
        assert all(
            record.error_type == "InjectedFault"
            for record in failure.attempts
        )
        assert [record.attempt for record in failure.attempts] == [0, 1, 2]
        assert isinstance(failure.__cause__, InjectedFault)
        assert "attempt 2: InjectedFault" in failure.history()
        assert stats.tasks_failed == 1
        assert stats.attempts == 3

    def test_planned_backoff_is_accounted_not_slept_when_zero(self):
        plan = FaultPlan(failures={("s", 0): 2})
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.1, backoff_factor=2.0,
            backoff_cap=10.0,
        )
        stats = RetryStats()
        start = time.perf_counter()
        run_with_retry(
            square, 0, scope="s", index=0,
            policy=policy, plan=plan, stats=stats,
        )
        assert time.perf_counter() - start >= 0.3  # 0.1 + 0.2 slept
        assert stats.backoff_seconds == pytest.approx(0.3)

    def test_timeout_converts_hang_to_task_timeout(self):
        plan = FaultPlan(
            failures={("s", 0): 1}, kind="hang", hang_seconds=5.0
        )
        policy = RetryPolicy(max_attempts=1, timeout=0.05)
        start = time.perf_counter()
        with pytest.raises(TaskFailed) as excinfo:
            run_with_retry(square, 0, scope="s", index=0,
                           policy=policy, plan=plan)
        assert time.perf_counter() - start < 2.0  # did not wait the 5s
        assert excinfo.value.attempts[0].error_type == "TaskTimeout"

    def test_timeout_applies_to_slow_tasks_without_plan(self):
        policy = RetryPolicy(max_attempts=1, timeout=0.02)
        with pytest.raises(TaskFailed) as excinfo:
            run_with_retry(slow_square, 3, scope="s", index=0, policy=policy)
        assert excinfo.value.attempts[0].error_type == "TaskTimeout"

    def test_task_timeout_pickles(self):
        exc = TaskTimeout("s", 2, 1, 0.5)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.scope, clone.index, clone.attempt, clone.timeout) == (
            "s", 2, 1, 0.5,
        )

    def test_task_failed_pickles_with_history(self):
        failure = TaskFailed(
            "s", 3, (AttemptRecord(0, "ValueError", "boom", 0.01),)
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.attempts == failure.attempts
        assert clone.scope == "s" and clone.index == 3

    def test_non_retryable_errors_propagate_raw(self):
        def bad(_):
            raise KeyError("not retryable")

        policy = RetryPolicy(retryable=(ValueError,))
        with pytest.raises(KeyError):
            run_with_retry(bad, 0, scope="s", index=0, policy=policy)

    def test_untimed_hang_cannot_deadlock(self):
        # kind="hang" sleeps then *raises*, so even without a timeout the
        # retry loop proceeds.
        plan = FaultPlan(
            failures={("s", 0): 1}, kind="hang", hang_seconds=0.01
        )
        assert run_with_retry(
            square, 0, scope="s", index=0, policy=RetryPolicy(), plan=plan
        ) == 0


# ---------------------------------------------------------------------------
# Backend-level recovery: determinism under retry
# ---------------------------------------------------------------------------


class TestBackendRecovery:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_flaky_map_is_byte_identical(self, name):
        plan = FaultPlan(failures={("parallel", 2): 1, ("parallel", 7): 2})
        backend = get_backend(name)
        clean = backend.map(square, range(12))
        results, stats = backend.map_with_stats(
            square, range(12), faults=plan
        )
        assert results == clean
        assert stats.tasks_retried == 2
        assert stats.retries == 3
        assert stats.injected == 3
        assert stats.tasks_failed == 0

    def test_retry_stats_identical_across_backends(self):
        plan = FaultPlan(seed=5, rate=0.2)
        reference = None
        for name in BACKENDS:
            _, stats = get_backend(name).map_with_stats(
                square, range(30), faults=plan
            )
            if reference is None:
                reference = stats
            else:
                assert stats == reference
        assert reference.tasks_retried > 0

    @pytest.mark.parametrize("name", BACKENDS)
    def test_exhausted_retries_surface_task_failed(self, name):
        plan = FaultPlan(failures={("parallel", 5): 9})
        with pytest.raises(TaskFailed) as excinfo:
            get_backend(name).map(square, range(12), faults=plan)
        failure = excinfo.value
        assert failure.index == 5
        assert len(failure.attempts) == 3  # default policy, pipe-crossed
        assert failure.attempts[0].error_type == "InjectedFault"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_on_error_collect_substitutes_markers(self, name):
        plan = FaultPlan(failures={("parallel", 1): 9})
        results = get_backend(name).map(
            square, range(4), faults=plan, on_error="collect"
        )
        assert results[0] == 0 and results[2] == 4 and results[3] == 9
        assert isinstance(results[1], TaskFailed)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_items_short_circuit(self, name):
        results, stats = get_backend(name).map_with_stats(
            square, [], faults=FaultPlan(rate=1.0)
        )
        assert results == []
        assert stats == RetryStats()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_explicit_retry_policy_without_plan_survives_real_flake(
        self, name
    ):
        # A real (non-injected) failure on attempt 1 that succeeds on
        # attempt 2 yields results identical to a failure-free run.
        policy = RetryPolicy(max_attempts=2)
        plan = FaultPlan(failures={("parallel", 0): 1})
        backend = get_backend(name)
        results, stats = backend.map_with_stats(
            square, range(6), retry=policy, faults=plan
        )
        assert results == [square(x) for x in range(6)]
        assert stats.tasks_retried == 1

    def test_ambient_plan_via_set_fault_plan(self):
        set_fault_plan(FaultPlan(failures={("parallel", 1): 1}))
        results, stats = get_backend("serial").map_with_stats(
            square, range(4)
        )
        assert results == [0, 1, 4, 9]
        assert stats.tasks_retried == 1

    def test_values_metrics_identical_and_faults_visible(self):
        plan = FaultPlan(failures={("parallel", 3): 1})
        serialized = {}
        for name in BACKENDS:
            obs.disable()
            observer = obs.enable()
            get_backend(name).map(square, range(16), faults=plan)
            serialized[name] = observer.metrics.values_json()
            obs.disable()
        assert serialized["thread"] == serialized["serial"]
        assert serialized["process"] == serialized["serial"]
        values = json.loads(serialized["serial"])
        assert values["counters"]["faults.tasks_retried"] == 1
        assert values["counters"]["faults.injected"] == 1
        assert values["counters"]["faults.retries"] == 1

    def test_fault_free_run_creates_no_fault_metrics(self):
        obs.disable()
        observer = obs.enable()
        get_backend("serial").map(square, range(8))
        values = json.loads(observer.metrics.values_json())
        obs.disable()
        assert not any(
            key.startswith("faults.") for key in values["counters"]
        )


# ---------------------------------------------------------------------------
# MapReduce recovery + chain checkpointing
# ---------------------------------------------------------------------------


class TestMapReduceRecovery:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_killed_map_and_reduce_tasks_recover_identically(self, name):
        clean_counters = JobCounters()
        clean = Cluster(num_workers=4, backend=name).run(
            wordcount_job(), WC_INPUTS, clean_counters
        )
        plan = FaultPlan(
            failures={("mapreduce.map", 1): 1, ("mapreduce.reduce", 0): 1}
        )
        counters = JobCounters()
        with injected(plan):
            output = Cluster(num_workers=4, backend=name).run(
                wordcount_job(), WC_INPUTS, counters
            )
        assert output == clean
        assert counters.tasks_retried == 2
        assert counters.tasks_failed == 0
        # Every record-flow counter matches the failure-free run.
        assert counters.records_mapped == clean_counters.records_mapped
        assert counters.shuffle_bytes == clean_counters.shuffle_bytes
        assert "retried=2" in counters.summary()

    def test_terminal_failure_recorded_and_raised(self):
        plan = FaultPlan(failures={("mapreduce.map", 0): 9})
        cluster = Cluster(num_workers=4)
        counters = JobCounters()
        with injected(plan):
            with pytest.raises(TaskFailed) as excinfo:
                cluster.run(wordcount_job(), WC_INPUTS, counters)
        assert len(excinfo.value.attempts) == 3
        assert counters.tasks_failed == 1
        assert "failed=1" in counters.summary()
        assert cluster.last_counters() is counters

    def test_recovery_counters_absent_from_clean_metrics(self):
        obs.disable()
        observer = obs.enable()
        Cluster(num_workers=2).run(wordcount_job(), WC_INPUTS)
        values = json.loads(observer.metrics.values_json())
        obs.disable()
        assert "mapreduce.tasks_retried" not in values["counters"]
        assert "mapreduce.tasks_failed" not in values["counters"]
        assert values["counters"]["mapreduce.records_read"] == len(WC_INPUTS)


def kv_mapper(key, value):
    yield key, value


def _chain_jobs():
    # Link 0 counts words; links 1-2 re-aggregate the (word, count)
    # pairs.  The final link is the only job with a reduce partition
    # index 5, so a plan targeting ("mapreduce.reduce", 5) crashes
    # exactly there — after links 0-1 have been checkpointed.
    return [
        wordcount_job("stage0"),
        MapReduceJob("stage1", kv_mapper, sum_reducer),
        MapReduceJob("stage2", kv_mapper, sum_reducer, num_reducers=6),
    ]


class TestChainCheckpoint:
    def test_resume_from_mid_chain_crash_in_memory(self):
        jobs = _chain_jobs()
        base_out, base_total = Cluster(num_workers=3).run_chain(
            jobs, WC_INPUTS
        )
        checkpoint = ChainCheckpoint()
        crash = FaultPlan(failures={("mapreduce.reduce", 5): 9})
        with injected(crash):
            with pytest.raises(TaskFailed):
                Cluster(num_workers=3).run_chain(
                    jobs, WC_INPUTS, checkpoint=checkpoint
                )
        assert checkpoint.latest().link == 1  # links 0-1 completed
        cluster = Cluster(num_workers=3)
        out, total = cluster.run_chain(jobs, WC_INPUTS, checkpoint=checkpoint)
        assert out == base_out
        assert total == base_total
        assert len(cluster.history) == 1  # only link 2 re-executed

    def test_resume_from_file_after_simulated_process_crash(self, tmp_path):
        jobs = _chain_jobs()
        base_out, base_total = Cluster(num_workers=3).run_chain(
            jobs, WC_INPUTS
        )
        path = str(tmp_path / "chain.ckpt")
        crash = FaultPlan(failures={("mapreduce.reduce", 5): 9})
        with injected(crash):
            with pytest.raises(TaskFailed):
                Cluster(num_workers=3).run_chain(
                    jobs, WC_INPUTS, checkpoint=ChainCheckpoint(path)
                )
        # "New process": a fresh checkpoint object loads the file.
        resumed = ChainCheckpoint(path)
        assert resumed.latest().link == 1
        out, total = Cluster(num_workers=3).run_chain(
            jobs, WC_INPUTS, checkpoint=resumed
        )
        assert out == base_out
        assert total == base_total

    def test_checkpoint_rejects_different_chain(self, tmp_path):
        path = str(tmp_path / "chain.ckpt")
        jobs = _chain_jobs()
        Cluster(num_workers=2).run_chain(
            jobs, WC_INPUTS, checkpoint=ChainCheckpoint(path)
        )
        with pytest.raises(SimulationError):
            Cluster(num_workers=2).run_chain(
                [wordcount_job("other")], WC_INPUTS,
                checkpoint=ChainCheckpoint(path),
            )

    def test_checkpoint_refuses_rewind_and_clear_forgets(self, tmp_path):
        checkpoint = ChainCheckpoint(str(tmp_path / "c.ckpt"))
        checkpoint.bind(["a", "b"])
        checkpoint.record(1, [("k", 1)], JobCounters())
        with pytest.raises(SimulationError):
            checkpoint.record(0, [], JobCounters())
        checkpoint.clear()
        assert checkpoint.latest() is None
        assert not (tmp_path / "c.ckpt").exists()

    def test_completed_chain_resumes_to_stored_result(self):
        jobs = _chain_jobs()
        checkpoint = ChainCheckpoint()
        base_out, base_total = Cluster(num_workers=3).run_chain(
            jobs, WC_INPUTS, checkpoint=checkpoint
        )
        cluster = Cluster(num_workers=3)
        out, total = cluster.run_chain(jobs, WC_INPUTS, checkpoint=checkpoint)
        assert out == base_out and total == base_total
        assert cluster.history == []  # nothing re-executed


# ---------------------------------------------------------------------------
# Particle filter + MCDB recovery
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pf_setting():
    ssm = LinearGaussianSSM(a=0.9, q=0.5, r=0.5)
    _, observations = ssm.simulate(6, make_rng(0))
    return ssm.to_state_space_model(), observations


class TestParticleFilterRecovery:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_shard_failures_recover_byte_identically(self, name, pf_setting):
        model, observations = pf_setting
        clean = particle_filter(
            model, observations, 64, backend=name, seed=9, n_shards=4
        )
        plan = FaultPlan(failures={("pf.init", 1): 1, ("pf.shard", 2): 1})
        with injected(plan):
            recovered = particle_filter(
                model, observations, 64, backend=name, seed=9, n_shards=4
            )
        np.testing.assert_array_equal(
            recovered.filtered_means, clean.filtered_means
        )
        np.testing.assert_array_equal(
            recovered.final_particles, clean.final_particles
        )
        assert recovered.log_likelihood == clean.log_likelihood

    def test_dead_shard_raises_by_default(self, pf_setting):
        model, observations = pf_setting
        plan = FaultPlan(failures={("pf.shard", 2): 9})
        with injected(plan):
            with pytest.raises(TaskFailed) as excinfo:
                particle_filter(
                    model, observations, 64,
                    backend="serial", seed=9, n_shards=4,
                )
        assert excinfo.value.scope == "pf.shard"

    def test_degrade_drops_shard_with_warning(self, pf_setting):
        model, observations = pf_setting
        plan = FaultPlan(failures={("pf.init", 3): 9})
        with injected(plan):
            with pytest.warns(RuntimeWarning, match="dropped 1 dead shard"):
                result = particle_filter(
                    model, observations, 64, backend="serial", seed=9,
                    n_shards=4, on_shard_failure="degrade",
                )
        assert result.final_particles.shape[0] == 48  # 64 minus one shard
        assert result.steps == len(observations)

    def test_all_shards_dead_raises_filtering_error(self, pf_setting):
        model, observations = pf_setting
        plan = FaultPlan(rate=1.0, scopes=("pf.init",), fail_attempts=9)
        with injected(plan):
            with pytest.raises(FilteringError):
                with pytest.warns(RuntimeWarning):
                    particle_filter(
                        model, observations, 16, backend="serial", seed=9,
                        n_shards=2, on_shard_failure="degrade",
                    )

    def test_invalid_on_shard_failure_rejected(self, pf_setting):
        model, observations = pf_setting
        with pytest.raises(FilteringError):
            particle_filter(
                model, observations, 16, backend="serial", seed=9,
                on_shard_failure="ignore",
            )


def mc_query(instance):
    total = 0.0
    count = 0
    for row in instance.table("sbp_data"):
        total += row["sbp"]
        count += 1
    return total / count


def build_mcdb(num_rows=10):
    from repro.engine import Database, Schema
    from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec

    db = Database()
    db.create_table("patients", Schema.of(pid=int))
    for i in range(num_rows):
        db.table("patients").insert({"pid": i})
    mcdb = MonteCarloDatabase(db, seed=5)
    mcdb.register_random_table(
        RandomTableSpec(
            name="sbp_data",
            vg=NormalVG(),
            outer_table="patients",
            parameters={"mean": 120.0, "std": 10.0},
            select={"pid": "outer.pid", "sbp": "vg.value"},
        )
    )
    return mcdb


class TestMcdbRecovery:
    @pytest.mark.parametrize("name", ("serial", "process"))
    def test_naive_iteration_failures_recover_identically(self, name):
        clean = build_mcdb().run_naive(mc_query, 8, backend=name).samples
        plan = FaultPlan(failures={("mcdb.naive", 3): 1})
        with injected(plan):
            recovered = build_mcdb().run_naive(
                mc_query, 8, backend=name
            ).samples
        np.testing.assert_array_equal(recovered, clean)

    def test_bundle_instantiation_failures_recover_identically(self):
        def agg(bundles, _db):
            return bundles["sbp_data"].aggregate_avg("sbp")

        clean = build_mcdb().run_bundled(agg, 12, backend="serial").samples
        plan = FaultPlan(failures={("mcdb.bundle", 0): 2})
        with injected(plan):
            recovered = build_mcdb().run_bundled(
                agg, 12, backend="serial"
            ).samples
        np.testing.assert_array_equal(recovered, clean)

    def test_exhausted_naive_iteration_raises_task_failed(self):
        plan = FaultPlan(failures={("mcdb.naive", 2): 9})
        with injected(plan):
            with pytest.raises(TaskFailed) as excinfo:
                build_mcdb().run_naive(mc_query, 8, backend="serial")
        assert excinfo.value.scope == "mcdb.naive"
        assert excinfo.value.index == 2


# ---------------------------------------------------------------------------
# End-to-end acceptance: one plan, map task + pf shard, all backends
# ---------------------------------------------------------------------------


class TestAcceptanceScenario:
    def test_injected_run_is_byte_identical_with_visible_recovery(
        self, pf_setting
    ):
        model, observations = pf_setting
        plan = FaultPlan(
            failures={("mapreduce.map", 1): 1, ("pf.shard", 0): 1}
        )
        clean_wc = Cluster(num_workers=4).run(wordcount_job(), WC_INPUTS)
        clean_pf = particle_filter(
            model, observations, 32, backend="serial", seed=4, n_shards=4
        )
        snapshots = {}
        for name in BACKENDS:
            obs.disable()
            observer = obs.enable()
            with injected(plan):
                output = Cluster(num_workers=4, backend=name).run(
                    wordcount_job(), WC_INPUTS
                )
                result = particle_filter(
                    model, observations, 32, backend=name, seed=4, n_shards=4
                )
            snapshots[name] = observer.metrics.values_json()
            obs.disable()
            assert output == clean_wc
            np.testing.assert_array_equal(
                result.filtered_means, clean_pf.filtered_means
            )
            assert result.log_likelihood == clean_pf.log_likelihood
        assert snapshots["thread"] == snapshots["serial"]
        assert snapshots["process"] == snapshots["serial"]
        values = json.loads(snapshots["serial"])
        assert values["counters"]["faults.tasks_retried"] > 0
        assert values["counters"]["mapreduce.tasks_retried"] == 1
