"""Tests for repro.serve — the simulation-as-a-service layer.

Covers the PR 7 acceptance surface:

* protocol units: canonical encoding, lossless array round trips, the
  closed error taxonomy, seed-namespace folding;
* admission control units: FIFO grant order, explicit ``overloaded``
  shedding, queue timeouts, slot-transfer accounting;
* result-cache units: hit/coalesce/miss, single-flight error
  propagation, LRU bounds, unpinned (store=False) completions;
* session units: overlay resolution, scope epochs, scope tags;
* engine units: :func:`repro.engine.sqlparser.statement_tables`
  read/write set extraction (the server's authorization + cache-key
  input);
* integration (real server, real sockets): N concurrent identical
  clients → exactly ONE execution with byte-identical payloads;
  session isolation; the error taxonomy over the wire; fingerprint
  parity with the in-process API across serial/thread/process
  backends; fault injection (``serve.request`` scope) with retry and
  terminal attempt history; overload shedding and per-request
  timeouts;
* the RunStore concurrent-access regression (many threads hammering
  one key).

Tests that depend on ambient fault state wrap themselves in
``injected(...)`` so the suite passes unchanged under a CI-set
``REPRO_FAULTS`` environment.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.engine.catalog import Database
from repro.engine.schema import Schema
from repro.engine.sqlparser import parse_statement, statement_tables
from repro.ensemble.store import RunStore, result_fingerprint
from repro.errors import QueryError, SimulationError
from repro.faults import FaultPlan, TaskFailed, TaskTimeout, injected
from repro.serve import (
    AdmissionController,
    CachedResult,
    Client,
    Overloaded,
    ReproServer,
    ResultCache,
    ServeConfig,
    ServeError,
    build_demo_catalog,
    classify_exception,
    decode_payload,
    encode_payload,
    fold_seed,
    serve_in_thread,
)
from repro.serve.protocol import decode_message, encode_message
from repro.serve.session import Session, SessionDatabase, SessionManager


@pytest.fixture(autouse=True)
def _quiet_faults():
    """Serve tests control fault state explicitly (see module docstring)."""
    with injected(None):
        yield


@pytest.fixture
def observer():
    obs.disable()
    live = obs.enable()
    yield live
    obs.disable()


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_messages_are_canonical_single_lines(self):
        raw = encode_message({"b": 1, "a": [1, 2]})
        assert raw == b'{"a":[1,2],"b":1}\n'
        assert decode_message(raw) == {"a": [1, 2], "b": 1}

    def test_decode_rejects_garbage_and_non_objects(self):
        with pytest.raises(ServeError) as excinfo:
            decode_message(b"not json\n")
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServeError):
            decode_message(b"[1,2,3]\n")

    def test_payload_round_trips_arrays_losslessly(self):
        tree = {
            "samples": np.linspace(0.0, 1.0, 7),
            "counts": np.arange(6, dtype=np.int32).reshape(2, 3),
            "scalar": np.float64(0.25),
            "nested": [{"x": np.array([1, 2])}, None, "s"],
        }
        encoded = encode_payload(tree)
        json.dumps(encoded)  # must be pure JSON
        decoded = decode_payload(encoded)
        assert decoded["scalar"] == 0.25
        np.testing.assert_array_equal(decoded["samples"], tree["samples"])
        assert decoded["counts"].dtype == np.int32
        assert decoded["counts"].shape == (2, 3)
        assert result_fingerprint(
            {"samples": decoded["samples"]}
        ) == result_fingerprint({"samples": tree["samples"]})

    def test_payload_rejects_unencodable_values(self):
        with pytest.raises(SimulationError):
            encode_payload({"fn": len})
        with pytest.raises(SimulationError):
            encode_payload({"__ndarray__": 1})
        with pytest.raises(SimulationError):
            encode_payload({1: "non-string key"})

    def test_classify_maps_the_taxonomy(self):
        assert classify_exception(QueryError("x")).code == "invalid_query"
        assert classify_exception(SimulationError("x")).code == (
            "execution_failed"
        )
        assert classify_exception(ValueError("x")).code == "internal"
        assert classify_exception(Overloaded("x")).code == "overloaded"
        assert classify_exception(
            TaskTimeout("serve.request", 0, 0, 1.0)
        ).code == "timeout"

    def test_classify_taskfailed_keeps_attempt_history(self):
        try:
            raise TaskFailed(
                "serve.request",
                0,
                (
                    (0, "InjectedFault", "boom", 0.01),
                    (1, "InjectedFault", "boom", 0.01),
                ),
            )
        except TaskFailed as exc:
            error = classify_exception(exc)
        assert error.code == "execution_failed"
        assert [a["attempt"] for a in error.attempts] == [0, 1]
        assert error.attempts[0]["error_type"] == "InjectedFault"

    def test_classify_all_timeout_attempts_collapse_to_timeout(self):
        failure = TaskFailed(
            "serve.request",
            0,
            ((0, "TaskTimeout", "slow", 1.0), (1, "TaskTimeout", "slow", 1.0)),
        )
        assert classify_exception(failure).code == "timeout"

    def test_fold_seed_identity_and_disjoint_namespaces(self):
        assert fold_seed(0, 42) == 42
        assert fold_seed(1, 42) != 42
        assert fold_seed(1, 42) == fold_seed(1, 42)
        assert fold_seed(1, 42) != fold_seed(2, 42)
        assert fold_seed(1, 42) != fold_seed(1, 43)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_grant_and_release(self):
        async def scenario():
            gate = AdmissionController(2, 4)
            assert await gate.acquire() == 0.0
            assert await gate.acquire() == 0.0
            assert gate.in_flight == 2
            gate.release()
            gate.release()
            assert gate.in_flight == 0

        run_async(scenario())

    def test_waiters_granted_in_fifo_order(self):
        async def scenario():
            gate = AdmissionController(1, 8)
            await gate.acquire()
            order = []

            async def wait(tag):
                await gate.acquire()
                order.append(tag)

            tasks = [asyncio.ensure_future(wait(i)) for i in range(3)]
            await asyncio.sleep(0)  # let all three enqueue
            assert gate.queued == 3
            for _ in range(4):
                gate.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
            assert gate.in_flight == 0

        run_async(scenario())

    def test_full_queue_sheds_immediately(self):
        async def scenario():
            gate = AdmissionController(1, 1)
            await gate.acquire()
            waiter = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await gate.acquire()
            assert gate.stats.rejected == 1
            gate.release()
            await waiter
            gate.release()

        run_async(scenario())

    def test_zero_queue_is_admit_or_reject(self):
        async def scenario():
            gate = AdmissionController(1, 0)
            await gate.acquire()
            with pytest.raises(Overloaded):
                await gate.acquire()
            gate.release()
            await gate.acquire()
            gate.release()

        run_async(scenario())

    def test_queue_timeout_sheds_the_waiter(self):
        async def scenario():
            gate = AdmissionController(1, 4, queue_timeout=0.02)
            await gate.acquire()
            with pytest.raises(Overloaded):
                await gate.acquire()
            assert gate.stats.queue_timeouts == 1
            assert gate.queued == 0
            gate.release()
            assert gate.in_flight == 0

        run_async(scenario())

    def test_release_without_acquire_raises(self):
        async def scenario():
            gate = AdmissionController(1, 1)
            with pytest.raises(SimulationError):
                gate.release()

        run_async(scenario())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            AdmissionController(0, 1)
        with pytest.raises(SimulationError):
            AdmissionController(1, -1)
        with pytest.raises(SimulationError):
            AdmissionController(1, 1, queue_timeout=0.0)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_miss_complete_hit(self):
        async def scenario():
            cache = ResultCache(4)
            status, entry = await cache.fetch_or_begin("k")
            assert (status, entry) == ("miss", None)
            done = CachedResult({"x": 1}, "fp")
            cache.complete("k", done)
            status, entry = await cache.fetch_or_begin("k")
            assert status == "hit"
            assert entry is done
            assert cache.stats.hits == 1

        run_async(scenario())

    def test_concurrent_identical_requests_coalesce(self):
        async def scenario():
            cache = ResultCache(4)
            status, _ = await cache.fetch_or_begin("k")
            assert status == "miss"
            riders = [
                asyncio.ensure_future(cache.fetch_or_begin("k"))
                for _ in range(5)
            ]
            await asyncio.sleep(0)
            done = CachedResult({"x": 1}, "fp")
            cache.complete("k", done)
            outcomes = await asyncio.gather(*riders)
            assert all(status == "coalesced" for status, _ in outcomes)
            assert all(entry is done for _, entry in outcomes)
            assert cache.stats.coalesced == 5
            assert cache.stats.misses == 1

        run_async(scenario())

    def test_failed_flight_propagates_to_riders(self):
        async def scenario():
            cache = ResultCache(4)
            await cache.fetch_or_begin("k")
            rider = asyncio.ensure_future(cache.fetch_or_begin("k"))
            await asyncio.sleep(0)
            cache.fail("k", ServeError("execution_failed", "boom"))
            with pytest.raises(ServeError):
                await rider
            # the failure is not cached: the next fetch is a fresh miss
            status, _ = await cache.fetch_or_begin("k")
            assert status == "miss"

        run_async(scenario())

    def test_lru_eviction_is_bounded(self):
        async def scenario():
            cache = ResultCache(2)
            for key in ("a", "b", "c"):
                await cache.fetch_or_begin(key)
                cache.complete(key, CachedResult({"k": key}, key))
            assert len(cache) == 2
            assert cache.stats.evictions == 1
            status, _ = await cache.fetch_or_begin("a")  # oldest, evicted
            assert status == "miss"

        run_async(scenario())

    def test_unpinned_completion_serves_riders_but_is_not_stored(self):
        async def scenario():
            cache = ResultCache(4)
            await cache.fetch_or_begin("k")
            rider = asyncio.ensure_future(cache.fetch_or_begin("k"))
            await asyncio.sleep(0)
            partial = CachedResult({"ok": False}, None)
            cache.complete("k", partial, store=False)
            status, entry = await rider
            assert status == "coalesced"
            assert entry is partial
            status, _ = await cache.fetch_or_begin("k")
            assert status == "miss"

        run_async(scenario())


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class TestSessions:
    def _base(self):
        base = Database()
        base.create_table("shared", Schema.of(x=int), rows=[{"x": 1}])
        return base

    def test_overlay_resolves_local_first_then_base(self):
        base = self._base()
        db = SessionDatabase(base)
        assert db.table("shared") is base.table("shared")
        db.create_table("mine", Schema.of(y=int))
        assert db.is_session_table("mine")
        assert not db.is_session_table("shared")
        assert db.table_names() == ["mine", "shared"]
        assert "shared" in db and "mine" in db

    def test_shadowing_hides_without_mutating_base(self):
        base = self._base()
        db = SessionDatabase(base)
        db.create_table("shared", Schema.of(x=int), rows=[{"x": 99}])
        assert len(db.table("shared")) == 1
        assert db.table("shared") is not base.table("shared")
        assert base.table("shared").rows[0]["x"] == 1

    def test_mutations_bump_scope_epoch(self):
        db = SessionDatabase(self._base())
        assert db.scope_epoch == 0
        db.create_table("t", Schema.of(x=int))
        assert db.scope_epoch == 1
        db.drop_table("t")
        assert db.scope_epoch == 2

    def test_cannot_drop_shared_table(self):
        db = SessionDatabase(self._base())
        with pytest.raises(Exception) as excinfo:
            db.drop_table("shared")
        assert "not a session-scope table" in str(excinfo.value)

    def test_scope_tags_separate_shared_and_private(self):
        base = self._base()
        session = Session("s000001", base)
        assert session.table_scope_tag("shared") == "shared"
        session.db.create_table("t", Schema.of(x=int))
        tag = session.table_scope_tag("t")
        assert tag.startswith("s000001:e")
        session.db.drop_table("t")
        session.db.create_table("t", Schema.of(x=int))
        assert session.table_scope_tag("t") != tag  # epoch moved on

    def test_manager_tokens_and_public_scope(self):
        manager = SessionManager(self._base())
        one = manager.open()
        two = manager.open(namespace=7)
        assert (one.token, two.token) == ("s000001", "s000002")
        assert manager.get(None) is manager.public
        assert not manager.public.writable
        assert two.writable and two.namespace == 7
        assert manager.close(one.token)
        with pytest.raises(ServeError) as excinfo:
            manager.get(one.token)
        assert excinfo.value.code == "unknown_session"


# ---------------------------------------------------------------------------
# Statement read/write sets (engine support for the server)
# ---------------------------------------------------------------------------


class TestStatementTables:
    def cases(self):
        return [
            ("SELECT * FROM t", {"t"}, set()),
            (
                "SELECT a FROM t JOIN u ON t.a = u.a "
                "WHERE a IN (SELECT b FROM v)",
                {"t", "u", "v"},
                set(),
            ),
            ("CREATE TABLE z (x int)", set(), {"z"}),
            ("CREATE TABLE z AS SELECT * FROM t", {"t"}, {"z"}),
            ("INSERT INTO z VALUES (1)", set(), {"z"}),
            ("INSERT INTO z SELECT x FROM t", {"t"}, {"z"}),
            ("UPDATE z SET x = 1 WHERE x > 0", set(), {"z"}),
            ("DELETE FROM z WHERE x = 1", set(), {"z"}),
            ("DROP TABLE z", set(), {"z"}),
        ]

    def test_read_write_sets(self):
        for statement, reads, writes in self.cases():
            kind, payload = parse_statement(statement)
            got_reads, got_writes = statement_tables(kind, payload)
            assert got_reads == reads, statement
            assert got_writes == writes, statement

    def test_cte_names_are_not_reads(self):
        kind, payload = parse_statement(
            "WITH c AS (SELECT x FROM t) SELECT * FROM c JOIN u ON c.x = u.x"
        )
        reads, writes = statement_tables(kind, payload)
        assert reads == {"t", "u"}
        assert writes == set()


# ---------------------------------------------------------------------------
# Integration: a real server on real sockets
# ---------------------------------------------------------------------------


def start_server(**config_kwargs):
    """A ReproServer on an OS-assigned port over the demo catalog."""
    config = ServeConfig(port=0, **config_kwargs)
    return serve_in_thread(ReproServer(config, catalog=build_demo_catalog()))


GROUP_SQL = (
    "SELECT region, COUNT(*) AS n, AVG(income) AS income "
    "FROM person GROUP BY region ORDER BY region"
)
MCDB_BODY = {
    "tables": [
        {
            "name": "noise",
            "vg": "normal",
            "outer_table": "person",
            "parameters": {"mean": 0.0, "std": 1.0},
        }
    ],
    "statement": "SELECT AVG(value) AS v FROM noise",
    "n_mc": 12,
    "seed": 9,
}


class TestServerIntegration:
    def test_sql_round_trip_matches_in_process_engine(self):
        with start_server() as (host, port):
            with Client(host, port) as client:
                outcome = client.sql(GROUP_SQL)
        rows = build_demo_catalog().sql(GROUP_SQL)
        assert outcome.result["rows"] == rows
        assert outcome.result["rowcount"] == len(rows)
        assert outcome.fingerprint == result_fingerprint(rows)

    def test_repeat_query_hits_cache_with_identical_bytes(self):
        with start_server() as (host, port):
            with Client(host, port) as client:
                first = client.sql(GROUP_SQL)
                second = client.sql(GROUP_SQL)
        assert (first.cache, second.cache) == ("miss", "hit")
        assert first.result_bytes == second.result_bytes
        assert first.fingerprint == second.fingerprint

    def test_concurrent_identical_clients_execute_exactly_once(
        self, observer
    ):
        clients = 6
        outcomes = [None] * clients
        errors = []
        with start_server(max_in_flight=3, max_queue=32) as (host, port):

            def issue(slot):
                try:
                    with Client(host, port) as client:
                        outcomes[slot] = client.mcdb(**MCDB_BODY)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=issue, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        # The acceptance criterion: N identical concurrent requests,
        # exactly ONE execution, proven by the serve.exec counter...
        assert observer.counter("serve.exec").value == 1
        statuses = sorted(o.cache for o in outcomes)
        assert statuses.count("miss") == 1
        assert all(s in ("miss", "coalesced", "hit") for s in statuses)
        # ... and every client received byte-identical payloads.
        payloads = {o.result_bytes for o in outcomes}
        fingerprints = {o.fingerprint for o in outcomes}
        assert len(payloads) == 1
        assert len(fingerprints) == 1

    def test_sessions_cannot_observe_each_other(self):
        with start_server() as (host, port):
            with Client(host, port) as one, Client(host, port) as two:
                one.open_session()
                two.open_session()
                one.sql("CREATE TABLE scratch (x int)")
                one.sql("INSERT INTO scratch VALUES (1), (2)")
                two.sql("CREATE TABLE scratch (x int)")
                two.sql("INSERT INTO scratch VALUES (10)")
                assert one.sql(
                    "SELECT SUM(x) AS s FROM scratch"
                ).result["rows"] == [{"s": 3.0}]
                assert two.sql(
                    "SELECT SUM(x) AS s FROM scratch"
                ).result["rows"] == [{"s": 10.0}]
                # the public scope sees neither session's table
                with Client(host, port) as anon:
                    with pytest.raises(ServeError) as excinfo:
                        anon.sql("SELECT * FROM scratch")
                    assert excinfo.value.code == "invalid_query"

    def test_session_drop_recreate_never_serves_stale_cache(self):
        with start_server() as (host, port):
            with Client(host, port) as client:
                client.open_session()
                client.sql("CREATE TABLE t (x int)")
                client.sql("INSERT INTO t VALUES (1)")
                first = client.sql("SELECT SUM(x) AS s FROM t")
                client.sql("DROP TABLE t")
                client.sql("CREATE TABLE t (x int)")
                client.sql("INSERT INTO t VALUES (2)")
                second = client.sql("SELECT SUM(x) AS s FROM t")
        assert first.result["rows"] == [{"s": 1.0}]
        assert second.result["rows"] == [{"s": 2.0}]
        assert second.cache == "miss"

    def test_error_taxonomy_over_the_wire(self):
        with start_server() as (host, port):
            with Client(host, port) as client:
                # bad_request: unknown op
                with pytest.raises(ServeError) as excinfo:
                    client.request({"op": "frobnicate"})
                assert excinfo.value.code == "bad_request"
                # invalid_query: parse error, then unknown table
                with pytest.raises(ServeError) as excinfo:
                    client.sql("SELEKT 1")
                assert excinfo.value.code == "invalid_query"
                with pytest.raises(ServeError) as excinfo:
                    client.sql("SELECT * FROM nope")
                assert excinfo.value.code == "invalid_query"
                # forbidden: public DDL, session writes to shared tables
                with pytest.raises(ServeError) as excinfo:
                    client.sql("CREATE TABLE t (x int)")
                assert excinfo.value.code == "forbidden"
                client.open_session()
                for statement in (
                    "DROP TABLE person",
                    "INSERT INTO person VALUES (1, 2, 'x', 3.0)",
                    "CREATE TABLE person (pid int)",
                ):
                    with pytest.raises(ServeError) as excinfo:
                        client.sql(statement)
                    assert excinfo.value.code == "forbidden", statement
                # unknown_session
                with pytest.raises(ServeError) as excinfo:
                    client.request({"op": "ping", "session": "s999999"})
                assert excinfo.value.code == "unknown_session"
                # bad_request: malformed op-specific fields
                with pytest.raises(ServeError) as excinfo:
                    client.request({"op": "mcdb", "tables": []})
                assert excinfo.value.code == "bad_request"

    def test_execution_failure_carries_code(self):
        with start_server() as (host, port):
            with Client(host, port) as client:
                # a naive mcdb statement returning 2 rows is a
                # SimulationError at execution time, not a parse error
                with pytest.raises(ServeError) as excinfo:
                    client.mcdb(
                        tables=MCDB_BODY["tables"],
                        statement=(
                            "SELECT value FROM noise"
                        ),
                        n_mc=2,
                    )
        assert excinfo.value.code == "execution_failed"

    def test_overload_sheds_with_explicit_code(self):
        with start_server(max_in_flight=1, max_queue=0) as (host, port):
            slow_error = []

            def slow():
                try:
                    with Client(host, port) as client:
                        client.ping(delay=1.5)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    slow_error.append(exc)

            thread = threading.Thread(target=slow)
            thread.start()
            shed = None
            try:
                with Client(host, port) as client:
                    deadline = 50
                    for _ in range(deadline):
                        snapshot = client.stats()
                        if snapshot["admission"]["in_flight"] >= 1:
                            break
                        import time

                        time.sleep(0.05)
                    else:
                        pytest.fail("slow request never admitted")
                    try:
                        client.ping()
                    except ServeError as exc:
                        shed = exc
                    snapshot = client.stats()
            finally:
                thread.join()
        assert not slow_error
        assert shed is not None and shed.code == "overloaded"
        assert snapshot["admission"]["rejected"] >= 1
        assert snapshot["server"]["errors"].get("overloaded", 0) >= 1

    def test_request_timeout_maps_to_timeout_code(self):
        with start_server(request_timeout=0.2) as (host, port):
            with Client(host, port) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.ping(delay=5)
        assert excinfo.value.code == "timeout"
        assert excinfo.value.attempts  # per-attempt history present
        assert excinfo.value.attempts[0]["error_type"] == "TaskTimeout"


class TestServerDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_mcdb_fingerprint_parity_across_backends(self, backend):
        from repro.mcdb import MonteCarloDatabase, NormalVG, RandomTableSpec

        with start_server(backend=backend) as (host, port):
            with Client(host, port) as client:
                served = client.mcdb(**MCDB_BODY)
        mcdb = MonteCarloDatabase(build_demo_catalog(), seed=MCDB_BODY["seed"])
        mcdb.register_random_table(
            RandomTableSpec(
                name="noise",
                vg=NormalVG(),
                outer_table="person",
                parameters={"mean": 0.0, "std": 1.0},
            )
        )
        from repro.serve.server import _ScalarQuery

        dist = mcdb.run_naive(
            _ScalarQuery(MCDB_BODY["statement"]), MCDB_BODY["n_mc"]
        )
        assert served.fingerprint == result_fingerprint(
            {"samples": dist.samples}
        )
        np.testing.assert_array_equal(
            served.result["samples"], dist.samples
        )

    def test_seed_namespaces_give_disjoint_streams(self):
        with start_server() as (host, port):
            with Client(host, port) as one, Client(host, port) as two:
                one.open_session(namespace=1)
                two.open_session(namespace=2)
                first = one.mcdb(**MCDB_BODY)
                second = two.mcdb(**MCDB_BODY)
                anonymous = Client(host, port)
                try:
                    public = anonymous.mcdb(**MCDB_BODY)
                finally:
                    anonymous.close()
        assert first.fingerprint != second.fingerprint
        assert first.fingerprint != public.fingerprint
        # namespace 0 folds to the identity: a session without a
        # namespace shares the public stream (and its cache entries)
        with start_server() as (host, port):
            with Client(host, port) as client:
                client.open_session(namespace=0)
                again = client.mcdb(**MCDB_BODY)
        assert again.fingerprint == public.fingerprint

    def test_ensemble_served_matches_in_process(self):
        from repro.ensemble import run_ensemble
        from repro.ensemble.scenarios import epidemic_branching_ensemble

        with start_server() as (host, port):
            with Client(host, port) as client:
                served = client.ensemble(demo="epidemic", seed=5, quick=True)
                repeat = client.ensemble(demo="epidemic", seed=5, quick=True)
        assert served.result["ok"] is True
        assert repeat.cache == "hit"
        assert repeat.result_bytes == served.result_bytes
        outcome = run_ensemble(epidemic_branching_ensemble(seed=5, quick=True))
        expected = result_fingerprint(
            {name: outcome.results[name] for name in sorted(outcome.results)}
        )
        assert served.fingerprint == expected

    def test_injected_fault_recovers_with_identical_bytes(self, observer):
        reference = None
        with start_server() as (host, port):
            with Client(host, port) as client:
                reference = client.sql(GROUP_SQL)
        with injected(FaultPlan(failures={("serve.request", 0): 1})):
            with start_server() as (host, port):
                with Client(host, port) as client:
                    recovered = client.sql(GROUP_SQL)
        assert recovered.result_bytes == reference.result_bytes
        assert recovered.fingerprint == reference.fingerprint
        assert observer.counter("serve.faults.injected").value == 1
        assert observer.counter("serve.faults.retries").value == 1

    def test_exhausted_retries_report_full_history(self):
        with injected(FaultPlan(failures={("serve.request", 0): 99})):
            with start_server() as (host, port):
                with Client(host, port) as client:
                    with pytest.raises(ServeError) as excinfo:
                        client.sql(GROUP_SQL)
        error = excinfo.value
        assert error.code == "execution_failed"
        assert len(error.attempts) == 3  # the default plan-active budget
        assert [a["attempt"] for a in error.attempts] == [0, 1, 2]
        assert all(
            a["error_type"] == "InjectedFault" for a in error.attempts
        )


class TestServeExample:
    def test_serve_session_example_runs(self):
        import os
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        result = subprocess.run(
            [sys.executable, os.path.join(root, "examples",
                                          "serve_session.py")],
            capture_output=True,
            text=True,
            timeout=180,
            cwd=root,
        )
        assert result.returncode == 0, result.stderr
        assert "payloads byte-identical: True" in result.stdout
        assert "writing shared state -> forbidden" in result.stdout
        assert "shed with explicit 'overloaded'" in result.stdout


# ---------------------------------------------------------------------------
# RunStore concurrency regression (satellite 2)
# ---------------------------------------------------------------------------


class TestRunStoreConcurrency:
    def test_many_threads_hammering_one_key(self, tmp_path):
        """put/get/evict races on a single key must never corrupt state.

        Before the RunStore grew its lock, a reader could open
        ``run.json`` and then lose ``arrays.npz`` to a concurrent
        evict, and racing commits could double-count puts.
        """
        store = RunStore(tmp_path)
        key = "deadbeef" * 8
        value = {"samples": np.arange(32, dtype=np.float64), "n": 32}
        errors = []
        rounds = 25

        def hammer(slot):
            try:
                for i in range(rounds):
                    store.put(key, value, scenario="hammer", seed=slot)
                    got = store.get(key)
                    if got is not None:
                        np.testing.assert_array_equal(
                            got["samples"], value["samples"]
                        )
                    if slot == 0 and i % 5 == 0:
                        store.evict(key)
                    if slot == 1 and i % 3 == 0:
                        # gc concurrent with in-flight puts: the
                        # age-gated scratch sweep must never delete a
                        # live staging dir (an unconditional sweep made
                        # racing puts crash on a half-deleted stage).
                        store.gc()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # the store is still coherent: one final put/get round trips
        store.put(key, value, scenario="hammer", seed=0)
        final = store.get(key)
        assert final is not None
        np.testing.assert_array_equal(final["samples"], value["samples"])
        assert store.stats.puts >= 1
