"""Tests for CSV import/export and EXPLAIN."""

from __future__ import annotations

import pytest

from repro.engine import Database, Schema, Table, table_from_csv, table_to_csv
from repro.errors import SchemaError


class TestCsvRoundtrip:
    def test_roundtrip_preserves_data(self, tmp_path):
        table = Table.from_rows(
            "t",
            [
                {"pid": 1, "score": 2.5, "name": "ann", "ok": True},
                {"pid": 2, "score": 3.5, "name": "bob", "ok": False},
            ],
        )
        path = tmp_path / "t.csv"
        written = table_to_csv(table, path)
        assert written == 2
        back = table_from_csv("t", path)
        assert back.column_values("pid") == [1, 2]
        assert back.column_values("score") == [2.5, 3.5]
        assert back.column_values("name") == ["ann", "bob"]
        assert back.column_values("ok") == [True, False]

    def test_none_roundtrips_as_null(self, tmp_path):
        table = Table("t", Schema.of(x=int, y=float))
        table.insert({"x": 1, "y": None})
        path = tmp_path / "t.csv"
        table_to_csv(table, path)
        back = table_from_csv("t", path, schema=Schema.of(x=int, y=float))
        assert back.rows[0] == {"x": 1, "y": None}

    def test_empty_string_distinct_from_null(self, tmp_path):
        # Regression: NULL used to be written as an empty field, so a
        # genuine "" in a str column came back as None.
        table = Table("t", Schema.of(pid=int, name=str))
        table.insert({"pid": 1, "name": ""})
        table.insert({"pid": 2, "name": None})
        table.insert({"pid": 3, "name": "x"})
        path = tmp_path / "t.csv"
        table_to_csv(table, path)
        back = table_from_csv("t", path, schema=Schema.of(pid=int, name=str))
        assert back.column_values("name") == ["", None, "x"]

    def test_null_marker_lookalikes_escape(self, tmp_path):
        # Literal "\N" (and deeper escapes) must survive as strings and
        # not collide with the NULL marker.
        values = ["\\N", "\\\\N", None, "N", "\\n"]
        table = Table("t", Schema.of(s=str))
        for v in values:
            table.insert({"s": v})
        path = tmp_path / "t.csv"
        table_to_csv(table, path)
        back = table_from_csv("t", path, schema=Schema.of(s=str))
        assert back.column_values("s") == values

    def test_legacy_empty_field_still_null_for_typed_columns(self, tmp_path):
        path = tmp_path / "legacy.csv"
        path.write_text("x,s\n,\n")
        back = table_from_csv("t", path, schema=Schema.of(x=int, s=str))
        assert back.rows[0] == {"x": None, "s": ""}

    def test_type_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n1,1.5,x\n2,2,y\n")
        table = table_from_csv("t", path)
        assert table.schema.column("a").dtype is int
        assert table.schema.column("b").dtype is float
        assert table.schema.column("c").dtype is str

    def test_explicit_schema_coerces(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a\n1\n2\n")
        table = table_from_csv("t", path, schema=Schema.of(a=float))
        assert table.column_values("a") == [1.0, 2.0]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            table_from_csv("t", path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            table_from_csv("t", path)


class TestDatabaseCsv:
    def test_load_and_query(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text("pid,age\n1,30\n2,40\n3,50\n")
        db = Database()
        db.load_csv("people", path)
        assert db.sql("SELECT COUNT(*) AS n FROM people WHERE age > 35")[0][
            "n"
        ] == 2

    def test_dump(self, tmp_path):
        db = Database()
        db.sql("CREATE TABLE t (x int)")
        db.sql("INSERT INTO t VALUES (1), (2)")
        path = tmp_path / "out.csv"
        assert db.dump_csv("t", path) == 2
        assert path.read_text().splitlines()[0] == "x"


class TestExplain:
    def test_explain_shows_pushdown(self, people_db):
        people_db.create_table("flag", Schema.of(pid=int, tag=str))
        people_db.table("flag").insert({"pid": 1, "tag": "x"})
        people_db.analyze()
        text = people_db.explain(
            "SELECT p.pid FROM person p JOIN flag f ON p.pid = f.pid "
            "WHERE f.tag = 'x'"
        )
        assert "Join" in text
        assert "Filter" in text
        # The filter line should be *below* (indented deeper than) the
        # join line after pushdown.
        lines = text.splitlines()
        join_indent = min(
            len(l) - len(l.lstrip()) for l in lines if "Join" in l
        )
        filter_indent = min(
            len(l) - len(l.lstrip()) for l in lines if "Filter" in l
        )
        assert filter_indent > join_indent
