"""Tests for calibration: MLE, MM, MSM, optimizers, market model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    HerdingMarketModel,
    HerdingParameters,
    MSMProblem,
    exponential_log_likelihood,
    exponential_mle,
    exponential_mm,
    genetic_algorithm,
    kriging_calibrate,
    make_msm_simulator,
    nelder_mead,
    normal_mle,
    normal_mm,
    numeric_mle,
    random_search,
    standard_market_moments,
)
from repro.errors import CalibrationError
from repro.stats import make_rng


class TestMLE:
    def test_exponential_closed_form(self, rng):
        data = rng.exponential(1.0 / 2.5, size=20000)
        assert exponential_mle(data) == pytest.approx(2.5, rel=0.05)

    def test_exponential_mle_maximizes_likelihood(self, rng):
        data = rng.exponential(0.5, size=500)
        theta_hat = exponential_mle(data)
        best = exponential_log_likelihood(data, theta_hat)
        for other in (theta_hat * 0.8, theta_hat * 1.2):
            assert exponential_log_likelihood(data, other) < best

    def test_mm_equals_mle_for_exponential(self, rng):
        """The paper's observation: for the exponential, MM == MLE."""
        data = rng.exponential(2.0, size=100)
        assert exponential_mm(data) == pytest.approx(exponential_mle(data))

    def test_normal_closed_form(self, rng):
        data = rng.normal(3.0, 2.0, size=20000)
        mu, sigma = normal_mle(data)
        assert mu == pytest.approx(3.0, abs=0.05)
        assert sigma == pytest.approx(2.0, abs=0.05)
        assert normal_mm(data) == pytest.approx((mu, sigma))

    def test_numeric_mle_recovers_exponential(self, rng):
        data = rng.exponential(1.0 / 3.0, size=2000)

        def log_density(x, theta):
            rate = theta[0]
            if rate <= 0:
                return np.full(x.shape, -np.inf)
            return np.log(rate) - rate * x

        result = numeric_mle(log_density, data, [1.0], bounds=[(1e-6, 50.0)])
        assert result.parameters[0] == pytest.approx(
            exponential_mle(data), rel=1e-3
        )

    def test_validation(self):
        with pytest.raises(CalibrationError):
            exponential_mle([])
        with pytest.raises(CalibrationError):
            exponential_mle([-1.0, 2.0])
        with pytest.raises(CalibrationError):
            normal_mle([1.0])


class TestOptimizers:
    @staticmethod
    def rosenbrock(x):
        return float(
            (1 - x[0]) ** 2 + 100.0 * (x[1] - x[0] ** 2) ** 2
        )

    @staticmethod
    def sphere(x):
        return float(np.sum((np.asarray(x) - 0.3) ** 2))

    def test_nelder_mead_on_rosenbrock(self):
        result = nelder_mead(
            self.rosenbrock, [-1.0, 1.0], max_iterations=2000
        )
        assert result.value < 1e-6
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-2)

    def test_nelder_mead_respects_bounds(self):
        result = nelder_mead(
            self.sphere, [0.9, 0.9], bounds=[(0.5, 1.0), (0.5, 1.0)],
            max_iterations=500,
        )
        assert np.all(result.x >= 0.5 - 1e-12)
        # Constrained optimum is at the boundary (0.5, 0.5).
        np.testing.assert_allclose(result.x, [0.5, 0.5], atol=1e-3)

    def test_genetic_algorithm_on_sphere(self):
        result = genetic_algorithm(
            self.sphere,
            bounds=[(-2.0, 2.0)] * 3,
            rng=make_rng(0),
            population_size=30,
            generations=60,
        )
        assert result.value < 1e-2
        np.testing.assert_allclose(result.x, [0.3] * 3, atol=0.1)

    def test_ga_beats_random_search_on_budget(self):
        bounds = [(-2.0, 2.0)] * 4
        ga = genetic_algorithm(
            self.sphere, bounds, make_rng(1),
            population_size=20, generations=24,
        )
        rs = random_search(self.sphere, bounds, make_rng(2), evaluations=500)
        assert ga.value < rs.value

    def test_evaluation_counting(self):
        calls = []
        result = nelder_mead(
            lambda x: (calls.append(1), self.sphere(x))[1],
            [0.0, 0.0],
            max_iterations=50,
        )
        assert result.evaluations == len(calls)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            genetic_algorithm(self.sphere, [(0.0, 1.0)], make_rng(0), population_size=2)
        with pytest.raises(CalibrationError):
            genetic_algorithm(self.sphere, [(1.0, 0.0)], make_rng(0))


class TestMarketModel:
    def test_returns_shape_and_reproducibility(self):
        model = HerdingMarketModel(HerdingParameters(), num_traders=50)
        a = model.simulate_returns(200, make_rng(0))
        b = model.simulate_returns(200, make_rng(0))
        np.testing.assert_array_equal(a, b)
        assert a.shape == (200,)

    def test_herding_fattens_tails(self):
        quiet = HerdingParameters(herding_rate=0.0, sentiment_impact=0.2)
        herding = HerdingParameters(herding_rate=0.12, sentiment_impact=0.2)
        kurt = {}
        for name, params in (("quiet", quiet), ("herding", herding)):
            model = HerdingMarketModel(params, num_traders=100)
            r = model.simulate_returns(4000, make_rng(1))
            moments = standard_market_moments(r)
            kurt[name] = moments[1]
        assert kurt["herding"] > kurt["quiet"]

    def test_moment_vector_shape(self):
        r = make_rng(2).normal(size=500)
        moments = standard_market_moments(r)
        assert moments.shape == (4,)
        assert moments[1] == pytest.approx(3.0, abs=0.6)  # normal kurtosis

    def test_validation(self):
        with pytest.raises(CalibrationError):
            HerdingParameters(idiosyncratic_rate=0.0)
        with pytest.raises(CalibrationError):
            HerdingMarketModel(HerdingParameters(), num_traders=1)
        with pytest.raises(CalibrationError):
            standard_market_moments(np.zeros(5))


class TestMSM:
    def _problem(self, seed=0):
        true = HerdingParameters(herding_rate=0.08)
        model = HerdingMarketModel(true, num_traders=80)
        observed = standard_market_moments(
            model.simulate_returns(1500, make_rng(seed))
        )
        simulator = make_msm_simulator(true, num_traders=80, steps=300)
        return MSMProblem(
            simulator, observed, simulations_per_theta=3, seed=seed
        ), true

    def test_objective_nonnegative_and_counted(self):
        problem, true = self._problem()
        value = problem.objective(true.as_vector())
        assert value >= 0.0
        assert problem.evaluations == 1
        assert problem.simulation_calls == 3

    def test_objective_smaller_near_truth(self):
        problem, true = self._problem(seed=1)
        problem.estimate_weight_matrix(true.as_vector(), replications=25)
        at_truth = problem.objective(true.as_vector())
        for far_theta in ((0.019, 0.29), (0.019, 0.0), (0.0001, 0.0)):
            assert at_truth < problem.objective(np.array(far_theta))

    def test_weight_matrix_is_inverse_covariance(self):
        problem, true = self._problem(seed=2)
        w = problem.estimate_weight_matrix(true.as_vector(), replications=25)
        assert w.shape == (4, 4)
        # W must be symmetric positive definite.
        np.testing.assert_allclose(w, w.T, rtol=1e-8)
        assert np.all(np.linalg.eigvalsh(w) > 0)

    def test_crn_makes_objective_deterministic(self):
        problem, true = self._problem(seed=3)
        theta = true.as_vector()
        assert problem.objective(theta) == problem.objective(theta)

    def test_regularized_objective_penalizes_distance(self):
        problem, true = self._problem(seed=4)
        reference = true.as_vector()
        regularized = problem.with_regularization(1000.0, reference)
        at_ref = regularized(reference)
        away = regularized(reference + 0.05)
        assert away > at_ref

    def test_simulator_shape_check(self):
        problem = MSMProblem(
            lambda theta, rng: np.zeros(3),
            np.zeros(4),
            simulations_per_theta=1,
        )
        with pytest.raises(CalibrationError):
            problem.objective(np.zeros(2))


class TestKrigingCalibration:
    def test_finds_minimum_of_smooth_function(self):
        objective = lambda x: float(
            (x[0] - 0.3) ** 2 + (x[1] + 0.2) ** 2
        )
        result = kriging_calibrate(
            objective,
            bounds=[(-1.0, 1.0), (-1.0, 1.0)],
            rng=make_rng(0),
            design_runs=15,
            refinement_rounds=4,
        )
        assert result.value < 0.02
        np.testing.assert_allclose(result.x, [0.3, -0.2], atol=0.15)

    def test_uses_few_expensive_evaluations(self):
        calls = []

        def objective(x):
            calls.append(1)
            return float(np.sum(np.asarray(x) ** 2))

        result = kriging_calibrate(
            objective, [(-1.0, 1.0)] * 2, make_rng(1),
            design_runs=12, refinement_rounds=3,
        )
        assert result.expensive_evaluations == len(calls)
        assert len(calls) <= 12 + 3

    def test_validation(self):
        with pytest.raises(CalibrationError):
            kriging_calibrate(
                lambda x: 0.0, [(-1.0, 1.0)], make_rng(0), design_runs=2
            )
