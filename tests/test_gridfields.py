"""Tests for the gridfield algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GridError
from repro.gridfields import (
    Grid,
    GridField,
    OpCost,
    plans_agree,
    regrid_then_restrict,
    regular_grid_2d,
    restrict_then_regrid,
)


class TestGrid:
    def test_regular_grid_cell_counts(self):
        grid = regular_grid_2d(3, 2)
        assert grid.size(0) == 4 * 3  # nodes
        assert grid.size(1) == 3 * 3 + 4 * 2  # h-edges + v-edges
        assert grid.size(2) == 6  # quads

    def test_incidence_node_to_quad(self):
        grid = regular_grid_2d(2, 2)
        # Corner node (0,0) bounds exactly quad (0,0) plus 2 edges.
        up = grid.incident_up(0, (0, 0))
        assert (2, (0, 0)) in up

    def test_leq_partial_order(self):
        grid = regular_grid_2d(2, 2)
        assert grid.leq((0, (0, 0)), (0, (0, 0)))  # reflexive
        assert grid.leq((0, (0, 0)), (2, (0, 0)))
        assert not grid.leq((0, (2, 2)), (2, (0, 0)))

    def test_edge_touches_quad(self):
        grid = regular_grid_2d(2, 1)
        assert grid.leq((1, ("h", 0, 0)), (2, (0, 0)))

    def test_incident_down(self):
        grid = regular_grid_2d(1, 1)
        down = grid.incident_down(2, (0, 0))
        node_cells = [c for d, c in down if d == 0]
        assert len(node_cells) == 4

    def test_union_intersection(self):
        a = Grid()
        a.add_cell(0, "x")
        a.add_cell(0, "y")
        b = Grid()
        b.add_cell(0, "y")
        b.add_cell(0, "z")
        assert a.union(b).cells(0) == {"x", "y", "z"}
        assert a.intersection(b).cells(0) == {"y"}

    def test_subgrid_drops_incidences(self):
        grid = regular_grid_2d(2, 1)
        keep = {
            0: set(grid.cells(0)),
            1: set(grid.cells(1)),
            2: {(0, 0)},
        }
        sub = grid.subgrid(keep)
        assert sub.size(2) == 1
        assert (2, (1, 0)) not in sub.incident_up(0, (1, 0))

    def test_subgrid_unknown_cell(self):
        grid = regular_grid_2d(1, 1)
        with pytest.raises(GridError):
            grid.subgrid({2: {(9, 9)}})

    def test_bad_incidence(self):
        grid = Grid()
        grid.add_cell(1, "e")
        grid.add_cell(0, "n")
        with pytest.raises(GridError):
            grid.add_incidence(1, "e", 0, "n")  # wrong direction


class TestGridField:
    def test_bind_and_read(self):
        grid = regular_grid_2d(2, 2)
        gf = GridField(grid)
        gf.bind_by_function(2, "temp", lambda cell: cell[0] + 10.0 * cell[1])
        assert gf.attribute(2, "temp")[(1, 1)] == 11.0

    def test_bind_must_cover_all_cells(self):
        gf = GridField(regular_grid_2d(2, 1))
        with pytest.raises(GridError):
            gf.bind(2, "temp", {(0, 0): 1.0})

    def test_bind_rejects_unknown_cells(self):
        gf = GridField(regular_grid_2d(1, 1))
        with pytest.raises(GridError):
            gf.bind(2, "temp", {(0, 0): 1.0, (5, 5): 2.0})

    def test_restrict_keeps_matching_cells(self):
        gf = GridField(regular_grid_2d(3, 1))
        gf.bind_by_function(2, "v", lambda cell: float(cell[0]))
        restricted = gf.restrict(2, lambda cell, attrs: attrs["v"] >= 1.0)
        assert restricted.grid.cells(2) == {(1, 0), (2, 0)}
        assert set(restricted.attribute(2, "v")) == {(1, 0), (2, 0)}

    def test_regrid_mean(self):
        fine = GridField(regular_grid_2d(4, 4))
        fine.bind_by_function(2, "v", lambda cell: float(cell[0]))
        coarse = GridField(regular_grid_2d(2, 2))
        assignment = lambda cell: (cell[0] // 2, cell[1] // 2)
        out = fine.regrid(coarse, 2, 2, assignment, "v", aggregate="mean")
        # Cells x in {0,1} -> coarse column 0: mean of {0,1} = 0.5
        assert out.attribute(2, "v")[(0, 0)] == pytest.approx(0.5)
        assert out.attribute(2, "v")[(1, 1)] == pytest.approx(2.5)

    def test_regrid_count_and_default(self):
        fine = GridField(regular_grid_2d(2, 1))
        fine.bind_by_function(2, "v", lambda cell: 1.0)
        coarse = GridField(regular_grid_2d(2, 1))
        out = fine.regrid(
            coarse, 2, 2,
            lambda cell: (0, 0),  # everything lands on one target
            "v", aggregate="count", default=-1.0,
        )
        assert out.attribute(2, "v")[(0, 0)] == 2.0
        assert out.attribute(2, "v")[(1, 0)] == -1.0

    def test_regrid_bad_target(self):
        fine = GridField(regular_grid_2d(1, 1))
        fine.bind_by_function(2, "v", lambda cell: 1.0)
        coarse = GridField(regular_grid_2d(1, 1))
        with pytest.raises(GridError):
            fine.regrid(coarse, 2, 2, lambda cell: (9, 9), "v")

    def test_merge_combines_attributes(self):
        grid = regular_grid_2d(2, 1)
        a = GridField(grid)
        a.bind_by_function(2, "u", lambda cell: 1.0)
        b = GridField(grid)
        b.bind_by_function(2, "w", lambda cell: 2.0)
        merged = a.merge(b)
        assert merged.attribute_names(2) == ["u", "w"]

    def test_unknown_aggregate(self):
        fine = GridField(regular_grid_2d(1, 1))
        fine.bind_by_function(2, "v", lambda cell: 1.0)
        with pytest.raises(GridError):
            fine.regrid(fine, 2, 2, lambda c: c, "v", aggregate="median")


class TestCommutation:
    def _setup(self, nx=8, ny=8, factor=2):
        fine = GridField(regular_grid_2d(nx, ny))
        fine.bind_by_function(
            2, "temp", lambda cell: float(cell[0] * 1.7 + cell[1] * 0.3)
        )
        coarse = GridField(regular_grid_2d(nx // factor, ny // factor))
        assignment = lambda cell: (cell[0] // factor, cell[1] // factor)
        predicate = lambda cell, attrs: cell[0] < (nx // factor) // 2
        return fine, coarse, assignment, predicate

    def test_plans_produce_identical_results(self):
        fine, coarse, assignment, predicate = self._setup()
        naive, _ = regrid_then_restrict(
            fine, coarse, 2, 2, assignment, "temp", predicate
        )
        pushed, _ = restrict_then_regrid(
            fine, coarse, 2, 2, assignment, "temp", predicate
        )
        assert plans_agree(naive, pushed, 2, "temp")

    def test_commuted_plan_cheaper(self):
        fine, coarse, assignment, predicate = self._setup(nx=12, ny=12, factor=3)
        _, naive_cost = regrid_then_restrict(
            fine, coarse, 2, 2, assignment, "temp", predicate
        )
        _, pushed_cost = restrict_then_regrid(
            fine, coarse, 2, 2, assignment, "temp", predicate
        )
        assert pushed_cost.values_aggregated < naive_cost.values_aggregated

    def test_plans_agree_detects_differences(self):
        fine, coarse, assignment, predicate = self._setup()
        naive, _ = regrid_then_restrict(
            fine, coarse, 2, 2, assignment, "temp", predicate
        )
        other, _ = regrid_then_restrict(
            fine, coarse, 2, 2, assignment, "temp",
            lambda cell, attrs: cell[0] >= 2,
        )
        assert not plans_agree(naive, other, 2, "temp")

    def test_cost_merge(self):
        a = OpCost(1, 2, 3)
        b = OpCost(10, 20, 30)
        merged = a.merge(b)
        assert (merged.cells_examined, merged.assignments_evaluated,
                merged.values_aggregated) == (11, 22, 33)
