"""Full and fractional two-level factorial designs (Section 4.2).

Designs are coded matrices with entries ±1 ("low"/"high" factor levels).
The resolution-III design of the paper's Figure 3 — seven parameters in
eight runs — is generated here exactly: three base factors in standard
order plus the interaction columns ``4=12, 5=13, 6=23, 7=123``.

Resolution semantics (Box–Hunter):

* III — main effects unconfounded with each other (but confounded with
  two-factor interactions);
* IV — main effects clear of two-factor interactions (fold-over of III);
* V — main effects and two-factor interactions all clear.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DesignError


def full_factorial(num_factors: int) -> np.ndarray:
    """The ``2^k`` full factorial design in standard (Yates) order.

    Column 0 alternates fastest: row ``i``'s level for factor ``j`` is
    ``+1`` iff bit ``j`` of ``i`` is set.
    """
    if num_factors < 1:
        raise DesignError("need at least one factor")
    runs = 2**num_factors
    design = np.empty((runs, num_factors))
    for i in range(runs):
        for j in range(num_factors):
            design[i, j] = 1.0 if (i >> j) & 1 else -1.0
    return design


def _interaction_column(
    base: np.ndarray, factors: Sequence[int]
) -> np.ndarray:
    column = np.ones(base.shape[0])
    for f in factors:
        column = column * base[:, f]
    return column


def fractional_factorial(
    num_base: int, generators: Sequence[Sequence[int]]
) -> np.ndarray:
    """A ``2^(k-p)`` design: full factorial in the base factors plus
    generator columns.

    ``generators`` lists, for each added factor, the base-factor indices
    whose interaction defines it — e.g. ``[(0, 1), (0, 2), (1, 2),
    (0, 1, 2)]`` yields the paper's seven-factor resolution III design.
    """
    base = full_factorial(num_base)
    columns = [base]
    for gen in generators:
        if not gen or any(not 0 <= g < num_base for g in gen):
            raise DesignError(f"bad generator {tuple(gen)}")
        columns.append(_interaction_column(base, gen)[:, None])
    return np.hstack(columns)


def resolution_iii(num_factors: int) -> np.ndarray:
    """A saturated-or-smaller resolution III design for ``num_factors``.

    Uses the smallest base ``p`` with ``2^p - 1 >= num_factors``; the
    extra factors take the interaction columns in order of increasing
    interaction size.  For seven factors this reproduces the paper's
    Figure 3 exactly (8 runs).
    """
    if num_factors < 2:
        raise DesignError("need at least two factors")
    p = 2
    while 2**p - 1 < num_factors:
        p += 1
    interactions: List[Tuple[int, ...]] = []
    for size in range(2, p + 1):
        interactions.extend(itertools.combinations(range(p), size))
    needed = num_factors - p
    return fractional_factorial(p, interactions[:needed])


def fold_over(design: np.ndarray) -> np.ndarray:
    """The fold-over: append the sign-reversed runs.

    Folding a resolution III design yields resolution IV — main effects
    become clear of two-factor interactions at the price of doubling the
    run count (the paper's "resolution IV design that requires 16 runs"
    for seven factors).
    """
    return np.vstack([design, -design])


def resolution_iv(num_factors: int) -> np.ndarray:
    """Fold-over resolution IV design (2x the resolution III runs)."""
    return fold_over(resolution_iii(num_factors))


#: Known minimal resolution V generator sets, keyed by factor count:
#: (base factor count, generators over base-factor indices).
_RES_V_GENERATORS: Dict[int, Tuple[int, List[Tuple[int, ...]]]] = {
    5: (4, [(0, 1, 2, 3)]),
    6: (5, [(0, 1, 2, 3, 4)]),
    7: (5, [(0, 1, 2, 3), (0, 1, 2, 4)]),  # 2^(7-2) = 32 runs
    8: (6, [(0, 1, 2, 3), (0, 1, 4, 5)]),
}


def resolution_v(num_factors: int) -> np.ndarray:
    """A resolution V design from the standard minimal generator tables.

    For seven factors this is the 32-run ``2^(7-2)_V`` design the paper
    cites for estimating all main effects and two-factor interactions.
    """
    if num_factors <= 4:
        return full_factorial(max(num_factors, 1))
    if num_factors not in _RES_V_GENERATORS:
        raise DesignError(
            f"no resolution V generator table for {num_factors} factors; "
            f"supported: {sorted(_RES_V_GENERATORS)} (or <= 4 full factorial)"
        )
    num_base, generators = _RES_V_GENERATORS[num_factors]
    return fractional_factorial(num_base, generators)


def is_orthogonal(design: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether all column pairs are orthogonal (zero dot product)."""
    gram = design.T @ design
    off = gram - np.diag(np.diag(gram))
    return bool(np.all(np.abs(off) <= tol))


def confounded_pairs(
    design: np.ndarray, tol: float = 1e-9
) -> List[Tuple[int, Tuple[int, int]]]:
    """Main effects aliased with two-factor interactions.

    Returns ``(factor, (a, b))`` tuples where the column of ``factor``
    equals (±) the elementwise product of columns ``a`` and ``b`` — the
    aliasing structure that distinguishes resolution III from IV.
    """
    n, k = design.shape
    out = []
    for j in range(k):
        for a in range(k):
            for b in range(a + 1, k):
                if j in (a, b):
                    continue
                interaction = design[:, a] * design[:, b]
                if np.all(np.abs(design[:, j] - interaction) <= tol) or np.all(
                    np.abs(design[:, j] + interaction) <= tol
                ):
                    out.append((j, (a, b)))
    return out
