"""Latin hypercube designs: randomized, orthogonal, and nearly orthogonal.

Section 4.2: "Determine r equally-spaced levels for each parameter and
generate an n x r design matrix where each column is a random permutation
of {1, 2, ..., r} ... The chief characteristic of an LH design is that
each possible x1 value appears once, as does each possible x2 value."
Randomized LHs "may not work well unless r >> n", so "nearly orthogonal
LH (NOLH) designs have been developed that provide good space-filling and
orthogonality properties" (Cioppa & Lucas [12]).

Levels are centered: for ``r`` runs the levels are
``-(r-1)/2 ... (r-1)/2`` (the paper's Figure 5 uses ``-4 .. 4`` for
``r = 9``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DesignError


def centered_levels(runs: int) -> np.ndarray:
    """The centered level values ``-(r-1)/2 .. (r-1)/2``."""
    if runs < 2:
        raise DesignError("need at least two runs")
    return np.arange(runs, dtype=float) - (runs - 1) / 2.0


def randomized_lh(
    num_factors: int, runs: int, rng: np.random.Generator
) -> np.ndarray:
    """A randomized Latin hypercube: each column a random permutation."""
    if num_factors < 1:
        raise DesignError("need at least one factor")
    levels = centered_levels(runs)
    return np.column_stack(
        [rng.permutation(levels) for _ in range(num_factors)]
    )


def is_latin(design: np.ndarray) -> bool:
    """Whether every column uses each centered level exactly once."""
    runs = design.shape[0]
    expected = np.sort(centered_levels(runs))
    return all(
        np.allclose(np.sort(design[:, j]), expected)
        for j in range(design.shape[1])
    )


def max_abs_correlation(design: np.ndarray) -> float:
    """Largest absolute pairwise column correlation (orthogonality score)."""
    k = design.shape[1]
    if k < 2:
        return 0.0
    corr = np.corrcoef(design, rowvar=False)
    off = np.abs(corr - np.eye(k))
    return float(off.max())


def figure5_design() -> np.ndarray:
    """The orthogonal 2-factor, 9-run LH of the paper's Figure 5.

    Both columns are permutations of ``-4..4`` with exactly zero
    correlation.
    """
    x1 = np.array([-4.0, -3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0])
    x2 = np.array([-4.0, -2.0, 4.0, 3.0, 0.0, 2.0, 1.0, -1.0, -3.0])
    return np.column_stack([x1, x2])


def maximin_distance(design: np.ndarray) -> float:
    """The minimum pairwise Euclidean distance (space-filling score)."""
    n = design.shape[0]
    best = np.inf
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.linalg.norm(design[i] - design[j]))
            best = min(best, d)
    return best


def nearly_orthogonal_lh(
    num_factors: int,
    runs: int,
    rng: np.random.Generator,
    iterations: int = 2000,
) -> np.ndarray:
    """A nearly orthogonal LH by simulated-annealing column improvement.

    Starts from a randomized LH and repeatedly swaps two entries within a
    random column, accepting swaps that reduce the maximum absolute
    pairwise correlation (with occasional uphill acceptance early on).
    This is a practical stand-in for the Cioppa–Lucas construction: it
    preserves the Latin property exactly and typically drives the maximum
    correlation well under 0.05.
    """
    if num_factors < 2:
        return randomized_lh(num_factors, runs, rng)
    design = randomized_lh(num_factors, runs, rng)
    score = max_abs_correlation(design)
    best_design = design.copy()
    best_score = score
    for step in range(iterations):
        temperature = max(0.05 * (1.0 - step / iterations), 0.0)
        column = int(rng.integers(0, num_factors))
        i, j = rng.choice(runs, size=2, replace=False)
        design[[i, j], column] = design[[j, i], column]
        new_score = max_abs_correlation(design)
        if new_score <= score or rng.uniform() < temperature:
            score = new_score
            if score < best_score:
                best_score = score
                best_design = design.copy()
        else:
            design[[i, j], column] = design[[j, i], column]  # revert
    return best_design


def scale_design(
    design: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
) -> np.ndarray:
    """Map centered levels onto natural parameter ranges.

    Level ``-(r-1)/2`` maps to ``low`` and ``(r-1)/2`` to ``high``,
    linearly in between.
    """
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    if lows.shape != (design.shape[1],) or highs.shape != (design.shape[1],):
        raise DesignError("lows/highs must have one entry per factor")
    if np.any(highs <= lows):
        raise DesignError("need low < high for every factor")
    runs = design.shape[0]
    half = (runs - 1) / 2.0
    unit = (design + half) / (runs - 1)  # in [0, 1]
    return lows + unit * (highs - lows)
