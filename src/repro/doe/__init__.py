"""Experimental designs for simulation (Section 4.2 of the paper).

Two-level factorial families including the Figure 3 resolution III design
(:mod:`repro.doe.factorial`) and Latin hypercube variants including the
Figure 5 orthogonal LH and a nearly orthogonal LH construction
(:mod:`repro.doe.latin`).
"""

from repro.doe.factorial import (
    confounded_pairs,
    fold_over,
    fractional_factorial,
    full_factorial,
    is_orthogonal,
    resolution_iii,
    resolution_iv,
    resolution_v,
)
from repro.doe.latin import (
    centered_levels,
    figure5_design,
    is_latin,
    max_abs_correlation,
    maximin_distance,
    nearly_orthogonal_lh,
    randomized_lh,
    scale_design,
)

__all__ = [
    "centered_levels",
    "confounded_pairs",
    "figure5_design",
    "fold_over",
    "fractional_factorial",
    "full_factorial",
    "is_latin",
    "is_orthogonal",
    "max_abs_correlation",
    "maximin_distance",
    "nearly_orthogonal_lh",
    "randomized_lh",
    "resolution_iii",
    "resolution_iv",
    "resolution_v",
    "scale_design",
]
