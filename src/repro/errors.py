"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating in this package with a single handler while
still being able to discriminate the subsystem that raised it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation was used with an incompatible or malformed schema."""


class QueryError(ReproError):
    """A relational query is malformed or references unknown objects."""


class CatalogError(ReproError):
    """A database catalog operation failed (missing/duplicate tables)."""


class VGFunctionError(ReproError):
    """A variable-generation (VG) function was invoked incorrectly."""


class SimulationError(ReproError):
    """A simulation model failed to execute or was configured wrongly."""


class AlignmentError(ReproError):
    """A time- or schema-alignment transformation cannot be performed."""


class DesignError(ReproError):
    """An experimental design cannot be constructed as requested."""


class CalibrationError(ReproError):
    """A calibration procedure failed to converge or was misconfigured."""


class GridError(ReproError):
    """A gridfield operation was applied to incompatible grids."""


class FilteringError(ReproError):
    """A particle-filtering operation failed (e.g. total weight collapse)."""


class FaultError(ReproError):
    """Base class for fault-injection and task-recovery errors.

    :mod:`repro.faults` derives its concrete errors from this class:
    injected faults (:class:`repro.faults.InjectedFault`), per-task
    timeouts (:class:`repro.faults.TaskTimeout`), and the terminal
    :class:`repro.faults.TaskFailed` carrying the attempt history.
    """
