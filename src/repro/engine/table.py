"""In-memory tables for the relational engine.

Rows are stored as validated dictionaries.  Tables are the unit that the
Monte Carlo database (``repro.mcdb``), the Indemics engine
(``repro.epidemics``) and the agent-based self-join machinery
(``repro.abs.selfjoin``) build on.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.engine.expressions import Expression
from repro.engine.schema import Column, Schema
from repro.errors import SchemaError

Row = Dict[str, Any]


class Table:
    """A named, schema-validated bag of rows.

    Examples
    --------
    >>> t = Table("person", Schema.of(pid=int, age=int))
    >>> t.insert({"pid": 1, "age": 30})
    >>> len(t)
    1
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: List[Row] = []
        self._version = 0
        self._reorg_epoch = 0
        if rows is not None:
            self.insert_many(rows)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_rows(
        cls, name: str, rows: Sequence[Mapping[str, Any]]
    ) -> "Table":
        """Infer a schema from the first row and build the table."""
        if not rows:
            raise SchemaError("cannot infer a schema from zero rows")
        first = rows[0]
        cols = []
        for key, value in first.items():
            dtype: type
            if isinstance(value, bool):
                dtype = bool
            elif isinstance(value, (int, np.integer)):
                dtype = int
            elif isinstance(value, (float, np.floating)):
                dtype = float
            else:
                dtype = str
            cols.append(Column(key, dtype))
        return cls(name, Schema(cols), rows)

    @classmethod
    def from_columns(
        cls, name: str, columns: Mapping[str, Sequence[Any]]
    ) -> "Table":
        """Build a table from parallel column arrays."""
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns with lengths {lengths}")
        n = lengths.pop() if lengths else 0
        rows = [
            {key: values[i] for key, values in columns.items()}
            for i in range(n)
        ]
        if not rows:
            raise SchemaError("from_columns needs at least one row")
        return cls.from_rows(name, rows)

    # -- mutation ----------------------------------------------------------
    def insert(self, row: Mapping[str, Any]) -> None:
        """Validate, coerce and append one row."""
        self._rows.append(self.schema.validate_row(row))
        self._version += 1

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows atomically; returns the number inserted.

        The whole batch is validated before anything is stored, so a bad
        row leaves the table (and :attr:`version`) untouched, and the
        batch bumps :attr:`version` exactly once — version-keyed caches
        see one invalidation per mutation batch, not one per row.
        """
        validated = [self.schema.validate_row(row) for row in rows]
        if validated:
            self._rows.extend(validated)
            self._version += 1
        return len(validated)

    def delete_where(self, predicate: Expression) -> int:
        """Delete rows satisfying ``predicate``; returns the count removed.

        :attr:`version` (and :attr:`reorg_epoch`) move only when a row
        was actually removed — a no-match delete leaves version-keyed
        caches valid instead of spuriously invalidating them.
        """
        before = len(self._rows)
        kept = [r for r in self._rows if predicate.evaluate(r) is not True]
        removed = before - len(kept)
        if removed:
            self._rows = kept
            self._version += 1
            self._reorg_epoch += 1
        return removed

    def update_where(
        self,
        predicate: Expression,
        assignments: Mapping[str, Expression],
    ) -> int:
        """Apply ``column := expression`` to rows matching ``predicate``."""
        unknown = set(assignments) - set(self.schema.names)
        if unknown:
            raise SchemaError(f"cannot update unknown columns {sorted(unknown)}")
        count = 0
        for row in self._rows:
            if predicate.evaluate(row) is True:
                updates = {
                    name: self.schema.column(name).coerce(expr.evaluate(row))
                    for name, expr in assignments.items()
                }
                row.update(updates)
                count += 1
        if count:
            self._version += 1
            self._reorg_epoch += 1
        return count

    def truncate(self) -> None:
        """Remove all rows (a no-op — no version bump — when already empty)."""
        if self._rows:
            self._rows.clear()
            self._version += 1
            self._reorg_epoch += 1

    # -- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {self.schema!r})"

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutating method.

        Cache keys (e.g. the morsel executor's scan-batch cache) pair it
        with the row count; edits made directly through :attr:`rows`
        bypass it, which such caches guard against only by length.
        Batch mutations bump exactly once, and mutating calls that match
        nothing leave the counter alone — version moves if and only if
        row data changed.
        """
        return self._version

    @property
    def reorg_epoch(self) -> int:
        """Counter bumped by every *non-append* mutation that changed rows.

        ``delete_where``/``update_where``/``truncate`` advance it;
        ``insert``/``insert_many`` never do.  An observer that recorded
        ``(reorg_epoch, version, len)`` can therefore prove that every
        change since its watermark was a pure append — the invariant
        :class:`repro.delta.AppendLog` builds incremental aggregate
        maintenance on.  Direct edits through :attr:`rows` bypass it
        (same caveat as :attr:`version`).
        """
        return self._reorg_epoch

    @property
    def rows(self) -> List[Row]:
        """Direct (mutable) access to the stored rows.

        Mutating the returned list bypasses schema validation *and* the
        :attr:`version` counter — prefer the mutation methods.
        """
        return self._rows

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        self.schema.column(name)
        return [row[name] for row in self._rows]

    def column_array(self, name: str) -> np.ndarray:
        """One numeric column as a numpy array (``None`` becomes ``nan``)."""
        values = self.column_values(name)
        return np.array(
            [np.nan if v is None else v for v in values], dtype=float
        )

    def copy(self, name: Optional[str] = None) -> "Table":
        """A deep-enough copy (rows are copied, values shared)."""
        clone = Table(name or self.name, self.schema)
        clone._rows = [dict(r) for r in self._rows]
        return clone

    def head(self, n: int = 5) -> List[Row]:
        """The first ``n`` rows (for inspection and doctests)."""
        return [dict(r) for r in self._rows[:n]]

    def to_pretty_string(self, limit: int = 20) -> str:
        """A fixed-width textual rendering for reports and benchmarks."""
        names = list(self.schema.names)
        shown = self._rows[:limit]
        cells = [
            [("" if row[n] is None else str(row[n])) for n in names]
            for row in shown
        ]
        widths = [
            max([len(n)] + [len(row[i]) for row in cells])
            for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        lines = [header, sep]
        for row in cells:
            lines.append(
                " | ".join(v.ljust(w) for v, w in zip(row, widths))
            )
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
