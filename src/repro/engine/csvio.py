"""CSV import/export for tables.

Splash-style loose coupling means "models communicate by reading and
writing datasets" — in practice, files.  These helpers move tables
between the relational engine and CSV files so component models can be
driven by real artifacts on disk.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import SchemaError

PathLike = Union[str, Path]


def table_to_csv(table: Table, path: PathLike) -> int:
    """Write a table to ``path`` (header + one row per tuple).

    ``None`` values are written as empty fields.  Returns the number of
    rows written.
    """
    path = Path(path)
    names = list(table.schema.names)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        count = 0
        for row in table:
            writer.writerow(
                ["" if row[n] is None else row[n] for n in names]
            )
            count += 1
    return count


def table_from_csv(
    name: str,
    path: PathLike,
    schema: Optional[Schema] = None,
) -> Table:
    """Read a table from a CSV file with a header row.

    With an explicit ``schema``, values are coerced to the declared
    types (empty fields become ``None``).  Without one, types are
    inferred per column: ``int`` if every non-empty value parses as an
    integer, else ``float`` if every value parses as a float, else
    ``str``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty (no header row)") from None
        raw_rows = [row for row in reader if row]
    if not header:
        raise SchemaError(f"{path} has an empty header row")
    for row in raw_rows:
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row with {len(row)} fields, header has "
                f"{len(header)}"
            )

    if schema is None:
        schema = _infer_schema(header, raw_rows)

    table = Table(name, schema)
    for raw in raw_rows:
        record = {}
        for column_name, value in zip(header, raw):
            record[column_name] = None if value == "" else value
        table.insert(record)
    return table


def _infer_schema(header: Sequence[str], rows: Sequence[Sequence[str]]) -> Schema:
    spec = {}
    for index, column_name in enumerate(header):
        values = [row[index] for row in rows if row[index] != ""]
        spec[column_name] = _infer_type(values)
    return Schema.from_spec(spec)


def _infer_type(values: Sequence[str]) -> str:
    if not values:
        return "str"
    if all(_parses_as_int(v) for v in values):
        return "int"
    if all(_parses_as_float(v) for v in values):
        return "float"
    if all(v.lower() in ("true", "false") for v in values):
        return "bool"
    return "str"


def _parses_as_int(value: str) -> bool:
    try:
        int(value)
        return True
    except ValueError:
        return False


def _parses_as_float(value: str) -> bool:
    try:
        float(value)
        return True
    except ValueError:
        return False
