"""CSV import/export for tables.

Splash-style loose coupling means "models communicate by reading and
writing datasets" — in practice, files.  These helpers move tables
between the relational engine and CSV files so component models can be
driven by real artifacts on disk.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import SchemaError

PathLike = Union[str, Path]

#: Field marker for SQL ``NULL``.  ``None`` used to be written as an
#: empty field, which made a genuine ``""`` in a ``str`` column
#: indistinguishable from NULL on the way back in.
NULL_MARKER = "\\N"

#: Strings that would collide with the NULL marker after unescaping
#: (``\N``, ``\\N``, ...) are written with one extra leading backslash.
_NULL_LIKE = re.compile(r"^\\+N$")


def _encode_field(value: Any) -> Any:
    if value is None:
        return NULL_MARKER
    if isinstance(value, str) and _NULL_LIKE.match(value):
        return "\\" + value
    return value


def _decode_field(value: str, declared: Optional[type]) -> Optional[str]:
    if value == NULL_MARKER:
        return None
    if value == "":
        # Empty fields stay "" for str columns; for typed columns they
        # keep meaning NULL (and legacy files encoded NULL this way).
        return "" if declared is str else None
    if _NULL_LIKE.match(value):
        return value[1:]
    return value


def table_to_csv(table: Table, path: PathLike) -> int:
    """Write a table to ``path`` (header + one row per tuple).

    ``None`` values are written as ``\\N`` so that an empty string in a
    ``str`` column survives the round-trip.  Returns the number of rows
    written.
    """
    path = Path(path)
    names = list(table.schema.names)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        count = 0
        for row in table:
            writer.writerow([_encode_field(row[n]) for n in names])
            count += 1
    return count


def table_from_csv(
    name: str,
    path: PathLike,
    schema: Optional[Schema] = None,
) -> Table:
    """Read a table from a CSV file with a header row.

    With an explicit ``schema``, values are coerced to the declared
    types.  ``\\N`` fields become ``None``; empty fields stay ``""``
    for ``str`` columns and become ``None`` for typed columns (the
    legacy NULL encoding).  Without a schema, types are inferred per
    column: ``int`` if every non-null value parses as an integer, else
    ``float``, else ``bool``, else ``str``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty (no header row)") from None
        raw_rows = [row for row in reader if row]
    if not header:
        raise SchemaError(f"{path} has an empty header row")
    for row in raw_rows:
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row with {len(row)} fields, header has "
                f"{len(header)}"
            )

    if schema is None:
        schema = _infer_schema(header, raw_rows)

    table = Table(name, schema)
    dtypes = {column.name: column.dtype for column in schema.columns}
    for raw in raw_rows:
        record = {}
        for column_name, value in zip(header, raw):
            record[column_name] = _decode_field(
                value, dtypes.get(column_name)
            )
        table.insert(record)
    return table


def _infer_schema(header: Sequence[str], rows: Sequence[Sequence[str]]) -> Schema:
    spec = {}
    for index, column_name in enumerate(header):
        values = [
            row[index]
            for row in rows
            if row[index] not in ("", NULL_MARKER)
        ]
        spec[column_name] = _infer_type(values)
    return Schema.from_spec(spec)


def _infer_type(values: Sequence[str]) -> str:
    if not values:
        return "str"
    if all(_parses_as_int(v) for v in values):
        return "int"
    if all(_parses_as_float(v) for v in values):
        return "float"
    if all(v.lower() in ("true", "false") for v in values):
        return "bool"
    return "str"


def _parses_as_int(value: str) -> bool:
    try:
        int(value)
        return True
    except ValueError:
        return False


def _parses_as_float(value: str) -> bool:
    try:
        float(value)
        return True
    except ValueError:
        return False
