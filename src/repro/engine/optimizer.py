"""Rule- and cost-based logical plan optimization.

Two classical rewrites are implemented:

* **Predicate pushdown** — filters migrate below projections and into the
  matching side of joins, shrinking intermediate results.  This is the same
  algebraic commutation that :mod:`repro.gridfields` exploits for the
  restrict/regrid rewrite of Section 2.2.
* **Join reordering** — a greedy cost-based ordering of an inner-join chain
  using catalog statistics (:mod:`repro.engine.statistics`), the database
  analogue of choosing replication fractions from component-model metadata
  in Section 2.3.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine import plan as lp
from repro.engine.expressions import (
    Expression,
    combine_and,
    conjuncts,
)
from repro.errors import QueryError
from repro.engine.statistics import (
    TableStatistics,
    join_cardinality,
    predicate_selectivity,
)

StatsLookup = Callable[[str], Optional[TableStatistics]]


def _available_columns(
    node: lp.PlanNode, schema_lookup: Callable[[str], Sequence[str]]
) -> Set[str]:
    """Column names a predicate evaluated above ``node`` could reference."""
    if isinstance(node, lp.Scan):
        names = schema_lookup(node.table)
        if node.alias:
            qualified = {f"{node.alias}.{n}" for n in names}
        else:
            qualified = set(names)
        return qualified
    if isinstance(node, lp.Values):
        return set(node.rows[0]) if node.rows else set()
    if isinstance(node, lp.Project):
        return set(node.aliases)
    if isinstance(node, lp.Aggregate):
        return set(node.group_aliases) | {a.alias for a in node.aggregates}
    cols: Set[str] = set()
    for child in node.children():
        cols |= _available_columns(child, schema_lookup)
    return cols


def _references_resolvable(
    predicate: Expression, columns: Set[str]
) -> bool:
    """True when every column in ``predicate`` resolves within ``columns``."""
    for name in predicate.columns():
        if name in columns:
            continue
        suffix = "." + name
        matches = [c for c in columns if c.endswith(suffix)]
        if len(matches) != 1:
            return False
    return True


def push_down_filters(
    node: lp.PlanNode, schema_lookup: Callable[[str], Sequence[str]]
) -> lp.PlanNode:
    """Push filter predicates as close to the scans as possible."""
    node = node.with_children(
        [push_down_filters(c, schema_lookup) for c in node.children()]
    )
    if not isinstance(node, lp.Filter):
        return node
    child = node.child
    parts = list(conjuncts(node.predicate))

    if isinstance(child, lp.Filter):
        merged = lp.Filter(
            child.child, combine_and(parts + list(conjuncts(child.predicate)))
        )
        return push_down_filters(merged, schema_lookup)

    if isinstance(child, lp.Join) and child.how == "inner":
        left_cols = _available_columns(child.left, schema_lookup)
        right_cols = _available_columns(child.right, schema_lookup)
        to_left: List[Expression] = []
        to_right: List[Expression] = []
        keep: List[Expression] = []
        for part in parts:
            if _references_resolvable(part, left_cols):
                to_left.append(part)
            elif _references_resolvable(part, right_cols):
                to_right.append(part)
            else:
                keep.append(part)
        new_left = child.left
        new_right = child.right
        if to_left:
            new_left = push_down_filters(
                lp.Filter(new_left, combine_and(to_left)), schema_lookup
            )
        if to_right:
            new_right = push_down_filters(
                lp.Filter(new_right, combine_and(to_right)), schema_lookup
            )
        new_join = lp.Join(new_left, new_right, child.condition, child.how)
        if keep:
            return lp.Filter(new_join, combine_and(keep))
        return new_join

    if isinstance(child, (lp.OrderBy, lp.Distinct)):
        # Filter commutes with sorting and duplicate elimination.
        pushed = push_down_filters(
            lp.Filter(child.children()[0], node.predicate), schema_lookup
        )
        return child.with_children([pushed])

    return node


def _collect_join_chain(
    node: lp.PlanNode,
) -> Optional[Tuple[List[lp.PlanNode], List[Expression]]]:
    """Flatten a left-deep chain of inner joins into relations+conditions."""
    if not isinstance(node, lp.Join) or node.how != "inner":
        return None
    relations: List[lp.PlanNode] = []
    conditions: List[Expression] = []

    def visit(n: lp.PlanNode) -> None:
        if isinstance(n, lp.Join) and n.how == "inner":
            visit(n.left)
            visit(n.right)
            if n.condition is not None:
                conditions.extend(conjuncts(n.condition))
        else:
            relations.append(n)

    visit(node)
    return relations, conditions


def _estimate_rows(
    node: lp.PlanNode, stats_lookup: StatsLookup
) -> float:
    """Rough cardinality estimate for a leaf-ish plan node."""
    if isinstance(node, lp.Scan):
        stats = stats_lookup(node.table)
        return float(stats.row_count) if stats else 1000.0
    if isinstance(node, lp.Values):
        return float(len(node.rows))
    if isinstance(node, lp.Filter):
        base = _estimate_rows(node.child, stats_lookup)
        table_stats = _scan_stats(node.child, stats_lookup)
        if table_stats is not None:
            return base * predicate_selectivity(node.predicate, table_stats)
        return base * 0.3
    if isinstance(node, lp.Limit):
        return min(
            float(node.count), _estimate_rows(node.child, stats_lookup)
        )
    children = node.children()
    if children:
        return max(_estimate_rows(c, stats_lookup) for c in children)
    return 1000.0


def _scan_stats(
    node: lp.PlanNode, stats_lookup: StatsLookup
) -> Optional[TableStatistics]:
    if isinstance(node, lp.Scan):
        return stats_lookup(node.table)
    children = node.children()
    if len(children) == 1:
        return _scan_stats(children[0], stats_lookup)
    return None


def reorder_joins(
    node: lp.PlanNode, stats_lookup: StatsLookup
) -> lp.PlanNode:
    """Greedily reorder inner-join chains by estimated cardinality.

    Starts from the smallest estimated relation and repeatedly joins the
    relation that minimizes the estimated size of the next intermediate
    result, preferring relations connected by a join predicate (avoiding
    cross products when possible).
    """
    node = node.with_children(
        [reorder_joins(c, stats_lookup) for c in node.children()]
    )
    chain = _collect_join_chain(node)
    if chain is None or len(chain[0]) < 3:
        return node
    relations, conditions = chain

    def touches(cond: Expression, cols: Set[str]) -> bool:
        return _references_resolvable(cond, cols)

    # Columns each relation exposes: approximate via scan aliases.
    def rel_cols(rel: lp.PlanNode) -> Set[str]:
        cols: Set[str] = set()
        for n in lp.walk(rel):
            if isinstance(n, lp.Scan):
                stats = stats_lookup(n.table)
                names = list(stats.columns) if stats else []
                if n.alias:
                    cols |= {f"{n.alias}.{c}" for c in names}
                else:
                    cols |= set(names)
        return cols

    remaining = list(range(len(relations)))
    sizes = [_estimate_rows(r, stats_lookup) for r in relations]
    start = min(remaining, key=lambda i: sizes[i])
    remaining.remove(start)
    current = relations[start]
    current_cols = rel_cols(relations[start])
    current_size = sizes[start]
    unused_conditions = list(conditions)

    while remaining:

        def applicable(idx: int) -> List[Expression]:
            cols = current_cols | rel_cols(relations[idx])
            return [c for c in unused_conditions if touches(c, cols)]

        # Prefer connected relations; fall back to smallest.
        connected = [i for i in remaining if applicable(i)]
        candidates = connected or remaining

        def result_size(idx: int) -> float:
            conds = applicable(idx)
            size = current_size * sizes[idx]
            if conds:
                size *= 0.1 ** len(conds)
            return size

        best = min(candidates, key=result_size)
        conds = applicable(best)
        # Expressions overload ``==`` to build predicates, so membership
        # tests must use identity, never ``list.remove``.
        unused_conditions = [
            u for u in unused_conditions if not any(u is c for c in conds)
        ]
        current = lp.Join(
            current,
            relations[best],
            combine_and(conds) if conds else None,
            "inner",
        )
        current_cols |= rel_cols(relations[best])
        current_size = result_size(best)
        remaining.remove(best)

    if unused_conditions:
        current = lp.Filter(current, combine_and(unused_conditions))
    return current


#: Both join sides must clear this estimated row count before sort-merge
#: is considered: below it, the hash probe's per-left-row binary search
#: is cheap and the extra sorts never pay off.
SORT_MERGE_MIN_ROWS = 512.0

#: Minimum distinct-values/rows ratio on an equi-key column.  Sort-merge
#: wins on near-unique keys (short merge runs); heavy duplication means
#: large cartesian runs where the hash layout is no worse.
SORT_MERGE_MIN_NDV_RATIO = 0.8


def _key_ndv_ratio(
    node: lp.PlanNode,
    condition: Expression,
    stats_lookup: StatsLookup,
) -> Optional[float]:
    """Best distinct/rows ratio among equi-key columns of one join side."""
    stats = _scan_stats(node, stats_lookup)
    if stats is None or not stats.row_count:
        return None
    referenced = condition.columns()
    best: Optional[float] = None
    for name in referenced:
        col = stats.column(name)
        if col is None or not col.distinct_count:
            continue
        ratio = col.distinct_count / stats.row_count
        if best is None or ratio > best:
            best = ratio
    return best


#: Returns the registered partitioning of a catalog table, or ``None``.
PartitionLookup = Callable[[str], Optional[object]]


def _names_column(expr: Expression, key: str) -> bool:
    """Whether ``expr`` is a bare (possibly alias-qualified) ``key`` ref."""
    from repro.engine.expressions import Column

    if not isinstance(expr, Column):
        return False
    return expr.name == key or expr.name.endswith("." + key)


def _co_partitioned(
    node: "lp.Join",
    partition_lookup: PartitionLookup,
    schema_lookup: Callable[[str], Sequence[str]],
) -> bool:
    """Whether ``node`` is an equi-join of two co-partitioned bare scans.

    The admission test mirrors exactly what the partitioned executor can
    exploit: both inputs are bare ``Scan`` nodes (a filter in between
    would change the row sets the positions index), both tables carry
    compatible registered partitionings, and some equi-key pair is the
    partition key of each respective side — then every joinable row pair
    co-locates and shard-i-against-shard-i probing is exhaustive.
    """
    from repro.engine.operators import _equi_keys

    if not isinstance(node.left, lp.Scan) or not isinstance(
        node.right, lp.Scan
    ):
        return False
    parted_l = partition_lookup(node.left.table)
    parted_r = partition_lookup(node.right.table)
    if parted_l is None or parted_r is None:
        return False
    if not parted_l.compatible_with(parted_r):
        return False
    lkeys, rkeys, _ = _equi_keys(
        node.condition,
        dict.fromkeys(_available_columns(node.left, schema_lookup)),
        dict.fromkeys(_available_columns(node.right, schema_lookup)),
    )
    return any(
        _names_column(lk, parted_l.key) and _names_column(rk, parted_r.key)
        for lk, rk in zip(lkeys, rkeys)
    )


def choose_join_algorithms(
    node: lp.PlanNode,
    stats_lookup: StatsLookup,
    partition_lookup: Optional[PartitionLookup] = None,
    schema_lookup: Optional[Callable[[str], Sequence[str]]] = None,
) -> lp.PlanNode:
    """Annotate equi-joins with a physical algorithm.

    Purely a performance hint — every executor emits byte-identical
    candidate pairs in the same order (see
    :class:`repro.engine.operators.SortMergeJoinExec` and
    :class:`repro.engine.operators.CoPartitionedHashJoinExec`).
    Co-partitioned wins first: two bare scans of tables partitioned
    compatibly on an equi-key need no shuffle at all.  Otherwise
    sort-merge is chosen when both sides are estimated large and an
    equi-key column looks near-unique; everything else keeps the hash
    default.  Runs *after* all structural rewrites because
    ``push_down_filters`` rebuilds joins without the annotation.
    """
    children = [
        choose_join_algorithms(
            c, stats_lookup, partition_lookup, schema_lookup
        )
        for c in node.children()
    ]
    if children:
        node = node.with_children(children)
    if not isinstance(node, lp.Join) or node.condition is None:
        return node
    if node.algorithm is not None:
        return node
    if (
        partition_lookup is not None
        and schema_lookup is not None
        and _co_partitioned(node, partition_lookup, schema_lookup)
    ):
        return replace(node, algorithm="co_partitioned")
    left_rows = _estimate_rows(node.left, stats_lookup)
    right_rows = _estimate_rows(node.right, stats_lookup)
    if min(left_rows, right_rows) < SORT_MERGE_MIN_ROWS:
        return node
    ratios = [
        _key_ndv_ratio(side, node.condition, stats_lookup)
        for side in (node.left, node.right)
    ]
    known = [r for r in ratios if r is not None]
    if not known or min(known) < SORT_MERGE_MIN_NDV_RATIO:
        return node
    return replace(node, algorithm="sort_merge")


def optimize(
    node: lp.PlanNode,
    schema_lookup: Callable[[str], Sequence[str]],
    stats_lookup: StatsLookup,
    partition_lookup: Optional[PartitionLookup] = None,
) -> lp.PlanNode:
    """Apply all rewrites: pushdown, reorder, pushdown, then physical hints."""
    node = push_down_filters(node, schema_lookup)
    node = reorder_joins(node, stats_lookup)
    node = push_down_filters(node, schema_lookup)
    node = choose_join_algorithms(
        node, stats_lookup, partition_lookup, schema_lookup
    )
    return node


# ---------------------------------------------------------------------------
# Execution-mode selection (row vs columnar)
# ---------------------------------------------------------------------------

#: Environment knob overriding the default execution mode for every plan
#: that does not pass an explicit ``execution=`` argument.
EXECUTION_ENV_VAR = "REPRO_ENGINE_EXECUTION"

_EXECUTION_MODES = ("auto", "row", "columnar")


def resolve_execution_mode(requested: Optional[str] = None) -> str:
    """Resolve the effective execution mode.

    Precedence: explicit ``requested`` argument, then the
    ``REPRO_ENGINE_EXECUTION`` environment variable, then ``"auto"``.
    """
    mode = requested
    if mode is None:
        mode = os.environ.get(EXECUTION_ENV_VAR) or "auto"
    if mode not in _EXECUTION_MODES:
        raise QueryError(
            f"unknown execution mode {mode!r}; "
            f"expected one of {_EXECUTION_MODES}"
        )
    return mode


def choose_execution(
    plan: lp.PlanNode, requested: Optional[str] = None, morsel: bool = False
) -> str:
    """Pick ``"row"`` or ``"columnar"`` for one plan.

    ``auto`` (and even a forced ``columnar``) degrades to row mode when
    the plan contains a LIMIT: the row pipeline evaluates lazily and
    stops pulling once the limit is reached, so its per-operator
    ``engine.operator.rows`` counters reflect the short-circuit — a
    materializing batch executor could not emit identical observability.
    With ``morsel=True`` (a :class:`repro.engine.morsel.MorselExecutor`
    will run the plan), LIMITs whose shape the vectorized LIMIT path
    accepts (:func:`repro.engine.fusion.limit_chain`) no longer force row
    mode — that path evaluates morsel-incrementally and reconstructs the
    row engine's exact short-circuit accounting.
    Individual non-vectorizable operators inside a columnar plan do not
    need this knob; :class:`repro.engine.operators.ColumnarExecutor`
    falls back per node.
    """
    mode = resolve_execution_mode(requested)
    if mode == "row":
        return "row"
    limits = [n for n in lp.walk(plan) if isinstance(n, lp.Limit)]
    if limits:
        if not morsel:
            return "row"
        from repro.engine.fusion import limit_chain

        if any(limit_chain(n) is None for n in limits):
            return "row"
    return "columnar"
