"""Partitioned tables and partition-aware morsel execution.

Slice 1 of the sharded data plane: a :class:`PartitionedTable` assigns
every row of an engine :class:`~repro.engine.table.Table` to one of
``n`` partitions by a key column — ``hash`` partitioning via the same
CRC-32 canonical-key assignment the mapreduce shuffle uses
(:mod:`repro.exec.keys`), or ``range`` partitioning over deterministic
boundaries derived from the sorted distinct keys — and the
:class:`PartitionedMorselExecutor` runs fused ``Filter``/``Project``
chains and fused aggregates one morsel per partition slice, fanned out
through the :mod:`repro.exec` substrate, with the merge restoring the
exact original row order.

Determinism argument (the partitioned plan must be byte-identical to
the unpartitioned one at every partition count, on every backend):

* partition assignment is a pure function of the key
  (:func:`repro.exec.keys.partition_index` / fixed range boundaries),
  never of arrival order, backend, or worker count;
* every fused stage is elementwise or row-local, so evaluating a
  partition slice is exactly evaluating those rows within the full
  batch;
* each surviving row carries its *original position* through every
  filter mask, and the driver merges with a stable argsort over
  positions — reproducing the unpartitioned row order exactly;
* anything order-sensitive (group accumulation, non-associative float
  addition) is not distributed: partitions only evaluate group keys and
  aggregate arguments, the merge restores source order, and the driver
  runs the same serial accumulation the unpartitioned executor runs;
* per-operator obs counters are summed over partition morsels — each
  source row is processed exactly once per stage, so the totals equal
  the serial counts; shuffle accounting lives in
  :class:`PartitionRun` records on the executor, **never** in the obs
  registry or :class:`ExecutionMetrics` (both must stay byte-identical
  to unpartitioned runs).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import plan as lp
from repro.engine.columnar import ColumnBatch
from repro.engine.fusion import (
    EvalStage,
    FilterStage,
    chain_stages,
    compile_stages,
    prune_columns,
)
from repro.engine.morsel import (
    MorselExecutor,
    _slice_batch,
)
from repro.engine.expressions import Column, Expression
from repro.engine.operators import (
    ExecutionMetrics,
    HashJoinExec,
    TableProvider,
    _concat_batches,
    _equi_keys,
)
from repro.engine.table import Table
from repro.errors import CatalogError
from repro.exec.keys import partition_index
from repro.exec.substrate import Substrate
from repro.parallel.backend import Backend

__all__ = [
    "PARTITION_SCOPE",
    "PartitionRun",
    "PartitionedMorselExecutor",
    "PartitionedTable",
]

#: Fault-plan scope for partition-parallel fan-outs; the task index is
#: the morsel's position in the deterministic (partition-major) order.
PARTITION_SCOPE = "engine.partition"

_SCHEMES = ("hash", "range")


class PartitionedTable:
    """A key-partitioned view over an engine table.

    Rows never move: the table stays one in-process
    :class:`~repro.engine.table.Table`, and the partitioning is a list
    of ascending original-row-position arrays, one per partition.  NULL
    keys land on partition 0 (both schemes), mirroring the convention
    that NULLs group first-seen in the columnar group-by.

    ``hash`` assigns ``partition_index(key, n)`` — the mapreduce
    shuffle's canonical CRC-32 assignment, so equality-equal numeric
    spellings (``1``/``1.0``/``True``) share a partition and a key keeps
    its partition across subsystem boundaries.  ``range`` derives ``n-1``
    boundaries from the sorted distinct keys at build time and assigns
    by binary search; boundaries are a pure function of the key set.
    """

    def __init__(
        self,
        table: Table,
        key: str,
        num_partitions: int,
        scheme: str = "hash",
    ) -> None:
        if num_partitions < 1:
            raise CatalogError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if scheme not in _SCHEMES:
            raise CatalogError(
                f"unknown partition scheme {scheme!r}; expected one of "
                f"{_SCHEMES}"
            )
        if key not in table.schema.names:
            raise CatalogError(
                f"table {table.name!r} has no column {key!r} to "
                f"partition on"
            )
        self.table = table
        self.key = key
        self.num_partitions = num_partitions
        self.scheme = scheme
        self._built_version: Optional[int] = None
        self._built_length: Optional[int] = None
        self._positions: List[np.ndarray] = []
        self._boundaries: List[Any] = []
        self._build()

    # -- assignment ----------------------------------------------------------
    def _range_boundaries(self, values: Sequence[Any]) -> List[Any]:
        distinct = sorted({v for v in values if v is not None})
        n = self.num_partitions
        if not distinct or n == 1:
            return []
        # n-1 cut points at even quantile offsets of the distinct keys:
        # deterministic, data-dependent, and stable under row reorder.
        return [
            distinct[(len(distinct) * i) // n]
            for i in range(1, n)
        ]

    def _assign(self, value: Any) -> int:
        if value is None:
            return 0
        if self.scheme == "hash":
            return partition_index(value, self.num_partitions)
        return bisect.bisect_right(self._boundaries, value)

    def _build(self) -> None:
        table = self.table
        values = table.column_values(self.key)
        if self.scheme == "range":
            self._boundaries = self._range_boundaries(values)
        assignment = np.fromiter(
            (self._assign(v) for v in values),
            dtype=np.int64,
            count=len(values),
        )
        self._positions = [
            np.flatnonzero(assignment == p)
            for p in range(self.num_partitions)
        ]
        self._built_version = table.version
        self._built_length = len(table)

    # -- public surface ------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the table mutated since the positions were built."""
        return (
            self._built_version != self.table.version
            or self._built_length != len(self.table)
        )

    def refresh(self) -> "PartitionedTable":
        """Rebuild the position arrays if the table has mutated."""
        if self.stale:
            self._build()
        return self

    def positions(self) -> List[np.ndarray]:
        """Ascending original-row positions, one array per partition."""
        self.refresh()
        return self._positions

    def partition_sizes(self) -> List[int]:
        """Row count per partition (diagnostics / shuffle accounting)."""
        return [int(p.size) for p in self.positions()]

    def compatible_with(self, other: "PartitionedTable") -> bool:
        """Whether equal keys land on equal partition indices in both.

        True iff the schemes and partition counts match — and, for
        ``range`` partitioning, the boundary lists too (hash assignment
        is a pure function of (key, n); range assignment also depends on
        the data-derived cut points).  This is the co-partitioned join's
        admission test: when it holds, every joinable row pair already
        co-locates and shard-i-against-shard-i probing is exhaustive.
        """
        if self.scheme != other.scheme:
            return False
        if self.num_partitions != other.num_partitions:
            return False
        if self.scheme == "range":
            self.refresh()
            other.refresh()
            if self._boundaries != other._boundaries:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionedTable {self.table.name!r} key={self.key!r} "
            f"scheme={self.scheme} n={self.num_partitions}>"
        )


# -- shuffle accounting ------------------------------------------------------

@dataclass
class PartitionRun:
    """Accounting for one partition-parallel operator execution.

    Deliberately *outside* the obs registry and
    :class:`ExecutionMetrics`: partitioned results — including metric
    and obs snapshots — must stay byte-identical to unpartitioned runs,
    so the shuffle bookkeeping rides on the executor instead.
    """

    table: str
    key: str
    scheme: str
    partitions: int
    partition_rows: List[int] = field(default_factory=list)
    morsels: int = 0
    rows_in: int = 0
    rows_merged: int = 0
    #: Bytes a repartitioning hash join would have had to move between
    #: partitions (both sides' column payloads); zero for scan fan-outs.
    shuffle_bytes_avoided: int = 0


class _TrackedPipeline:
    """A fused pipeline that carries original row positions through.

    Like :class:`repro.engine.fusion.FusedPipeline` (same per-stage
    ``counts`` contract), but filters also apply their keep mask to the
    position array so the driver can merge partition outputs back into
    exact source order.  Picklable for the process backend.
    """

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[object]) -> None:
        self.stages = tuple(stages)

    def __call__(
        self, batch: ColumnBatch, positions: np.ndarray
    ) -> Tuple[ColumnBatch, np.ndarray, Tuple[int, ...]]:
        counts: List[int] = []
        for stage in self.stages:
            if isinstance(stage, FilterStage):
                mask = stage.predicate_mask(batch)
                batch = batch.take(mask)
                positions = positions[mask]
            else:
                batch = stage.apply(batch)
            counts.append(batch.length)
        return batch, positions, tuple(counts)

    def __getstate__(self):
        return self.stages

    def __setstate__(self, state):
        self.stages = state


def _apply_tracked(payload):
    """Worker task: one tracked pipeline over one partition morsel."""
    pipeline, morsel, positions = payload
    return pipeline(morsel, positions)


def _co_partition_pairs(payload):
    """Worker task: hash-probe one partition's key-code slices.

    ``payload`` is ``(lcodes_slice, rcodes_slice)`` — both sides' jointly
    factorized codes restricted to one partition.  Pure and picklable;
    the driver maps the local pair indices back through the partition's
    original-position arrays.
    """
    lcodes, rcodes = payload
    return HashJoinExec().candidate_pairs(lcodes, rcodes)


class PartitionedMorselExecutor(MorselExecutor):
    """Morsel executor whose morsels parallelize *across* partitions.

    For a fused chain or fused aggregate whose source is a ``Scan`` of a
    partitioned table, the source batch is sliced per partition, each
    slice is split into morsels, and all morsels fan out through the
    :mod:`repro.exec` substrate in deterministic partition-major order
    under the ``engine.partition`` fault scope.  Every other plan shape
    (joins, sorts, LIMIT, non-partitioned scans) falls back to the
    inherited morsel/columnar/row machinery unchanged — partitioning can
    never change results, metrics, or obs output.
    """

    def __init__(
        self,
        provider: TableProvider,
        metrics: Optional[ExecutionMetrics] = None,
        morsel_size: Optional[int] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        super().__init__(provider, metrics, morsel_size, backend)
        self.substrate = Substrate(self.backend)
        #: One record per partition-parallel operator execution, in
        #: execution order; reset by callers between queries as needed.
        self.partition_runs: List[PartitionRun] = []

    # -- plumbing ---------------------------------------------------------
    def _scan_partitioning(
        self, source: lp.PlanNode
    ) -> Optional[PartitionedTable]:
        if not isinstance(source, lp.Scan):
            return None
        lookup = getattr(self.provider, "partitioning", None)
        if lookup is None:
            return None
        parted = lookup(source.table)
        if parted is None:
            return None
        # The positions index the provider-resolved table; a diverging
        # resolution (e.g. a session overlay shadowing the base table)
        # must not be partition-executed against stale positions.
        if parted.table is not self.provider.resolve_table(source.table):
            return None
        return parted

    def _map_partitions(
        self,
        parted: PartitionedTable,
        pipeline: _TrackedPipeline,
        pruned: ColumnBatch,
    ) -> Tuple[List[Tuple[ColumnBatch, np.ndarray, Tuple[int, ...]]], PartitionRun]:
        """Fan one tracked pipeline over every partition's morsels."""
        tasks: List[Tuple[_TrackedPipeline, ColumnBatch, np.ndarray]] = []
        for positions in parted.positions():
            part_batch = pruned.take(positions)
            size = self.morsel_size
            bounds = [
                (lo, min(lo + size, part_batch.length))
                for lo in range(0, part_batch.length, size)
            ] or [(0, 0)]
            for lo, hi in bounds:
                tasks.append(
                    (
                        pipeline,
                        _slice_batch(part_batch, lo, hi),
                        positions[lo:hi],
                    )
                )
        run = PartitionRun(
            table=parted.table.name,
            key=parted.key,
            scheme=parted.scheme,
            partitions=parted.num_partitions,
            partition_rows=parted.partition_sizes(),
            morsels=len(tasks),
            rows_in=pruned.length,
        )
        if len(tasks) == 1:
            results = [pipeline(tasks[0][1], tasks[0][2])]
        else:
            results = self.substrate.submit(
                _apply_tracked,
                tasks,
                scope=PARTITION_SCOPE,
                quiet=True,
            )
        return results, run

    @staticmethod
    def _merge_tracked(
        results: Sequence[Tuple[ColumnBatch, np.ndarray, Tuple[int, ...]]],
    ) -> Tuple[ColumnBatch, np.ndarray]:
        """Concatenate partition outputs and restore source row order."""
        merged = _concat_batches([batch for batch, _, _ in results])
        positions = (
            np.concatenate([pos for _, pos, _ in results])
            if results
            else np.empty(0, dtype=np.int64)
        )
        if positions.size:
            order = np.argsort(positions, kind="stable")
            merged = merged.take(order)
        return merged, positions

    def _sum_counts(
        self,
        results: Sequence[Tuple[ColumnBatch, np.ndarray, Tuple[int, ...]]],
        n_stages: int,
    ) -> List[int]:
        totals = [0] * n_stages
        for _, _, counts in results:
            for i in range(n_stages):
                totals[i] += counts[i]
        return totals

    # -- fused filter/project chain over a partitioned scan ---------------
    def _chain_morsel_batch(self, node: lp.PlanNode) -> ColumnBatch:
        source, stage_nodes = chain_stages(node)
        parted = self._scan_partitioning(source)
        if parted is None:
            return super()._chain_morsel_batch(node)
        # _source_batch handles the Scan: version-keyed table cache,
        # rows_scanned, and the scan's own obs counter.  (No local scan
        # helper here — defining `_scan_batch` on this class would
        # shadow the ColumnarExecutor handler of the same name that
        # _run_batch dispatches for bare Scan nodes.)
        src = self._source_batch(source)
        pipeline = _TrackedPipeline(compile_stages(stage_nodes))
        results, run = self._map_partitions(
            parted, pipeline, prune_columns(src, stage_nodes)
        )
        totals = self._sum_counts(results, len(stage_nodes))
        # Top node's counter comes from the generic _run_batch wrapper
        # (merged length == the serial count); inner stages here.
        self._emit_stage_obs(stage_nodes[:-1], totals[:-1])
        merged, _ = self._merge_tracked(results)
        run.rows_merged = merged.length
        self.partition_runs.append(run)
        return merged

    # -- fused aggregate over a partitioned scan ---------------------------
    def _aggregate_morsel_batch(self, node: lp.Aggregate) -> ColumnBatch:
        found = chain_stages(node.child)
        source, stage_nodes = (
            found if found is not None else (node.child, [])
        )
        parted = self._scan_partitioning(source)
        if parted is None:
            return super()._aggregate_morsel_batch(node)
        key_names = [f"__key{i}" for i in range(len(node.group_by))]
        arg_names: List[Optional[str]] = []
        eval_exprs = list(node.group_by)
        eval_names = list(key_names)
        for i, spec in enumerate(node.aggregates):
            if spec.argument is None:
                arg_names.append(None)
            else:
                name = f"__arg{i}"
                arg_names.append(name)
                eval_exprs.append(spec.argument)
                eval_names.append(name)
        src = self._source_batch(source)
        stages = compile_stages(stage_nodes)
        stages.append(EvalStage(eval_exprs, eval_names))
        pipeline = _TrackedPipeline(stages)
        results, run = self._map_partitions(
            parted, pipeline, prune_columns(src, stage_nodes, eval_exprs)
        )
        totals = self._sum_counts(results, len(stage_nodes))
        self._emit_stage_obs(stage_nodes, totals)
        # Restore source row order before the (order-sensitive) serial
        # accumulation: group first-seen order and float addition order
        # then match the unpartitioned executor exactly.
        merged, _ = self._merge_tracked(results)
        run.rows_merged = merged.length
        self.partition_runs.append(run)
        n = merged.length
        merged_cols: Dict[str, Any] = {
            name: merged.columns[name] for name in eval_names
        }
        key_vecs = [merged_cols[name] for name in key_names]
        arg_vecs = [
            None if name is None else merged_cols[name] for name in arg_names
        ]
        return self._finish_aggregate(node, key_vecs, arg_vecs, n)

    # -- co-partitioned equi-join ------------------------------------------
    @staticmethod
    def _names_key(expr: Expression, key: str) -> bool:
        return isinstance(expr, Column) and (
            expr.name == key or expr.name.endswith("." + key)
        )

    @staticmethod
    def _batch_nbytes(batch: ColumnBatch) -> int:
        total = 0
        for vec in batch.columns.values():
            total += int(vec.values.nbytes) + int(vec.valid.nbytes)
        return total

    def _join_batches(
        self, node: lp.Join, left: ColumnBatch, right: ColumnBatch
    ) -> ColumnBatch:
        """Route optimizer-selected co-partitioned joins shard-by-shard.

        Every guard here re-checks at execution time what the optimizer
        saw at plan time (partitionings can be dropped or mutated in
        between); any mismatch falls back to the inherited path, where
        ``co_partitioned`` degrades to a plain hash join — partitioning
        can never change results.
        """
        if (
            node.algorithm != "co_partitioned"
            or node.condition is None
            or left.length == 0
            or right.length == 0
        ):
            return super()._join_batches(node, left, right)
        parted_l = self._scan_partitioning(node.left)
        parted_r = self._scan_partitioning(node.right)
        if (
            parted_l is None
            or parted_r is None
            or not parted_l.compatible_with(parted_r)
        ):
            return super()._join_batches(node, left, right)
        lkeys, rkeys, residual = _equi_keys(
            node.condition,
            dict.fromkeys(left.names),
            dict.fromkeys(right.names),
        )
        if not any(
            self._names_key(lk, parted_l.key)
            and self._names_key(rk, parted_r.key)
            for lk, rk in zip(lkeys, rkeys)
        ):
            return super()._join_batches(node, left, right)
        # Joint factorization gives equal keys equal codes across sides,
        # and collapses exactly the equality classes the canonical CRC-32
        # partitioner collapses — so equal codes always share a
        # partition, and probing shard-i-against-shard-i is exhaustive.
        lcodes, rcodes = self._join_key_codes(left, right, lkeys, rkeys)
        lpos = parted_l.positions()
        rpos = parted_r.positions()
        tasks = [
            (lcodes[lpos[p]], rcodes[rpos[p]])
            for p in range(parted_l.num_partitions)
        ]
        run = PartitionRun(
            table=f"{parted_l.table.name} join {parted_r.table.name}",
            key=parted_l.key,
            scheme=parted_l.scheme,
            partitions=parted_l.num_partitions,
            partition_rows=[
                int(lp_.size + rp_.size) for lp_, rp_ in zip(lpos, rpos)
            ],
            morsels=len(tasks),
            rows_in=left.length + right.length,
            shuffle_bytes_avoided=(
                self._batch_nbytes(left) + self._batch_nbytes(right)
            ),
        )
        if len(tasks) == 1:
            local = [_co_partition_pairs(tasks[0])]
        else:
            local = self.substrate.submit(
                _co_partition_pairs,
                tasks,
                scope=PARTITION_SCOPE,
                quiet=True,
            )
        pair_left = np.concatenate(
            [lpos[p][pl] for p, (pl, _) in enumerate(local)]
        )
        pair_right = np.concatenate(
            [rpos[p][pr] for p, (_, pr) in enumerate(local)]
        )
        # Hash emits pairs sorted by (left, right) original positions;
        # restoring that global order makes residual evaluation, metrics,
        # and row order byte-identical to the unpartitioned hash join.
        emit = np.lexsort((pair_right, pair_left))
        merged = self._finish_equi_join(
            left, right,
            pair_left[emit].astype(np.int64),
            pair_right[emit].astype(np.int64),
            residual, node.how,
        )
        run.rows_merged = merged.length
        self.partition_runs.append(run)
        return merged
