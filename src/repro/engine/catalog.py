"""The database catalog: named tables, statistics, query entry points."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine import plan as lp
from repro.engine.operators import (
    ColumnarExecutor,
    ExecutionMetrics,
    Executor,
    TableProvider,
)
from repro.engine.optimizer import choose_execution, optimize
from repro.engine.query import Query
from repro.engine.schema import Schema
from repro.engine.statistics import TableStatistics
from repro.engine.table import Row, Table
from repro.errors import CatalogError, QueryError


class Database(TableProvider):
    """An in-process relational database.

    Holds named :class:`~repro.engine.table.Table` objects, collects
    optimizer statistics on demand, and executes both fluent
    (:meth:`query`) and SQL (:meth:`sql`) queries.

    Examples
    --------
    >>> db = Database()
    >>> _ = db.create_table("t", Schema.of(x=int))
    >>> db.table("t").insert({"x": 1})
    >>> db.sql("SELECT x FROM t")
    [{'x': 1}]
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._partitionings: Dict[str, "PartitionedTable"] = {}
        self.metrics = ExecutionMetrics()

    # -- catalog management ----------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> Table:
        """Create (and register) a new table."""
        if name in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, rows)
        self._tables[name] = table
        self._statistics.pop(name, None)
        self._partitionings.pop(name, None)
        return table

    def register(self, table: Table, replace: bool = False) -> None:
        """Register an externally built table under its own name."""
        if table.name in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._statistics.pop(table.name, None)
        self._partitionings.pop(table.name, None)

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)
        self._partitionings.pop(name, None)

    # -- partitioning -----------------------------------------------------
    def partition_table(
        self,
        name: str,
        key: str,
        partitions: int,
        scheme: str = "hash",
    ) -> "PartitionedTable":
        """Register a key-partitioning for ``name`` (sharded data plane).

        Queries whose plans scan the table through the columnar engine
        then run fused chains and aggregates partition-parallel (one
        morsel stream per partition) via
        :class:`~repro.engine.partition.PartitionedMorselExecutor`,
        byte-identical to the unpartitioned plan.  Re-partitioning a
        table replaces its previous partitioning; position arrays are
        rebuilt automatically when the table mutates.
        """
        from repro.engine.partition import PartitionedTable

        parted = PartitionedTable(self.table(name), key, partitions, scheme)
        self._partitionings[name] = parted
        return parted

    def unpartition_table(self, name: str) -> None:
        """Drop the partitioning of ``name`` (a no-op if none exists)."""
        self._partitionings.pop(name, None)

    def partitioning(self, name: str) -> Optional["PartitionedTable"]:
        """The current partitioning of ``name`` (refreshed), or ``None``."""
        parted = self._partitionings.get(name)
        if parted is None:
            return None
        return parted.refresh()

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; catalog has {sorted(self._tables)}"
            ) from None

    def table_names(self) -> List[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- TableProvider ------------------------------------------------------
    def resolve_table(self, name: str) -> Table:
        """Resolve a base table for the executor."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None

    # -- statistics ---------------------------------------------------------
    def analyze(self, name: Optional[str] = None) -> None:
        """Collect optimizer statistics for one table or all tables."""
        names = [name] if name is not None else list(self._tables)
        for n in names:
            self._statistics[n] = TableStatistics.collect(self.table(n))

    def statistics(self, name: str) -> Optional[TableStatistics]:
        """Previously collected statistics for ``name`` (or ``None``)."""
        return self._statistics.get(name)

    # -- querying -------------------------------------------------------------
    def query(self, table_name: str, alias: Optional[str] = None) -> Query:
        """Start a fluent query from a base-table scan."""
        self.table(table_name)  # validate eagerly
        return Query(self, lp.Scan(table_name, alias))

    def execute_plan(
        self,
        plan: lp.PlanNode,
        optimized: bool = True,
        execution: Optional[str] = None,
        morsel_size: Optional[int] = None,
    ) -> List[Row]:
        """Execute a logical plan, optionally optimizing it first.

        Uncorrelated ``IN (SELECT ...)`` subqueries are materialized into
        literal value lists before planning.  ``execution`` selects the
        executor per plan (``"row"``, ``"columnar"``, or ``"auto"``);
        when ``None`` it defaults to the ``REPRO_ENGINE_EXECUTION``
        environment variable, then ``"auto"``.  ``morsel_size`` enables
        morsel-parallel columnar execution (``None`` consults
        ``REPRO_ENGINE_MORSEL``; unset keeps the legacy executors).
        """
        from repro.engine.morsel import MorselExecutor, resolve_morsel_size
        from repro.engine.partition import PartitionedMorselExecutor

        plan = self._materialize_subqueries(plan, morsel_size=morsel_size)
        if optimized:
            plan = self.optimize_plan(plan)
        size = resolve_morsel_size(morsel_size)
        partitioned = self._partitionings and any(
            isinstance(node, lp.Scan) and node.table in self._partitionings
            for node in lp.walk(plan)
        )
        mode = choose_execution(
            plan, execution, morsel=size is not None or bool(partitioned)
        )
        if mode == "columnar":
            if partitioned:
                # Partition-aware morsel execution: fused chains and
                # aggregates over partitioned scans run one morsel
                # stream per partition, byte-identical to the
                # unpartitioned executors.
                executor: Executor = PartitionedMorselExecutor(
                    self, self.metrics, morsel_size=size
                )
            elif size is not None:
                executor = MorselExecutor(
                    self, self.metrics, morsel_size=size
                )
            else:
                executor = ColumnarExecutor(self, self.metrics)
        else:
            executor = Executor(self, self.metrics)
        return executor.execute(plan)

    def _materialize_subqueries(
        self, plan: lp.PlanNode, morsel_size: Optional[int] = None
    ) -> lp.PlanNode:
        from repro.engine.expressions import (
            InList,
            InSubquery,
            UnaryOp,
            transform_expression,
        )

        def replace_subquery(expr):
            if not isinstance(expr, InSubquery):
                return None
            rows = self.execute_plan(
                expr.plan, optimized=True, morsel_size=morsel_size
            )
            values = []
            for row in rows:
                if len(row) != 1:
                    raise QueryError(
                        "IN (SELECT ...) subquery must return exactly "
                        f"one column, got {sorted(row)}"
                    )
                values.append(next(iter(row.values())))
            membership = InList(expr.operand, tuple(values))
            if expr.negated:
                return UnaryOp("not", membership)
            return membership

        return lp.map_expressions(
            plan, lambda e: transform_expression(e, replace_subquery)
        )

    def optimize_plan(self, plan: lp.PlanNode) -> lp.PlanNode:
        """Run the optimizer rewrites over ``plan``."""
        def schema_lookup(name: str) -> Sequence[str]:
            return self.table(name).schema.names

        return optimize(
            plan,
            schema_lookup,
            self._statistics.get,
            partition_lookup=self.partitioning,
        )

    def explain(self, statement: str) -> str:
        """Render the (optimized) plan of a SELECT statement.

        The textual tree is the database analogue of the paper's
        simulation-run plans: what would execute, after pushdown and
        join reordering.
        """
        from repro.engine.plan import plan_summary
        from repro.engine.sqlparser import parse_select

        plan = self.optimize_plan(parse_select(statement))
        return plan_summary(plan)

    def load_csv(self, name: str, path, schema: Optional[Schema] = None):
        """Load a CSV file as a new table (see
        :func:`repro.engine.csvio.table_from_csv`)."""
        from repro.engine.csvio import table_from_csv

        table = table_from_csv(name, path, schema)
        self.register(table)
        return table

    def dump_csv(self, name: str, path) -> int:
        """Write a table to a CSV file; returns rows written."""
        from repro.engine.csvio import table_to_csv

        return table_to_csv(self.table(name), path)

    def sql(
        self,
        statement: str,
        execution: Optional[str] = None,
        morsel_size: Optional[int] = None,
    ) -> List[Row]:
        """Parse and execute a SQL statement.

        ``SELECT`` returns rows; DDL/DML statements return an empty list
        (their effect is on the catalog).  See
        :mod:`repro.engine.sqlparser` for the supported dialect, and
        :meth:`execute_plan` for the ``execution`` and ``morsel_size``
        knobs.
        """
        from repro.engine.sqlparser import execute_sql

        return execute_sql(
            self, statement, execution=execution, morsel_size=morsel_size
        )
