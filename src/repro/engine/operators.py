"""Physical execution of logical plans.

The executor interprets a plan tree against a catalog of base tables and
produces row dictionaries.  Joins pick between a hash join (when the
condition contains at least one equality between columns of opposite sides)
and a nested-loop join otherwise; an :class:`ExecutionMetrics` object counts
rows flowing through each operator so benchmarks can compare plan costs
(e.g. the gridfields restrict/regrid commutation, or the full vs partitioned
ABS self-join).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine import plan as lp
from repro.obs import get_observer
from repro.engine.expressions import (
    BinaryOp,
    Column,
    Expression,
    conjuncts,
)
from repro.engine.table import Row, Table
from repro.errors import QueryError


@dataclass
class ExecutionMetrics:
    """Row-flow counters collected while executing a plan."""

    rows_scanned: int = 0
    rows_joined: int = 0
    join_pairs_examined: int = 0
    rows_output: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.rows_scanned = 0
        self.rows_joined = 0
        self.join_pairs_examined = 0
        self.rows_output = 0


class TableProvider:
    """Minimal interface the executor needs: resolve a table by name."""

    def resolve_table(self, name: str) -> Table:
        """Return the base table registered under ``name``."""
        raise NotImplementedError


class _DictProvider(TableProvider):
    def __init__(self, tables: Dict[str, Table]) -> None:
        self._tables = tables

    def resolve_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None


def provider_from(tables: Dict[str, Table]) -> TableProvider:
    """Wrap a plain dict of tables as a :class:`TableProvider`."""
    return _DictProvider(tables)


# ---------------------------------------------------------------------------
# Aggregate machinery
# ---------------------------------------------------------------------------


class _AggState:
    """Accumulator for a single aggregate over one group."""

    def __init__(self, spec: lp.AggregateSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: Optional[set] = set() if spec.distinct else None

    def update(self, row: Row) -> None:
        if self.spec.argument is None:
            self.count += 1
            return
        value = self.spec.argument.evaluate(row)
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
            self.total_sq += value * value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        func = self.spec.func
        if func == "count":
            return self.count
        if self.count == 0:
            return None
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        # var / std (sample, ddof=1)
        if self.count < 2:
            return 0.0
        mean = self.total / self.count
        var = (self.total_sq - self.count * mean * mean) / (self.count - 1)
        var = max(var, 0.0)
        return var if func == "var" else math.sqrt(var)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _equi_keys(
    condition: Expression, left_rows_example: Row, right_rows_example: Row
) -> Tuple[List[Expression], List[Expression], List[Expression]]:
    """Split a join condition into equi-key pairs and a residual.

    Returns ``(left_keys, right_keys, residual_conjuncts)`` where
    ``left_keys[i] = right_keys[i]`` are usable for hashing.  Classification
    is by column membership: a conjunct ``a = b`` whose sides reference
    columns found exclusively in one input each becomes a key pair.
    """
    left_cols = set(left_rows_example)
    right_cols = set(right_rows_example)

    def side_of(expr: Expression) -> Optional[str]:
        names = expr.columns()
        if not names:
            return None

        def resolves(name: str, available: set) -> bool:
            if name in available:
                return True
            suffix = "." + name
            return any(k.endswith(suffix) for k in available)

        in_left = all(resolves(n, left_cols) for n in names)
        in_right = all(resolves(n, right_cols) for n in names)
        if in_left and not in_right:
            return "left"
        if in_right and not in_left:
            return "right"
        return None

    left_keys: List[Expression] = []
    right_keys: List[Expression] = []
    residual: List[Expression] = []
    for conj in conjuncts(condition):
        if isinstance(conj, BinaryOp) and conj.op == "=":
            a_side = side_of(conj.left)
            b_side = side_of(conj.right)
            if a_side == "left" and b_side == "right":
                left_keys.append(conj.left)
                right_keys.append(conj.right)
                continue
            if a_side == "right" and b_side == "left":
                left_keys.append(conj.right)
                right_keys.append(conj.left)
                continue
        residual.append(conj)
    return left_keys, right_keys, residual


class Executor:
    """Interprets logical plans against a table provider."""

    def __init__(
        self,
        provider: TableProvider,
        metrics: Optional[ExecutionMetrics] = None,
    ) -> None:
        self.provider = provider
        self.metrics = metrics if metrics is not None else ExecutionMetrics()

    def execute(self, node: lp.PlanNode) -> List[Row]:
        """Execute ``node`` and materialize the output rows."""
        observer = get_observer()
        if not observer.enabled:
            rows = list(self._run(node))
            self.metrics.rows_output += len(rows)
            return rows
        with observer.span("engine.execute", plan=lp.plan_signature(node)):
            before = (
                self.metrics.rows_scanned,
                self.metrics.rows_joined,
                self.metrics.join_pairs_examined,
            )
            rows = list(self._run(node))
            self.metrics.rows_output += len(rows)
            observer.counter("engine.queries").inc()
            observer.counter("engine.rows_output").add(len(rows))
            observer.counter("engine.rows_scanned").add(
                self.metrics.rows_scanned - before[0]
            )
            observer.counter("engine.rows_joined").add(
                self.metrics.rows_joined - before[1]
            )
            observer.counter("engine.join_pairs_examined").add(
                self.metrics.join_pairs_examined - before[2]
            )
        return rows

    # -- node dispatch ---------------------------------------------------
    def _run(self, node: lp.PlanNode) -> Iterator[Row]:
        iterator = self._dispatch(node)
        observer = get_observer()
        if not observer.enabled:
            return iterator
        return _observe_operator(observer, node, iterator)

    def _dispatch(self, node: lp.PlanNode) -> Iterator[Row]:
        if isinstance(node, lp.Scan):
            return self._scan(node)
        if isinstance(node, lp.Values):
            return iter([dict(r) for r in node.rows])
        if isinstance(node, lp.Filter):
            return self._filter(node)
        if isinstance(node, lp.Project):
            return self._project(node)
        if isinstance(node, lp.Join):
            return self._join(node)
        if isinstance(node, lp.Aggregate):
            return self._aggregate(node)
        if isinstance(node, lp.OrderBy):
            return self._order_by(node)
        if isinstance(node, lp.Limit):
            return self._limit(node)
        if isinstance(node, lp.Distinct):
            return self._distinct(node)
        if isinstance(node, lp.Union):
            return self._union(node)
        raise QueryError(f"cannot execute plan node {type(node).__name__}")

    def _scan(self, node: lp.Scan) -> Iterator[Row]:
        table = self.provider.resolve_table(node.table)
        prefix = node.alias
        for row in table:
            self.metrics.rows_scanned += 1
            if prefix is None:
                yield dict(row)
            else:
                yield {f"{prefix}.{k}": v for k, v in row.items()}

    def _filter(self, node: lp.Filter) -> Iterator[Row]:
        for row in self._run(node.child):
            if node.predicate.evaluate(row) is True:
                yield row

    def _project(self, node: lp.Project) -> Iterator[Row]:
        for row in self._run(node.child):
            yield {
                alias: expr.evaluate(row)
                for alias, expr in zip(node.aliases, node.expressions)
            }

    def _join(self, node: lp.Join) -> Iterator[Row]:
        left_rows = list(self._run(node.left))
        right_rows = list(self._run(node.right))
        if node.condition is None:
            yield from self._nested_loop(left_rows, right_rows, None, node.how)
            return
        if not left_rows or not right_rows:
            if node.how == "left" and left_rows:
                # Preserve the right side's column names even when it is
                # empty, so downstream references resolve to NULL.
                null_right = self._static_null_row(node.right)
                for lrow in left_rows:
                    yield self._merge(lrow, null_right)
            return
        lkeys, rkeys, residual = _equi_keys(
            node.condition, left_rows[0], right_rows[0]
        )
        if lkeys:
            yield from self._hash_join(
                left_rows, right_rows, lkeys, rkeys, residual, node.how
            )
        else:
            yield from self._nested_loop(
                left_rows, right_rows, node.condition, node.how
            )

    def _merge(self, left: Row, right: Row) -> Row:
        merged = dict(left)
        for key, value in right.items():
            if key in merged and merged[key] != value:
                raise QueryError(
                    f"join output would clobber column {key!r}; "
                    "alias one side of the join"
                )
            merged[key] = value
        return merged

    def _null_right(self, example: Row) -> Row:
        return {k: None for k in example}

    def _static_null_row(self, node: lp.PlanNode) -> Row:
        """An all-NULL row with the column names a plan would produce.

        Used for left joins whose right side yields zero rows: the
        output schema is derived statically (scan schemas, projection
        aliases, aggregate aliases) rather than from example rows.
        """
        if isinstance(node, lp.Scan):
            names = self.provider.resolve_table(node.table).schema.names
            prefix = f"{node.alias}." if node.alias else ""
            return {f"{prefix}{n}": None for n in names}
        if isinstance(node, lp.Project):
            return {alias: None for alias in node.aliases}
        if isinstance(node, lp.Aggregate):
            out = {alias: None for alias in node.group_aliases}
            out.update({spec.alias: None for spec in node.aggregates})
            return out
        if isinstance(node, lp.Values):
            return (
                {k: None for k in node.rows[0]} if node.rows else {}
            )
        children = node.children()
        if len(children) == 1:
            return self._static_null_row(children[0])
        if isinstance(node, (lp.Join, lp.Union)) and children:
            merged: Row = {}
            for child in children:
                merged.update(self._static_null_row(child))
            return merged
        return {}

    def _hash_join(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        lkeys: List[Expression],
        rkeys: List[Expression],
        residual: List[Expression],
        how: str,
    ) -> Iterator[Row]:
        index: Dict[Tuple, List[Row]] = {}
        for row in right_rows:
            key = tuple(k.evaluate(row) for k in rkeys)
            index.setdefault(key, []).append(row)
        null_right = self._null_right(right_rows[0]) if right_rows else {}
        for lrow in left_rows:
            key = tuple(k.evaluate(lrow) for k in lkeys)
            matched = False
            for rrow in index.get(key, ()):
                self.metrics.join_pairs_examined += 1
                merged = self._merge(lrow, rrow)
                if all(c.evaluate(merged) is True for c in residual):
                    matched = True
                    self.metrics.rows_joined += 1
                    yield merged
            if not matched and how == "left":
                yield self._merge(lrow, null_right)

    def _nested_loop(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        condition: Optional[Expression],
        how: str,
    ) -> Iterator[Row]:
        null_right = self._null_right(right_rows[0]) if right_rows else {}
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                self.metrics.join_pairs_examined += 1
                merged = self._merge(lrow, rrow)
                if condition is None or condition.evaluate(merged) is True:
                    matched = True
                    self.metrics.rows_joined += 1
                    yield merged
            if not matched and how == "left":
                yield self._merge(lrow, null_right)

    def _aggregate(self, node: lp.Aggregate) -> Iterator[Row]:
        groups: Dict[Tuple, Tuple[Row, List[_AggState]]] = {}
        for row in self._run(node.child):
            key = tuple(expr.evaluate(row) for expr in node.group_by)
            if key not in groups:
                key_row = {
                    alias: value
                    for alias, value in zip(node.group_aliases, key)
                }
                groups[key] = (
                    key_row,
                    [_AggState(spec) for spec in node.aggregates],
                )
            for state in groups[key][1]:
                state.update(row)
        if not groups and not node.group_by:
            # Global aggregate over zero rows still yields one row.
            states = [_AggState(spec) for spec in node.aggregates]
            yield {s.spec.alias: s.result() for s in states}
            return
        for key_row, states in groups.values():
            out = dict(key_row)
            for state in states:
                out[state.spec.alias] = state.result()
            yield out

    def _order_by(self, node: lp.OrderBy) -> Iterator[Row]:
        rows = list(self._run(node.child))
        # Stable sort applied from the last key to the first.
        for key, desc in list(zip(node.keys, node.descending))[::-1]:
            rows.sort(
                key=lambda r, k=key: (
                    (k.evaluate(r) is None),
                    k.evaluate(r),
                ),
                reverse=desc,
            )
        return iter(rows)

    def _limit(self, node: lp.Limit) -> Iterator[Row]:
        count = 0
        for row in self._run(node.child):
            if count >= node.count:
                return
            count += 1
            yield row

    def _distinct(self, node: lp.Distinct) -> Iterator[Row]:
        seen = set()
        for row in self._run(node.child):
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                yield row

    def _union(self, node: lp.Union) -> Iterator[Row]:
        left_rows = list(self._run(node.left))
        right_rows = list(self._run(node.right))
        if left_rows and right_rows:
            if set(left_rows[0]) != set(right_rows[0]):
                raise QueryError(
                    "UNION inputs have different columns: "
                    f"{sorted(left_rows[0])} vs {sorted(right_rows[0])}"
                )
        yield from left_rows
        yield from right_rows


def _observe_operator(
    observer, node: lp.PlanNode, iterator: Iterator[Row]
) -> Iterator[Row]:
    """Wrap one operator's iterator with per-operator rows/time metrics.

    ``engine.operator.rows{op=...}`` counts rows the operator produced
    (deterministic); ``engine.operator.seconds{op=...}`` accumulates the
    wall-clock spent pulling them, *inclusive* of child operators (the
    pipeline evaluates lazily, so a parent's ``next`` drives its
    children).  Counts are emitted when the iterator finishes or is
    closed, so partially consumed pipelines (e.g. under LIMIT) still
    report what actually flowed.
    """
    label = lp.node_label(node)
    rows_counter = observer.counter("engine.operator.rows", op=label)
    timer = observer.timer("engine.operator.seconds", op=label)
    rows = 0
    elapsed = 0.0
    try:
        while True:
            start = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                elapsed += time.perf_counter() - start
                break
            elapsed += time.perf_counter() - start
            rows += 1
            yield row
    finally:
        rows_counter.add(rows)
        timer.add(elapsed)
