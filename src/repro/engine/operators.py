"""Physical execution of logical plans.

The executor interprets a plan tree against a catalog of base tables and
produces row dictionaries.  Joins pick between a hash join (when the
condition contains at least one equality between columns of opposite sides)
and a nested-loop join otherwise; an :class:`ExecutionMetrics` object counts
rows flowing through each operator so benchmarks can compare plan costs
(e.g. the gridfields restrict/regrid commutation, or the full vs partitioned
ABS self-join).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine import plan as lp
from repro.obs import get_observer
from repro.engine.columnar import (
    EXACT_INT_BOUND,
    _int_magnitude,
    ColumnBatch,
    ColumnVector,
    all_null,
    concat_vectors,
    keep_mask,
    vector_from_values,
)
from repro.engine.expressions import (
    BinaryOp,
    Column,
    Expression,
    conjuncts,
    evaluate_batch,
    is_vectorizable,
)
from repro.engine.table import Row, Table
from repro.errors import QueryError


@dataclass
class ExecutionMetrics:
    """Row-flow counters collected while executing a plan."""

    rows_scanned: int = 0
    rows_joined: int = 0
    join_pairs_examined: int = 0
    rows_output: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.rows_scanned = 0
        self.rows_joined = 0
        self.join_pairs_examined = 0
        self.rows_output = 0


class TableProvider:
    """Minimal interface the executor needs: resolve a table by name."""

    def resolve_table(self, name: str) -> Table:
        """Return the base table registered under ``name``."""
        raise NotImplementedError


class _DictProvider(TableProvider):
    def __init__(self, tables: Dict[str, Table]) -> None:
        self._tables = tables

    def resolve_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None


def provider_from(tables: Dict[str, Table]) -> TableProvider:
    """Wrap a plain dict of tables as a :class:`TableProvider`."""
    return _DictProvider(tables)


# ---------------------------------------------------------------------------
# Aggregate machinery
# ---------------------------------------------------------------------------


class _AggState:
    """Accumulator for a single aggregate over one group."""

    def __init__(self, spec: lp.AggregateSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: Optional[set] = set() if spec.distinct else None

    def update(self, row: Row) -> None:
        if self.spec.argument is None:
            self.count += 1
            return
        self.update_value(self.spec.argument.evaluate(row))

    def update_value(self, value: Any) -> None:
        """Fold one already-evaluated argument value into the state."""
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
            self.total_sq += value * value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        func = self.spec.func
        if func == "count":
            return self.count
        if self.count == 0:
            return None
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        # var / std (sample, ddof=1)
        if self.count < 2:
            return 0.0
        mean = self.total / self.count
        var = (self.total_sq - self.count * mean * mean) / (self.count - 1)
        var = max(var, 0.0)
        return var if func == "var" else math.sqrt(var)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _equi_keys(
    condition: Expression, left_rows_example: Row, right_rows_example: Row
) -> Tuple[List[Expression], List[Expression], List[Expression]]:
    """Split a join condition into equi-key pairs and a residual.

    Returns ``(left_keys, right_keys, residual_conjuncts)`` where
    ``left_keys[i] = right_keys[i]`` are usable for hashing.  Classification
    is by column membership: a conjunct ``a = b`` whose sides reference
    columns found exclusively in one input each becomes a key pair.
    """
    left_cols = set(left_rows_example)
    right_cols = set(right_rows_example)

    def side_of(expr: Expression) -> Optional[str]:
        names = expr.columns()
        if not names:
            return None

        def resolves(name: str, available: set) -> bool:
            if name in available:
                return True
            suffix = "." + name
            return any(k.endswith(suffix) for k in available)

        in_left = all(resolves(n, left_cols) for n in names)
        in_right = all(resolves(n, right_cols) for n in names)
        if in_left and not in_right:
            return "left"
        if in_right and not in_left:
            return "right"
        return None

    left_keys: List[Expression] = []
    right_keys: List[Expression] = []
    residual: List[Expression] = []
    for conj in conjuncts(condition):
        if isinstance(conj, BinaryOp) and conj.op == "=":
            a_side = side_of(conj.left)
            b_side = side_of(conj.right)
            if a_side == "left" and b_side == "right":
                left_keys.append(conj.left)
                right_keys.append(conj.right)
                continue
            if a_side == "right" and b_side == "left":
                left_keys.append(conj.right)
                right_keys.append(conj.left)
                continue
        residual.append(conj)
    return left_keys, right_keys, residual


class Executor:
    """Interprets logical plans against a table provider."""

    def __init__(
        self,
        provider: TableProvider,
        metrics: Optional[ExecutionMetrics] = None,
    ) -> None:
        self.provider = provider
        self.metrics = metrics if metrics is not None else ExecutionMetrics()

    def execute(self, node: lp.PlanNode) -> List[Row]:
        """Execute ``node`` and materialize the output rows."""
        observer = get_observer()
        if not observer.enabled:
            rows = list(self._run(node))
            self.metrics.rows_output += len(rows)
            return rows
        with observer.span("engine.execute", plan=lp.plan_signature(node)):
            before = (
                self.metrics.rows_scanned,
                self.metrics.rows_joined,
                self.metrics.join_pairs_examined,
            )
            rows = list(self._run(node))
            self.metrics.rows_output += len(rows)
            observer.counter("engine.queries").inc()
            observer.counter("engine.rows_output").add(len(rows))
            observer.counter("engine.rows_scanned").add(
                self.metrics.rows_scanned - before[0]
            )
            observer.counter("engine.rows_joined").add(
                self.metrics.rows_joined - before[1]
            )
            observer.counter("engine.join_pairs_examined").add(
                self.metrics.join_pairs_examined - before[2]
            )
        return rows

    # -- node dispatch ---------------------------------------------------
    def _run(self, node: lp.PlanNode) -> Iterator[Row]:
        iterator = self._dispatch(node)
        observer = get_observer()
        if not observer.enabled:
            return iterator
        return _observe_operator(observer, node, iterator)

    def _dispatch(self, node: lp.PlanNode) -> Iterator[Row]:
        if isinstance(node, lp.Scan):
            return self._scan(node)
        if isinstance(node, lp.Values):
            return iter([dict(r) for r in node.rows])
        if isinstance(node, lp.Filter):
            return self._filter(node)
        if isinstance(node, lp.Project):
            return self._project(node)
        if isinstance(node, lp.Join):
            return self._join(node)
        if isinstance(node, lp.Aggregate):
            return self._aggregate(node)
        if isinstance(node, lp.OrderBy):
            return self._order_by(node)
        if isinstance(node, lp.Limit):
            return self._limit(node)
        if isinstance(node, lp.Distinct):
            return self._distinct(node)
        if isinstance(node, lp.Union):
            return self._union(node)
        raise QueryError(f"cannot execute plan node {type(node).__name__}")

    def _scan(self, node: lp.Scan) -> Iterator[Row]:
        table = self.provider.resolve_table(node.table)
        prefix = node.alias
        for row in table:
            self.metrics.rows_scanned += 1
            if prefix is None:
                yield dict(row)
            else:
                yield {f"{prefix}.{k}": v for k, v in row.items()}

    def _filter(self, node: lp.Filter) -> Iterator[Row]:
        for row in self._run(node.child):
            if node.predicate.evaluate(row) is True:
                yield row

    def _project(self, node: lp.Project) -> Iterator[Row]:
        for row in self._run(node.child):
            yield {
                alias: expr.evaluate(row)
                for alias, expr in zip(node.aliases, node.expressions)
            }

    def _join(self, node: lp.Join) -> Iterator[Row]:
        left_rows = list(self._run(node.left))
        right_rows = list(self._run(node.right))
        if node.condition is None:
            yield from self._nested_loop(left_rows, right_rows, None, node.how)
            return
        if not left_rows or not right_rows:
            if node.how == "left" and left_rows:
                # Preserve the right side's column names even when it is
                # empty, so downstream references resolve to NULL.
                null_right = self._static_null_row(node.right)
                for lrow in left_rows:
                    yield self._merge(lrow, null_right)
            return
        lkeys, rkeys, residual = _equi_keys(
            node.condition, left_rows[0], right_rows[0]
        )
        if lkeys:
            yield from self._hash_join(
                left_rows, right_rows, lkeys, rkeys, residual, node.how
            )
        else:
            yield from self._nested_loop(
                left_rows, right_rows, node.condition, node.how
            )

    def _merge(self, left: Row, right: Row) -> Row:
        merged = dict(left)
        for key, value in right.items():
            if key in merged and merged[key] != value:
                raise QueryError(
                    f"join output would clobber column {key!r}; "
                    "alias one side of the join"
                )
            merged[key] = value
        return merged

    def _null_right(self, example: Row) -> Row:
        return {k: None for k in example}

    def _static_null_row(self, node: lp.PlanNode) -> Row:
        """An all-NULL row with the column names a plan would produce.

        Used for left joins whose right side yields zero rows: the
        output schema is derived statically (scan schemas, projection
        aliases, aggregate aliases) rather than from example rows.
        """
        if isinstance(node, lp.Scan):
            names = self.provider.resolve_table(node.table).schema.names
            prefix = f"{node.alias}." if node.alias else ""
            return {f"{prefix}{n}": None for n in names}
        if isinstance(node, lp.Project):
            return {alias: None for alias in node.aliases}
        if isinstance(node, lp.Aggregate):
            out = {alias: None for alias in node.group_aliases}
            out.update({spec.alias: None for spec in node.aggregates})
            return out
        if isinstance(node, lp.Values):
            return (
                {k: None for k in node.rows[0]} if node.rows else {}
            )
        children = node.children()
        if len(children) == 1:
            return self._static_null_row(children[0])
        if isinstance(node, (lp.Join, lp.Union)) and children:
            merged: Row = {}
            for child in children:
                merged.update(self._static_null_row(child))
            return merged
        return {}

    def _hash_join(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        lkeys: List[Expression],
        rkeys: List[Expression],
        residual: List[Expression],
        how: str,
    ) -> Iterator[Row]:
        index: Dict[Tuple, List[Row]] = {}
        for row in right_rows:
            key = tuple(k.evaluate(row) for k in rkeys)
            index.setdefault(key, []).append(row)
        null_right = self._null_right(right_rows[0]) if right_rows else {}
        for lrow in left_rows:
            key = tuple(k.evaluate(lrow) for k in lkeys)
            matched = False
            for rrow in index.get(key, ()):
                self.metrics.join_pairs_examined += 1
                merged = self._merge(lrow, rrow)
                if all(c.evaluate(merged) is True for c in residual):
                    matched = True
                    self.metrics.rows_joined += 1
                    yield merged
            if not matched and how == "left":
                yield self._merge(lrow, null_right)

    def _nested_loop(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        condition: Optional[Expression],
        how: str,
    ) -> Iterator[Row]:
        null_right = self._null_right(right_rows[0]) if right_rows else {}
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                self.metrics.join_pairs_examined += 1
                merged = self._merge(lrow, rrow)
                if condition is None or condition.evaluate(merged) is True:
                    matched = True
                    self.metrics.rows_joined += 1
                    yield merged
            if not matched and how == "left":
                yield self._merge(lrow, null_right)

    def _aggregate(self, node: lp.Aggregate) -> Iterator[Row]:
        groups: Dict[Tuple, Tuple[Row, List[_AggState]]] = {}
        for row in self._run(node.child):
            key = tuple(expr.evaluate(row) for expr in node.group_by)
            if key not in groups:
                key_row = {
                    alias: value
                    for alias, value in zip(node.group_aliases, key)
                }
                groups[key] = (
                    key_row,
                    [_AggState(spec) for spec in node.aggregates],
                )
            for state in groups[key][1]:
                state.update(row)
        if not groups and not node.group_by:
            # Global aggregate over zero rows still yields one row.
            states = [_AggState(spec) for spec in node.aggregates]
            yield {s.spec.alias: s.result() for s in states}
            return
        for key_row, states in groups.values():
            out = dict(key_row)
            for state in states:
                out[state.spec.alias] = state.result()
            yield out

    def _order_by(self, node: lp.OrderBy) -> Iterator[Row]:
        rows = list(self._run(node.child))
        # Stable sort applied from the last key to the first.
        for key, desc in list(zip(node.keys, node.descending))[::-1]:
            rows.sort(
                key=lambda r, k=key: (
                    (k.evaluate(r) is None),
                    k.evaluate(r),
                ),
                reverse=desc,
            )
        return iter(rows)

    def _limit(self, node: lp.Limit) -> Iterator[Row]:
        count = 0
        for row in self._run(node.child):
            if count >= node.count:
                return
            count += 1
            yield row

    def _distinct(self, node: lp.Distinct) -> Iterator[Row]:
        seen = set()
        for row in self._run(node.child):
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                yield row

    def _union(self, node: lp.Union) -> Iterator[Row]:
        left_rows = list(self._run(node.left))
        right_rows = list(self._run(node.right))
        if left_rows and right_rows:
            if set(left_rows[0]) != set(right_rows[0]):
                raise QueryError(
                    "UNION inputs have different columns: "
                    f"{sorted(left_rows[0])} vs {sorted(right_rows[0])}"
                )
        yield from left_rows
        yield from right_rows


def _observe_operator(
    observer, node: lp.PlanNode, iterator: Iterator[Row]
) -> Iterator[Row]:
    """Wrap one operator's iterator with per-operator rows/time metrics.

    ``engine.operator.rows{op=...}`` counts rows the operator produced
    (deterministic); ``engine.operator.seconds{op=...}`` accumulates the
    wall-clock spent pulling them, *inclusive* of child operators (the
    pipeline evaluates lazily, so a parent's ``next`` drives its
    children).  Counts are emitted when the iterator finishes or is
    closed, so partially consumed pipelines (e.g. under LIMIT) still
    report what actually flowed.
    """
    label = lp.node_label(node)
    rows_counter = observer.counter("engine.operator.rows", op=label)
    timer = observer.timer("engine.operator.seconds", op=label)
    rows = 0
    elapsed = 0.0
    try:
        while True:
            start = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                elapsed += time.perf_counter() - start
                break
            elapsed += time.perf_counter() - start
            rows += 1
            yield row
    finally:
        rows_counter.add(rows)
        timer.add(elapsed)


# ---------------------------------------------------------------------------
# Columnar executor
# ---------------------------------------------------------------------------


def _factorize_python(vec: ColumnVector) -> Tuple[np.ndarray, int]:
    """Dense codes via a Python dict — the exact-equality fallback."""
    mapping: Dict[Any, int] = {}
    codes = np.empty(len(vec), dtype=np.int64)
    for i, v in enumerate(vec.to_pylist()):
        codes[i] = mapping.setdefault(v, len(mapping))
    return codes, max(len(mapping), 1)


def _factorize(vec: ColumnVector) -> Tuple[np.ndarray, int]:
    """Dense integer codes for a vector, NULLs sharing one code.

    Grouping and hash-join key equality in the row engine is Python
    ``==`` on dict keys (where ``None`` matches ``None``); the float
    path below is equivalent for clean numerics, and anything that is
    not (objects, NaN, ints beyond 2**53) uses the dict fallback.
    """
    if vec.kind not in ("bool", "int", "float"):
        return _factorize_python(vec)
    if vec.kind == "int" and _int_magnitude(vec.values) > EXACT_INT_BOUND:
        return _factorize_python(vec)
    values = vec.values.astype(np.float64)
    if vec.kind == "float" and bool(np.isnan(values).any()):
        return _factorize_python(vec)
    safe = np.where(vec.valid, values, 0.0)
    uniq, inverse = np.unique(safe, return_inverse=True)
    inverse = inverse.reshape(-1)
    codes = np.where(vec.valid, inverse, len(uniq))
    return codes.astype(np.int64), len(uniq) + 1


def _joint_key_codes(
    lv: ColumnVector, rv: ColumnVector
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Codes for two key vectors in one shared code space."""
    codes, n_codes = _factorize(concat_vectors([lv, rv]))
    n_left = len(lv)
    return codes[:n_left], codes[n_left:], n_codes


def _combine_codes(
    codes: np.ndarray, sub: np.ndarray, n_sub: int
) -> np.ndarray:
    """Fold one more key column into running group codes."""
    _, combined = np.unique(
        codes * np.int64(n_sub) + sub, return_inverse=True
    )
    return combined.reshape(-1).astype(np.int64)


def _group_codes(
    key_vecs: List[ColumnVector], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """First-seen-ordered group codes plus each group's first row index."""
    codes = np.zeros(n, dtype=np.int64)
    for vec in key_vecs:
        sub, n_sub = _factorize(vec)
        codes = _combine_codes(codes, sub, n_sub)
    uniq, first_idx, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    return rank[inverse], first_idx[order]


def _concat_batches(batches: List[ColumnBatch]) -> ColumnBatch:
    names = batches[0].names
    columns = {
        name: concat_vectors([b.columns[name] for b in batches])
        for name in names
    }
    return ColumnBatch(columns, sum(b.length for b in batches))


def _aggregate_python(
    spec: lp.AggregateSpec,
    vec: ColumnVector,
    gcodes: np.ndarray,
    n_groups: int,
) -> ColumnVector:
    """Per-group aggregation through ``_AggState`` (exact by construction)."""
    states = [_AggState(spec) for _ in range(n_groups)]
    for code, value in zip(gcodes.tolist(), vec.to_pylist()):
        states[code].update_value(value)
    return vector_from_values([s.result() for s in states])


class HashJoinExec:
    """Hash equi-join: per-left-row probe of the right side's code index.

    One executor class per physical join operator (the EVA idiom): the
    planner picks an algorithm, ``_equi_join_batch`` instantiates the
    matching class, and everything around pair generation — residual
    predicates, metrics, left-outer padding, output order — is shared.

    Emits candidate pairs left-major in original left order, with right
    matches in ascending original right position (the stable argsort of
    the right codes), exactly like the row engine's bucket probe.
    """

    name = "hash"

    def candidate_pairs(
        self, lcodes: np.ndarray, rcodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        order = np.argsort(rcodes, kind="stable")
        sorted_rcodes = rcodes[order]
        starts = np.searchsorted(sorted_rcodes, lcodes, side="left")
        ends = np.searchsorted(sorted_rcodes, lcodes, side="right")
        counts = ends - starts
        total = int(counts.sum())
        pair_left = np.repeat(np.arange(len(lcodes)), counts)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        pair_right = order[np.repeat(starts, counts) + offsets]
        return pair_left, pair_right


class SortMergeJoinExec:
    """Sort-merge equi-join over the factorized key codes.

    Sorts both sides once and walks the matching code runs — O((n+m)
    log(n+m) + pairs) instead of a per-left-row binary search, which wins
    when both sides are large and keys are near-unique.  The candidate
    pair *set* is identical to the hash executor's by construction, and
    a final ``lexsort((pair_right, pair_left))`` restores the hash
    executor's exact emission order, so downstream residual evaluation,
    metrics, and row order are byte-identical whichever algorithm the
    planner picks.
    """

    name = "sort_merge"

    def candidate_pairs(
        self, lcodes: np.ndarray, rcodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        lorder = np.argsort(lcodes, kind="stable")
        rorder = np.argsort(rcodes, kind="stable")
        sorted_l = lcodes[lorder]
        sorted_r = rcodes[rorder]
        common = np.intersect1d(sorted_l, sorted_r)
        lstarts = np.searchsorted(sorted_l, common, side="left")
        lcounts = np.searchsorted(sorted_l, common, side="right") - lstarts
        rstarts = np.searchsorted(sorted_r, common, side="left")
        rcounts = np.searchsorted(sorted_r, common, side="right") - rstarts
        sizes = lcounts * rcounts
        total = int(sizes.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        grp = np.repeat(np.arange(len(common)), sizes)
        within = np.arange(total) - np.repeat(
            np.cumsum(sizes) - sizes, sizes
        )
        pair_left = lorder[lstarts[grp] + within // rcounts[grp]]
        pair_right = rorder[rstarts[grp] + within % rcounts[grp]]
        emit = np.lexsort((pair_right, pair_left))
        return pair_left[emit], pair_right[emit]


class CoPartitionedHashJoinExec(HashJoinExec):
    """Hash equi-join that needs no shuffle: shard-i joins shard-i.

    Selected by the optimizer only when *both* join inputs are bare
    scans of tables ``db.partition_table``-registered on the join key
    with compatible partitioning (same scheme, count, and — for range —
    boundaries).  Because partition assignment is a pure function of
    the key, every joinable pair of rows already co-locates: the
    partitioned executor slices both sides' jointly-factorized key
    codes per partition, probes shard-i-against-shard-i through the
    substrate, maps local pair indices back through each partition's
    original-position arrays, and restores the global hash emission
    order with ``lexsort((pair_right, pair_left))`` — hash emits pairs
    sorted by exactly that, so the result is byte-identical to
    :class:`HashJoinExec` while moving zero key bytes between
    partitions (the avoided volume is recorded on
    :class:`~repro.engine.partition.PartitionRun`).

    The pair computation itself is inherited unchanged; on a
    non-partitioned executor this algorithm degrades to a plain global
    hash join, so a plan carrying it stays valid everywhere.
    """

    name = "co_partitioned"


#: Physical join algorithm registry, keyed by ``lp.Join.algorithm``.
JOIN_EXECS = {
    HashJoinExec.name: HashJoinExec,
    SortMergeJoinExec.name: SortMergeJoinExec,
    CoPartitionedHashJoinExec.name: CoPartitionedHashJoinExec,
}


class ColumnarExecutor(Executor):
    """Batch-at-a-time executor, byte-identical to :class:`Executor`.

    Scan/Values/Filter/Project/Join/Aggregate nodes whose expressions are
    vectorizable run over :class:`ColumnBatch` columns; every other node
    (and every non-vectorizable expression) falls back to the inherited
    row operators, which in turn pull batches from batchable children —
    the two modes mix freely within one plan.  Per-operator observability
    (``engine.operator.rows``/``.seconds``) is emitted for batch nodes
    with the same labels and row counts as the row pipeline, so the
    deterministic ``values`` snapshot is identical across modes.
    """

    # -- dispatch --------------------------------------------------------
    def _run(self, node: lp.PlanNode) -> Iterator[Row]:
        batch = self._run_batch(node)
        if batch is None:
            return super()._run(node)
        return iter(batch.to_rows())

    def _run_batch(self, node: lp.PlanNode) -> Optional[ColumnBatch]:
        handler = self._batch_handler(node)
        if handler is None:
            return None
        observer = get_observer()
        if not observer.enabled:
            return handler(node)
        start = time.perf_counter()
        batch = handler(node)
        elapsed = time.perf_counter() - start
        label = lp.node_label(node)
        observer.counter("engine.operator.rows", op=label).add(batch.length)
        observer.timer("engine.operator.seconds", op=label).add(elapsed)
        return batch

    def _batch_handler(
        self, node: lp.PlanNode
    ) -> Optional[Callable[[Any], ColumnBatch]]:
        if isinstance(node, lp.Scan):
            return self._scan_batch
        if isinstance(node, lp.Values):
            # Row mode preserves each row dict's own key order; only a
            # uniform layout converts losslessly.
            rows = node.rows
            if rows and any(tuple(r) != tuple(rows[0]) for r in rows):
                return None
            return self._values_batch
        if isinstance(node, lp.Filter):
            if is_vectorizable(node.predicate):
                return self._filter_batch
            return None
        if isinstance(node, lp.Project):
            if all(is_vectorizable(e) for e in node.expressions):
                return self._project_batch
            return None
        if isinstance(node, lp.Join):
            if node.condition is None or is_vectorizable(node.condition):
                return self._join_batch
            return None
        if isinstance(node, lp.Aggregate):
            if any(spec.distinct for spec in node.aggregates):
                return None
            if not all(is_vectorizable(e) for e in node.group_by):
                return None
            if not all(
                spec.argument is None or is_vectorizable(spec.argument)
                for spec in node.aggregates
            ):
                return None
            return self._aggregate_batch
        return None

    def _child_batch(self, node: lp.PlanNode) -> ColumnBatch:
        """The child as a batch, converting row-mode output if needed."""
        batch = self._run_batch(node)
        if batch is not None:
            return batch
        rows = list(super()._run(node))
        if rows:
            return ColumnBatch.from_rows(rows)
        return ColumnBatch.from_rows(rows, list(self._static_null_row(node)))

    def _rows_to_batch(
        self, rows: List[Row], node: lp.PlanNode
    ) -> ColumnBatch:
        if rows:
            return ColumnBatch.from_rows(rows)
        return ColumnBatch.from_rows(rows, list(self._static_null_row(node)))

    # -- leaf / unary operators ------------------------------------------
    def _scan_batch(self, node: lp.Scan) -> ColumnBatch:
        table = self.provider.resolve_table(node.table)
        self.metrics.rows_scanned += len(table)
        return ColumnBatch.from_table(table, node.alias)

    def _values_batch(self, node: lp.Values) -> ColumnBatch:
        return ColumnBatch.from_rows([dict(r) for r in node.rows])

    def _filter_batch(self, node: lp.Filter) -> ColumnBatch:
        child = self._child_batch(node.child)
        predicate = evaluate_batch(node.predicate, child)
        return child.take(keep_mask(predicate))

    def _project_batch(self, node: lp.Project) -> ColumnBatch:
        child = self._child_batch(node.child)
        columns = {
            alias: evaluate_batch(expr, child)
            for alias, expr in zip(node.aliases, node.expressions)
        }
        return ColumnBatch(columns, child.length)

    # -- join ------------------------------------------------------------
    def _join_batch(self, node: lp.Join) -> ColumnBatch:
        left = self._child_batch(node.left)
        right = self._child_batch(node.right)
        return self._join_batches(node, left, right)

    def _join_batches(
        self, node: lp.Join, left: ColumnBatch, right: ColumnBatch
    ) -> ColumnBatch:
        """Join two already-fetched child batches.

        Split out of :meth:`_join_batch` so the partitioned executor can
        intercept the join *after* the children are scanned (scan
        metrics and obs counters must be emitted exactly once) and
        route eligible equi-joins partition-against-partition.
        """
        if node.condition is None:
            rows = list(
                self._nested_loop(
                    left.to_rows(), right.to_rows(), None, node.how
                )
            )
            return self._rows_to_batch(rows, node)
        if left.length == 0 or right.length == 0:
            if node.how == "left" and left.length:
                null_right = self._static_null_row(node.right)
                rows = [
                    self._merge(lrow, null_right) for lrow in left.to_rows()
                ]
                return self._rows_to_batch(rows, node)
            return self._rows_to_batch([], node)
        lkeys, rkeys, residual = _equi_keys(
            node.condition,
            dict.fromkeys(left.names),
            dict.fromkeys(right.names),
        )
        if not lkeys:
            rows = list(
                self._nested_loop(
                    left.to_rows(), right.to_rows(), node.condition, node.how
                )
            )
            return self._rows_to_batch(rows, node)
        return self._equi_join_batch(
            left, right, lkeys, rkeys, residual, node.how, node.algorithm
        )

    def _join_key_codes(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        lkeys: List[Expression],
        rkeys: List[Expression],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Jointly factorized equi-key codes for both sides.

        Codes are computed over the *concatenation* of both sides, so
        equal keys get equal codes across sides — and, because the same
        factorization collapses the same equality classes the canonical
        CRC-32 partitioner collapses, equal codes always co-locate in
        one partition of a key-partitioned table.
        """
        n_left, n_right = left.length, right.length
        lcodes = np.zeros(n_left, dtype=np.int64)
        rcodes = np.zeros(n_right, dtype=np.int64)
        for lk, rk in zip(lkeys, rkeys):
            lv = evaluate_batch(lk, left)
            rv = evaluate_batch(rk, right)
            sub_l, sub_r, n_sub = _joint_key_codes(lv, rv)
            both = _combine_codes(
                np.concatenate([lcodes, rcodes]),
                np.concatenate([sub_l, sub_r]),
                n_sub,
            )
            lcodes, rcodes = both[:n_left], both[n_left:]
        return lcodes, rcodes

    def _equi_join_batch(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        lkeys: List[Expression],
        rkeys: List[Expression],
        residual: List[Expression],
        how: str,
        algorithm: Optional[str] = None,
    ) -> ColumnBatch:
        lcodes, rcodes = self._join_key_codes(left, right, lkeys, rkeys)
        exec_cls = JOIN_EXECS[algorithm or "hash"]
        pair_left, pair_right = exec_cls().candidate_pairs(lcodes, rcodes)
        return self._finish_equi_join(
            left, right, pair_left, pair_right, residual, how
        )

    def _finish_equi_join(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        pair_left: np.ndarray,
        pair_right: np.ndarray,
        residual: List[Expression],
        how: str,
    ) -> ColumnBatch:
        """Residual filtering, metrics, and left-outer padding over
        already-computed candidate pairs (shared by every algorithm,
        including the partitioned executor's co-partitioned fan-out)."""
        n_left = left.length
        total = len(pair_left)
        self.metrics.join_pairs_examined += total
        merged = self._merge_batches(
            left.take(pair_left), right.take(pair_right)
        )
        keep = np.ones(total, dtype=bool)
        for conj in residual:
            keep &= keep_mask(evaluate_batch(conj, merged))
        self.metrics.rows_joined += int(np.count_nonzero(keep))
        matched = merged.take(keep)
        if how != "left":
            return matched
        matched_left = np.zeros(n_left, dtype=bool)
        matched_left[pair_left[keep]] = True
        unmatched = np.flatnonzero(~matched_left)
        if unmatched.size == 0:
            return matched
        padded = self._null_extend_batch(left.take(unmatched), right)
        # Row mode emits each unmatched left row in left order,
        # interleaved with the matches: restore that order stably.
        positions = np.concatenate([pair_left[keep], unmatched])
        return _concat_batches([matched, padded]).take(
            np.argsort(positions, kind="stable")
        )

    def _merge_batches(
        self, left: ColumnBatch, right: ColumnBatch
    ) -> ColumnBatch:
        columns = dict(left.columns)
        for name, rvec in right.columns.items():
            if name in columns:
                self._check_clobber(name, columns[name], rvec)
            columns[name] = rvec
        return ColumnBatch(columns, left.length)

    def _check_clobber(
        self, name: str, lvec: ColumnVector, rvec: ColumnVector
    ) -> None:
        # Row mode raises iff Python ``left != right`` is truthy for any
        # pair (``None != None`` is False, ``None != x`` is True).
        if lvec.kind == "object" or rvec.kind == "object":
            bad = any(
                ((x is None) != (y is None))
                or (x is not None and y is not None and x != y)
                for x, y in zip(lvec.to_pylist(), rvec.to_pylist())
            )
        else:
            both = lvec.valid & rvec.valid
            bad = bool(
                np.any(lvec.valid != rvec.valid)
                or np.any(both & (lvec.values != rvec.values))
            )
        if bad:
            raise QueryError(
                f"join output would clobber column {name!r}; "
                "alias one side of the join"
            )

    def _null_extend_batch(
        self, left: ColumnBatch, right: ColumnBatch
    ) -> ColumnBatch:
        # Row mode merges each unmatched left row with an all-None right
        # row; an overlapping column with a non-null left value clobbers.
        columns = dict(left.columns)
        for name in right.columns:
            if name in columns and bool(columns[name].valid.any()):
                raise QueryError(
                    f"join output would clobber column {name!r}; "
                    "alias one side of the join"
                )
            columns[name] = all_null(left.length)
        return ColumnBatch(columns, left.length)

    # -- aggregate -------------------------------------------------------
    def _aggregate_batch(self, node: lp.Aggregate) -> ColumnBatch:
        child = self._child_batch(node.child)
        key_vecs = [evaluate_batch(e, child) for e in node.group_by]
        arg_vecs = [
            None if spec.argument is None
            else evaluate_batch(spec.argument, child)
            for spec in node.aggregates
        ]
        return self._finish_aggregate(node, key_vecs, arg_vecs, child.length)

    def _finish_aggregate(
        self,
        node: lp.Aggregate,
        key_vecs: List[ColumnVector],
        arg_vecs: List[Optional[ColumnVector]],
        n: int,
    ) -> ColumnBatch:
        """Group and accumulate already-evaluated key/argument vectors.

        Split out of :meth:`_aggregate_batch` so the morsel executor can
        evaluate keys and arguments per morsel, concatenate in morsel
        order, and run this (order-sensitive — float addition is not
        associative) accumulation serially on the driver.
        """
        if node.group_by:
            gcodes, first_rows = _group_codes(key_vecs, n)
            n_groups = len(first_rows)
            if n_groups == 0:
                names = list(node.group_aliases) + [
                    spec.alias for spec in node.aggregates
                ]
                return ColumnBatch.from_rows([], names)
        else:
            first_rows = np.zeros(0, dtype=np.int64)
            gcodes = np.zeros(n, dtype=np.int64)
            n_groups = 1
        columns: Dict[str, ColumnVector] = {}
        for alias, vec in zip(node.group_aliases, key_vecs):
            columns[alias] = vec.take(first_rows)
        for spec, vec in zip(node.aggregates, arg_vecs):
            columns[spec.alias] = self._aggregate_vector(
                spec, vec, gcodes, n_groups
            )
        return ColumnBatch(columns, n_groups)

    def _aggregate_vector(
        self,
        spec: lp.AggregateSpec,
        vec: Optional[ColumnVector],
        gcodes: np.ndarray,
        n_groups: int,
    ) -> ColumnVector:
        if vec is None:
            counts = np.bincount(gcodes, minlength=n_groups)
            return vector_from_values([int(c) for c in counts])
        if not self._numeric_aggregable(spec, vec):
            return _aggregate_python(spec, vec, gcodes, n_groups)
        valid = vec.valid
        grouped = gcodes[valid]
        values = vec.values[valid]
        counts = np.bincount(grouped, minlength=n_groups)
        func = spec.func
        if func == "count":
            return vector_from_values([int(c) for c in counts])
        if func in ("min", "max"):
            return self._extreme_column(
                func, vec.kind, values, grouped, counts, n_groups
            )
        floats = values.astype(np.float64)
        totals = np.zeros(n_groups, dtype=np.float64)
        np.add.at(totals, grouped, floats)
        if func == "sum":
            return vector_from_values([
                float(totals[i]) if counts[i] else None
                for i in range(n_groups)
            ])
        if func == "avg":
            return vector_from_values([
                float(totals[i]) / int(counts[i]) if counts[i] else None
                for i in range(n_groups)
            ])
        # var / std (sample, ddof=1), same scalar formula as _AggState.
        squares = np.zeros(n_groups, dtype=np.float64)
        np.add.at(squares, grouped, floats * floats)
        out: List[Any] = []
        for i in range(n_groups):
            count = int(counts[i])
            if count == 0:
                out.append(None)
            elif count < 2:
                out.append(0.0)
            else:
                mean = float(totals[i]) / count
                var = (float(squares[i]) - count * mean * mean) / (count - 1)
                var = max(var, 0.0)
                out.append(var if func == "var" else math.sqrt(var))
        return vector_from_values(out)

    def _numeric_aggregable(
        self, spec: lp.AggregateSpec, vec: ColumnVector
    ) -> bool:
        """Whether the NumPy accumulators reproduce ``_AggState`` exactly.

        Booleans (not summed by the row engine), objects, NaNs, and —
        for var/std — ints whose squares exceed 2**53 (Python squares
        exactly, float64 rounds) all go through the Python states.
        """
        if vec.kind not in ("int", "float"):
            return False
        if vec.kind == "float":
            if bool(np.isnan(vec.values[vec.valid]).any()):
                return False
            if spec.func in ("min", "max"):
                zeros = vec.values[vec.valid] == 0.0
                if bool(np.any(zeros & np.signbit(vec.values[vec.valid]))):
                    # -0.0 vs 0.0 ties: row mode keeps the first seen.
                    return False
        if spec.func in ("var", "std") and vec.kind == "int":
            if _int_magnitude(vec.values) > 2 ** 26:
                return False
        return True

    def _extreme_column(
        self,
        func: str,
        kind: str,
        values: np.ndarray,
        grouped: np.ndarray,
        counts: np.ndarray,
        n_groups: int,
    ) -> ColumnVector:
        ufunc = np.minimum if func == "min" else np.maximum
        if kind == "int":
            info = np.iinfo(np.int64)
            fill = info.max if func == "min" else info.min
            acc = np.full(n_groups, fill, dtype=np.int64)
            ufunc.at(acc, grouped, values)
            return vector_from_values([
                int(acc[i]) if counts[i] else None for i in range(n_groups)
            ])
        fill = np.inf if func == "min" else -np.inf
        acc = np.full(n_groups, fill, dtype=np.float64)
        ufunc.at(acc, grouped, values)
        return vector_from_values([
            float(acc[i]) if counts[i] else None for i in range(n_groups)
        ])
