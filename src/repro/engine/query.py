"""Fluent query builder over logical plans.

:class:`Query` offers a dataframe-flavoured API that desugars to the same
logical plans the SQL parser produces::

    q = (db.query("person")
           .where(col("age").between(0, 4))
           .join(db.query("infected"), on=("pid", "pid"))
           .aggregate(count("pid", alias="n")))
    rows = q.run()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import plan as lp
from repro.engine.expressions import Column, Expression, col
from repro.engine.operators import ExecutionMetrics, Executor, TableProvider
from repro.errors import QueryError

Row = Dict[str, Any]


def _as_expression(item: Union[str, Expression]) -> Expression:
    return col(item) if isinstance(item, str) else item


def _alias_for(item: Union[str, Expression], index: int) -> str:
    if isinstance(item, str):
        return item
    if isinstance(item, Column):
        return item.name
    return f"expr_{index}"


def agg(
    func: str,
    argument: Union[str, Expression, None] = None,
    alias: Optional[str] = None,
    distinct: bool = False,
) -> lp.AggregateSpec:
    """Build an aggregate specification.

    >>> agg("count", alias="n")
    AggregateSpec(func='count', argument=None, alias='n', distinct=False)
    """
    expr = None if argument is None else _as_expression(argument)
    if alias is None:
        base = argument if isinstance(argument, str) else "value"
        alias = f"{func}_{base}" if argument is not None else func
    return lp.AggregateSpec(func=func, argument=expr, alias=alias, distinct=distinct)


def count(
    argument: Union[str, Expression, None] = None,
    alias: str = "count",
    distinct: bool = False,
) -> lp.AggregateSpec:
    """``COUNT(argument)`` (or ``COUNT(*)`` when argument is ``None``)."""
    return agg("count", argument, alias, distinct)


def sum_(argument: Union[str, Expression], alias: Optional[str] = None):
    """``SUM(argument)``."""
    return agg("sum", argument, alias)


def avg(argument: Union[str, Expression], alias: Optional[str] = None):
    """``AVG(argument)``."""
    return agg("avg", argument, alias)


def min_(argument: Union[str, Expression], alias: Optional[str] = None):
    """``MIN(argument)``."""
    return agg("min", argument, alias)


def max_(argument: Union[str, Expression], alias: Optional[str] = None):
    """``MAX(argument)``."""
    return agg("max", argument, alias)


class Query:
    """An immutable builder wrapping a logical plan.

    Each method returns a new :class:`Query`; nothing executes until
    :meth:`run` (or the owning database's ``execute``).
    """

    def __init__(self, provider: TableProvider, plan: lp.PlanNode) -> None:
        self._provider = provider
        self._plan = plan

    @property
    def plan(self) -> lp.PlanNode:
        """The underlying logical plan."""
        return self._plan

    def _wrap(self, plan: lp.PlanNode) -> "Query":
        return Query(self._provider, plan)

    def where(self, predicate: Expression) -> "Query":
        """Filter rows by ``predicate``."""
        return self._wrap(lp.Filter(self._plan, predicate))

    def select(self, *items: Union[str, Expression], **named: Expression) -> "Query":
        """Project to the given columns/expressions.

        Positional items keep their own name; keyword items are aliased.
        """
        exprs: List[Expression] = []
        aliases: List[str] = []
        for i, item in enumerate(items):
            exprs.append(_as_expression(item))
            aliases.append(_alias_for(item, i))
        for alias, expr in named.items():
            exprs.append(_as_expression(expr))
            aliases.append(alias)
        if not exprs:
            raise QueryError("select() needs at least one column")
        return self._wrap(
            lp.Project(self._plan, tuple(exprs), tuple(aliases))
        )

    def join(
        self,
        other: "Query",
        on: Optional[Union[Expression, Tuple[str, str]]] = None,
        how: str = "inner",
    ) -> "Query":
        """Join with another query.

        ``on`` may be an expression or a ``(left_col, right_col)`` pair.
        """
        if isinstance(on, tuple):
            left_name, right_name = on
            condition: Optional[Expression] = col(left_name) == col(right_name)
        else:
            condition = on
        return self._wrap(
            lp.Join(self._plan, other._plan, condition, how)
        )

    def aggregate(
        self,
        *aggregates: lp.AggregateSpec,
        group_by: Sequence[Union[str, Expression]] = (),
    ) -> "Query":
        """Group by the given keys and compute aggregates."""
        keys = [_as_expression(g) for g in group_by]
        aliases = [_alias_for(g, i) for i, g in enumerate(group_by)]
        return self._wrap(
            lp.Aggregate(
                self._plan, tuple(keys), tuple(aliases), tuple(aggregates)
            )
        )

    def order_by(
        self, *keys: Union[str, Expression], descending: bool = False
    ) -> "Query":
        """Sort by the given keys (uniform direction)."""
        exprs = tuple(_as_expression(k) for k in keys)
        return self._wrap(
            lp.OrderBy(self._plan, exprs, tuple(descending for _ in exprs))
        )

    def limit(self, count: int) -> "Query":
        """Keep only the first ``count`` rows."""
        if count < 0:
            raise QueryError("limit must be non-negative")
        return self._wrap(lp.Limit(self._plan, count))

    def distinct(self) -> "Query":
        """Remove duplicate rows."""
        return self._wrap(lp.Distinct(self._plan))

    def union(self, other: "Query") -> "Query":
        """Bag union with another query."""
        return self._wrap(lp.Union(self._plan, other._plan))

    def run(
        self,
        metrics: Optional[ExecutionMetrics] = None,
        execution: Optional[str] = None,
        morsel_size: Optional[int] = None,
    ) -> List[Row]:
        """Execute the plan and return materialized rows.

        ``execution`` selects row vs columnar evaluation (``"auto"``
        consults the ``REPRO_ENGINE_EXECUTION`` environment variable).
        ``morsel_size`` enables morsel-parallel columnar execution
        (``None`` consults ``REPRO_ENGINE_MORSEL``; unset keeps the
        legacy executors).
        """
        from repro.engine.operators import ColumnarExecutor
        from repro.engine.optimizer import choose_execution

        from repro.engine.morsel import MorselExecutor, resolve_morsel_size

        size = resolve_morsel_size(morsel_size)
        mode = choose_execution(
            self._plan, execution, morsel=size is not None
        )
        if mode == "columnar":
            if size is not None:
                executor: Executor = MorselExecutor(
                    self._provider, metrics, morsel_size=size
                )
            else:
                executor = ColumnarExecutor(self._provider, metrics)
        else:
            executor = Executor(self._provider, metrics)
        return executor.execute(self._plan)

    def scalar(self) -> Any:
        """Execute and return the single value of a single-row/column result."""
        rows = self.run()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(rows)} row(s)"
            )
        return next(iter(rows[0].values()))

    def values(self, column: str) -> List[Any]:
        """Execute and return a single column as a list."""
        return [row[column] for row in self.run()]

    def count_rows(self) -> int:
        """Execute and return the number of result rows."""
        return len(self.run())
