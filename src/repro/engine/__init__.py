"""In-process relational engine (the paper's database substrate).

MCDB/SimSQL (Section 2.1) and Indemics (Section 2.4) assume a relational
engine underneath; this subpackage provides one: schemas and tables, an
expression language, logical plans with a rule/cost-based optimizer, an
iterator executor with row-flow metrics, and a compact SQL dialect.
"""

from repro.engine.catalog import Database
from repro.engine.csvio import table_from_csv, table_to_csv
from repro.engine.expressions import (
    BinaryOp,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    col,
    combine_and,
    conjuncts,
    lit,
)
from repro.engine.columnar import ColumnBatch, ColumnVector
from repro.engine.morsel import (
    MORSEL_ENV_VAR,
    MorselExecutor,
    resolve_morsel_size,
)
from repro.engine.operators import (
    ColumnarExecutor,
    ExecutionMetrics,
    Executor,
    provider_from,
)
from repro.engine.partition import (
    PARTITION_SCOPE,
    PartitionRun,
    PartitionedMorselExecutor,
    PartitionedTable,
)
from repro.engine.optimizer import (
    EXECUTION_ENV_VAR,
    choose_execution,
    resolve_execution_mode,
)
from repro.engine.plan import AggregateSpec, plan_summary
from repro.engine.query import Query, agg, avg, count, max_, min_, sum_
from repro.engine.schema import Column as SchemaColumn
from repro.engine.schema import Schema
from repro.engine.sqlparser import parse_select
from repro.engine.statistics import TableStatistics
from repro.engine.table import Table

__all__ = [
    "AggregateSpec",
    "BinaryOp",
    "Column",
    "ColumnBatch",
    "ColumnVector",
    "ColumnarExecutor",
    "Database",
    "EXECUTION_ENV_VAR",
    "ExecutionMetrics",
    "Executor",
    "MORSEL_ENV_VAR",
    "MorselExecutor",
    "PARTITION_SCOPE",
    "PartitionRun",
    "PartitionedMorselExecutor",
    "PartitionedTable",
    "choose_execution",
    "resolve_execution_mode",
    "resolve_morsel_size",
    "Expression",
    "FunctionCall",
    "InList",
    "IsNull",
    "Literal",
    "Query",
    "Schema",
    "SchemaColumn",
    "Table",
    "TableStatistics",
    "UnaryOp",
    "agg",
    "avg",
    "col",
    "combine_and",
    "conjuncts",
    "count",
    "lit",
    "max_",
    "min_",
    "parse_select",
    "plan_summary",
    "provider_from",
    "sum_",
    "table_from_csv",
    "table_to_csv",
]
