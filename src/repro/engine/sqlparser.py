"""A compact SQL dialect for the relational engine.

Supported statements::

    SELECT [DISTINCT] items FROM rel [, rel | JOIN rel ON expr]*
        [WHERE expr] [GROUP BY exprs] [HAVING expr]
        [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
    CREATE TABLE name (col type, ...)
    CREATE TABLE name AS SELECT ...
    INSERT INTO name [(cols)] VALUES (v, ...), ...
    INSERT INTO name SELECT ...
    UPDATE name SET col = expr [, ...] [WHERE expr]
    DELETE FROM name [WHERE expr]
    DROP TABLE name

Aggregates (``COUNT/SUM/AVG/MIN/MAX/VAR/STD``, with optional ``DISTINCT``)
appear at the top level of select items.  This covers everything the paper's
examples need — in particular the Indemics intervention queries of
Algorithm 1 and MCDB's VG-function parameter queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import plan as lp
from repro.engine.expressions import (
    BinaryOp,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    combine_and,
)
from repro.engine.schema import Schema
from repro.errors import QueryError

_AGGREGATES = {"count", "sum", "avg", "min", "max", "var", "std"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|%|\(|\)|,|\.|;)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "limit", "join", "inner", "left", "outer", "on", "and",
    "or", "not", "in", "is", "null", "between", "as", "asc", "desc",
    "create", "table", "insert", "into", "values", "update", "set",
    "delete", "drop", "union", "true", "false", "with",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise QueryError(f"cannot tokenize SQL at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        kind = match.lastgroup or "op"
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower()))
        else:
            tokens.append(_Token(kind, text))
    tokens.append(_Token("eof", ""))
    return tokens


@dataclass(frozen=True)
class SelectItem:
    """One parsed item of a select list."""

    expression: Optional[Expression]
    aggregate: Optional[lp.AggregateSpec]
    alias: str
    is_star: bool = False


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = _tokenize(sql)
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise QueryError(
                f"expected {want!r}, found {self.peek().text!r} "
                f"(token #{self.pos})"
            )
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.text in words

    # -- expression grammar -----------------------------------------------
    def parse_expression(self) -> Expression:
        return self._or()

    def _or(self) -> Expression:
        left = self._and()
        while self.accept("keyword", "or"):
            left = BinaryOp("or", left, self._and())
        return left

    def _and(self) -> Expression:
        left = self._not()
        while self.accept("keyword", "and"):
            left = BinaryOp("and", left, self._not())
        return left

    def _not(self) -> Expression:
        if self.accept("keyword", "not"):
            return UnaryOp("not", self._not())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            op = "!=" if token.text == "<>" else token.text
            return BinaryOp(op, left, self._additive())
        if self.at_keyword("between"):
            self.advance()
            low = self._additive()
            self.expect("keyword", "and")
            high = self._additive()
            return BinaryOp(
                "and", BinaryOp(">=", left, low), BinaryOp("<=", left, high)
            )
        negated = False
        if self.at_keyword("not") and self.peek(1).text == "in":
            self.advance()
            negated = True
        if self.at_keyword("in"):
            self.advance()
            self.expect("op", "(")
            if self.at_keyword("select"):
                subplan = self.parse_select()
                self.expect("op", ")")
                from repro.engine.expressions import InSubquery

                return InSubquery(left, subplan, negated=negated)
            values: List[Any] = []
            while True:
                values.append(self._literal_value())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
            membership = InList(left, tuple(values))
            return UnaryOp("not", membership) if negated else membership
        if self.at_keyword("is"):
            self.advance()
            is_negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            return IsNull(left, negated=is_negated)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                left = BinaryOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.advance()
                left = BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self.accept("op", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _literal_value(self) -> Any:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return (
                float(token.text)
                if any(c in token.text for c in ".eE")
                else int(token.text)
            )
        if token.kind == "string":
            self.advance()
            return token.text[1:-1].replace("''", "'")
        if self.accept("keyword", "true"):
            return True
        if self.accept("keyword", "false"):
            return False
        if self.accept("keyword", "null"):
            return None
        if self.accept("op", "-"):
            value = self._literal_value()
            return -value
        raise QueryError(f"expected literal, found {token.text!r}")

    def _primary(self) -> Expression:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = (
                float(token.text)
                if any(c in token.text for c in ".eE")
                else int(token.text)
            )
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if self.at_keyword("true"):
            self.advance()
            return Literal(True)
        if self.at_keyword("false"):
            self.advance()
            return Literal(False)
        if self.at_keyword("null"):
            self.advance()
            return Literal(None)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            name = token.text
            if self.peek().kind == "op" and self.peek().text == "(":
                self.advance()
                args: List[Expression] = []
                if not (self.peek().kind == "op" and self.peek().text == ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return FunctionCall(name, args)
            if self.accept("op", "."):
                field = self.expect("ident").text
                return Column(f"{name}.{field}")
            return Column(name)
        raise QueryError(f"unexpected token {token.text!r} in expression")

    # -- SELECT ---------------------------------------------------------------
    def parse_select(self) -> lp.PlanNode:
        self.expect("keyword", "select")
        distinct = bool(self.accept("keyword", "distinct"))
        items = self._select_items()
        self.expect("keyword", "from")
        source = self._from_clause()
        predicate = None
        if self.accept("keyword", "where"):
            predicate = self.parse_expression()
        group_exprs: List[Expression] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            while True:
                group_exprs.append(self.parse_expression())
                if not self.accept("op", ","):
                    break
        having = None
        if self.accept("keyword", "having"):
            having = self.parse_expression()
        order_keys: List[Tuple[Expression, bool]] = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            while True:
                expr = self.parse_expression()
                desc = False
                if self.accept("keyword", "desc"):
                    desc = True
                else:
                    self.accept("keyword", "asc")
                order_keys.append((expr, desc))
                if not self.accept("op", ","):
                    break
        limit = None
        if self.accept("keyword", "limit"):
            limit_token = self.expect("number")
            limit = int(float(limit_token.text))

        plan = source
        if predicate is not None:
            plan = lp.Filter(plan, predicate)

        has_aggregates = any(item.aggregate is not None for item in items)
        if has_aggregates or group_exprs:
            plan = self._build_aggregate(plan, items, group_exprs)
        else:
            star = any(item.is_star for item in items)
            if not star:
                exprs = tuple(item.expression for item in items)
                aliases = tuple(item.alias for item in items)
                plan = lp.Project(plan, exprs, aliases)
        if having is not None:
            plan = lp.Filter(plan, having)
        if distinct:
            plan = lp.Distinct(plan)
        for expr, desc in order_keys:
            pass  # collected below to keep multi-key ordering in one node
        if order_keys:
            plan = lp.OrderBy(
                plan,
                tuple(k for k, _ in order_keys),
                tuple(d for _, d in order_keys),
            )
        if limit is not None:
            plan = lp.Limit(plan, limit)
        if self.accept("keyword", "union"):
            rest = self.parse_select()
            plan = lp.Union(plan, rest)
        return plan

    def _select_items(self) -> List[SelectItem]:
        items: List[SelectItem] = []
        index = 0
        while True:
            if self.peek().kind == "op" and self.peek().text == "*":
                self.advance()
                items.append(SelectItem(None, None, "*", is_star=True))
            else:
                items.append(self._select_item(index))
            index += 1
            if not self.accept("op", ","):
                break
        return self._dedupe_aliases(items)

    @staticmethod
    def _dedupe_aliases(items: List[SelectItem]) -> List[SelectItem]:
        """Disambiguate clashing default aliases (``a.v, b.v`` -> ``v, b_v``).

        The first occurrence keeps the short alias; later clashes fall
        back to the qualified name with dots replaced, then to numbered
        suffixes.
        """
        seen: set = set()
        out: List[SelectItem] = []
        for item in items:
            alias = item.alias
            if alias in seen and not item.is_star:
                if isinstance(item.expression, Column) and "." in item.expression.name:
                    alias = item.expression.name.replace(".", "_")
                counter = 2
                base = alias
                while alias in seen:
                    alias = f"{base}_{counter}"
                    counter += 1
                aggregate = item.aggregate
                if aggregate is not None:
                    aggregate = lp.AggregateSpec(
                        aggregate.func,
                        aggregate.argument,
                        alias,
                        aggregate.distinct,
                    )
                item = SelectItem(
                    item.expression, aggregate, alias, item.is_star
                )
            seen.add(alias)
            out.append(item)
        return out

    def _select_item(self, index: int) -> SelectItem:
        token = self.peek()
        aggregate: Optional[lp.AggregateSpec] = None
        expression: Optional[Expression] = None
        default_alias = f"col_{index}"
        is_agg_call = (
            token.kind == "ident"
            and token.text.lower() in _AGGREGATES
            and self.peek(1).kind == "op"
            and self.peek(1).text == "("
        )
        if is_agg_call:
            func = self.advance().text.lower()
            self.expect("op", "(")
            distinct = bool(self.accept("keyword", "distinct"))
            if self.peek().kind == "op" and self.peek().text == "*":
                self.advance()
                argument = None
                default_alias = func
            else:
                argument = self.parse_expression()
                arg_name = (
                    argument.name.replace(".", "_")
                    if isinstance(argument, Column)
                    else f"expr_{index}"
                )
                default_alias = f"{func}_{arg_name}"
            self.expect("op", ")")
            aggregate = lp.AggregateSpec(func, argument, default_alias, distinct)
        else:
            expression = self.parse_expression()
            if isinstance(expression, Column):
                default_alias = expression.name.split(".")[-1]
        alias = default_alias
        if self.accept("keyword", "as"):
            alias = self.expect("ident").text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        if aggregate is not None:
            aggregate = lp.AggregateSpec(
                aggregate.func, aggregate.argument, alias, aggregate.distinct
            )
        return SelectItem(expression, aggregate, alias)

    def _relation(self) -> lp.PlanNode:
        if self.accept("op", "("):
            inner = self.parse_select()
            self.expect("op", ")")
            # Optional subquery alias (columns keep their own names).
            self.accept("keyword", "as")
            if self.peek().kind == "ident":
                self.advance()
            return inner
        name = self.expect("ident").text
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return lp.Scan(name, alias)

    @staticmethod
    def _qualify(node: lp.PlanNode) -> lp.PlanNode:
        """Alias an alias-less scan with its own table name.

        SQL lets a table name qualify its columns (``t.k`` with
        ``FROM t``); in multi-relation FROM clauses every scan therefore
        gets an explicit qualifier so qualified references resolve.
        """
        if isinstance(node, lp.Scan) and node.alias is None:
            return lp.Scan(node.table, node.table)
        return node

    def _from_clause(self) -> lp.PlanNode:
        plan = self._relation()
        joined = False
        while True:
            if self.accept("op", ","):
                right = self._relation()
                if not joined:
                    plan = self._qualify(plan)
                    joined = True
                plan = lp.Join(plan, self._qualify(right), None, "inner")
                continue
            how = None
            if self.at_keyword("join"):
                self.advance()
                how = "inner"
            elif self.at_keyword("inner") and self.peek(1).text == "join":
                self.advance()
                self.advance()
                how = "inner"
            elif self.at_keyword("left"):
                self.advance()
                self.accept("keyword", "outer")
                self.expect("keyword", "join")
                how = "left"
            if how is None:
                return plan
            right = self._relation()
            if not joined:
                plan = self._qualify(plan)
                joined = True
            right = self._qualify(right)
            condition = None
            if self.accept("keyword", "on"):
                condition = self.parse_expression()
            plan = lp.Join(plan, right, condition, how)

    def _build_aggregate(
        self,
        child: lp.PlanNode,
        items: Sequence[SelectItem],
        group_exprs: Sequence[Expression],
    ) -> lp.PlanNode:
        group_by: List[Expression] = list(group_exprs)
        group_aliases: List[str] = []
        aggregates: List[lp.AggregateSpec] = []
        used_groups: Dict[str, str] = {}
        for expr in group_by:
            alias = (
                expr.name.split(".")[-1]
                if isinstance(expr, Column)
                else f"group_{len(group_aliases)}"
            )
            group_aliases.append(alias)
            used_groups[repr(expr)] = alias
        # Non-aggregate select items must match a group-by expression.
        ordered_aliases: List[str] = []
        for item in items:
            if item.is_star:
                raise QueryError("SELECT * cannot be combined with GROUP BY")
            if item.aggregate is not None:
                aggregates.append(item.aggregate)
                ordered_aliases.append(item.aggregate.alias)
                continue
            key = repr(item.expression)
            if key in used_groups:
                idx = list(used_groups).index(key)
                group_aliases[idx] = item.alias
                used_groups[key] = item.alias
                ordered_aliases.append(item.alias)
            elif not group_by:
                raise QueryError(
                    f"non-aggregate select item {item.alias!r} "
                    "without GROUP BY"
                )
            else:
                raise QueryError(
                    f"select item {item.alias!r} is not in GROUP BY"
                )
        agg_node = lp.Aggregate(
            child, tuple(group_by), tuple(group_aliases), tuple(aggregates)
        )
        # Re-project to the select-list order when it differs.
        out_exprs = tuple(Column(a) for a in ordered_aliases)
        return lp.Project(agg_node, out_exprs, tuple(ordered_aliases))

    # -- DDL / DML -------------------------------------------------------------
    def parse_statement(self) -> Tuple[str, Any]:
        """Parse one statement; returns ``(kind, payload)``."""
        if self.at_keyword("with"):
            return "select_with_ctes", self._parse_with()
        if self.at_keyword("select"):
            return "select", self.parse_select()
        if self.at_keyword("create"):
            return self._parse_create()
        if self.at_keyword("insert"):
            return self._parse_insert()
        if self.at_keyword("update"):
            return self._parse_update()
        if self.at_keyword("delete"):
            return self._parse_delete()
        if self.at_keyword("drop"):
            self.advance()
            self.expect("keyword", "table")
            name = self.expect("ident").text
            return "drop", name
        raise QueryError(f"unsupported statement near {self.peek().text!r}")

    def _parse_with(self) -> Tuple[List[Tuple[str, Optional[List[str]], Any]], Any]:
        """``WITH name [(cols)] AS (SELECT ...) [, ...] SELECT ...``.

        Returns ``(ctes, main_plan)`` where each CTE entry is
        ``(name, column_names_or_None, plan)`` — the form Algorithm 1 of
        the paper uses (``WITH InfectedPreschool (pid) AS (...)``).
        """
        self.expect("keyword", "with")
        ctes: List[Tuple[str, Optional[List[str]], Any]] = []
        while True:
            name = self.expect("ident").text
            columns: Optional[List[str]] = None
            if self.accept("op", "("):
                columns = []
                while True:
                    columns.append(self.expect("ident").text)
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
            self.expect("keyword", "as")
            self.expect("op", "(")
            plan = self.parse_select()
            self.expect("op", ")")
            ctes.append((name, columns, plan))
            if not self.accept("op", ","):
                break
        main = self.parse_select()
        return ctes, main

    def _parse_create(self) -> Tuple[str, Any]:
        self.advance()  # create
        self.expect("keyword", "table")
        name = self.expect("ident").text
        if self.accept("keyword", "as"):
            plan = self.parse_select()
            return "create_as", (name, plan)
        self.expect("op", "(")
        spec: Dict[str, str] = {}
        while True:
            col_name = self.expect("ident").text
            type_name = self.expect("ident").text.lower()
            mapping = {
                "int": "int", "integer": "int", "bigint": "int",
                "float": "float", "real": "float", "double": "float",
                "str": "str", "text": "str", "varchar": "str",
                "bool": "bool", "boolean": "bool",
            }
            if type_name not in mapping:
                raise QueryError(f"unknown SQL type {type_name!r}")
            spec[col_name] = mapping[type_name]
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return "create", (name, spec)

    def _parse_insert(self) -> Tuple[str, Any]:
        self.advance()  # insert
        self.expect("keyword", "into")
        name = self.expect("ident").text
        columns: Optional[List[str]] = None
        if self.accept("op", "("):
            columns = []
            while True:
                columns.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        if self.at_keyword("select"):
            plan = self.parse_select()
            return "insert_select", (name, columns, plan)
        self.expect("keyword", "values")
        rows: List[List[Any]] = []
        while True:
            self.expect("op", "(")
            values: List[Any] = []
            while True:
                values.append(self._literal_value())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
            rows.append(values)
            if not self.accept("op", ","):
                break
        return "insert", (name, columns, rows)

    def _parse_update(self) -> Tuple[str, Any]:
        self.advance()  # update
        name = self.expect("ident").text
        self.expect("keyword", "set")
        assignments: Dict[str, Expression] = {}
        while True:
            column = self.expect("ident").text
            self.expect("op", "=")
            assignments[column] = self.parse_expression()
            if not self.accept("op", ","):
                break
        predicate: Expression = Literal(True)
        if self.accept("keyword", "where"):
            predicate = self.parse_expression()
        return "update", (name, assignments, predicate)

    def _parse_delete(self) -> Tuple[str, Any]:
        self.advance()  # delete
        self.expect("keyword", "from")
        name = self.expect("ident").text
        predicate: Expression = Literal(True)
        if self.accept("keyword", "where"):
            predicate = self.parse_expression()
        return "delete", (name, predicate)


def parse_select(sql: str) -> lp.PlanNode:
    """Parse a SELECT statement into a logical plan."""
    parser = _Parser(sql)
    plan = parser.parse_select()
    parser.accept("op", ";")
    if parser.peek().kind != "eof":
        raise QueryError(
            f"trailing tokens after statement: {parser.peek().text!r}"
        )
    return plan


def parse_statement(sql: str):
    """Parse one complete SQL statement without executing it.

    Returns ``(kind, payload)`` exactly as the executing path sees it —
    ``kind`` is one of ``select``, ``select_with_ctes``, ``create``,
    ``create_as``, ``insert``, ``insert_select``, ``update``,
    ``delete``, or ``drop``.  The service layer uses this to classify a
    request (read vs write, which tables it touches) *before* admitting
    it, so a malformed statement is rejected as a client error rather
    than burning an execution slot and a retry budget.
    """
    parser = _Parser(sql)
    kind, payload = parser.parse_statement()
    parser.accept("op", ";")
    if parser.peek().kind != "eof":
        raise QueryError(
            f"trailing tokens after statement: {parser.peek().text!r}"
        )
    return kind, payload


def _plan_tables(plan) -> set:
    """Base-table names a plan scans, subquery plans included."""
    tables = set()
    for node in lp.walk(plan):
        if isinstance(node, lp.Scan):
            tables.add(node.table)

    def collect_subquery(expr):
        from repro.engine.expressions import InSubquery

        if isinstance(expr, InSubquery):
            tables.update(_plan_tables(expr.plan))
        return None

    from repro.engine.expressions import transform_expression

    lp.map_expressions(
        plan, lambda e: transform_expression(e, collect_subquery)
    )
    return tables


def statement_tables(kind: str, payload):
    """The ``(reads, writes)`` table-name sets of a parsed statement.

    ``reads`` are catalog tables the statement scans (CTE names are
    resolved away — a ``WITH`` alias is not a catalog read); ``writes``
    are tables it creates, mutates, or drops.  Cache keys for served
    queries fold the versions of every read table, and session scoping
    forbids writes to the shared catalog, so both sides of the service
    layer consume this classification.
    """
    reads: set = set()
    writes: set = set()
    if kind == "select":
        reads = _plan_tables(payload)
    elif kind == "select_with_ctes":
        ctes, main = payload
        cte_names = {name for name, _, _ in ctes}
        for _, _, plan in ctes:
            reads |= _plan_tables(plan)
        reads |= _plan_tables(main)
        reads -= cte_names
    elif kind in ("create", "insert"):
        writes = {payload[0]}
    elif kind == "create_as":
        name, plan = payload
        writes = {name}
        reads = _plan_tables(plan)
    elif kind == "insert_select":
        name, _, plan = payload
        writes = {name}
        reads = _plan_tables(plan)
    elif kind in ("update", "delete"):
        writes = {payload[0]}
    elif kind == "drop":
        writes = {payload}
    else:  # pragma: no cover - parse_statement never returns other kinds
        raise QueryError(f"unhandled statement kind {kind!r}")
    return reads, writes


def execute_sql(db, sql: str, execution=None, morsel_size=None):
    """Parse and execute one SQL statement against ``db``.

    ``db`` is a :class:`repro.engine.catalog.Database`.  Returns the result
    rows for SELECT, an empty list otherwise.  ``execution`` picks the
    executor mode per plan and ``morsel_size`` enables morsel-parallel
    columnar execution (see ``Database.execute_plan``).
    """
    kind, payload = parse_statement(sql)

    if kind == "select":
        return db.execute_plan(payload, execution=execution, morsel_size=morsel_size)
    if kind == "select_with_ctes":
        ctes, main = payload
        # Materialize CTEs into an overlay database so the base catalog
        # is never mutated; later CTEs may reference earlier ones.
        from repro.engine.catalog import Database as _Database
        from repro.engine.table import Table

        overlay = _Database()
        for table_name in db.table_names():
            overlay.register(db.table(table_name))
        for name, columns, plan in ctes:
            rows = overlay.execute_plan(plan, execution=execution, morsel_size=morsel_size)
            if not rows:
                if columns is None:
                    raise QueryError(
                        f"CTE {name!r} produced zero rows; declare its "
                        "column list (WITH name (cols) AS ...) so an "
                        "empty relation can be typed"
                    )
                empty_schema = Schema.from_spec(
                    {column: "float" for column in columns}
                )
                overlay.register(Table(name, empty_schema), replace=True)
                continue
            if columns is not None:
                if len(columns) != len(rows[0]):
                    raise QueryError(
                        f"CTE {name!r} declares {len(columns)} columns "
                        f"but produces {len(rows[0])}"
                    )
                rows = [
                    dict(zip(columns, row.values())) for row in rows
                ]
            overlay.register(Table.from_rows(name, rows), replace=True)
        return overlay.execute_plan(main, execution=execution, morsel_size=morsel_size)
    if kind == "create":
        name, spec = payload
        db.create_table(name, Schema.from_spec(spec))
        return []
    if kind == "create_as":
        name, plan = payload
        rows = db.execute_plan(plan, execution=execution, morsel_size=morsel_size)
        if not rows:
            raise QueryError(
                "CREATE TABLE AS with an empty result cannot infer a schema"
            )
        from repro.engine.table import Table

        db.register(Table.from_rows(name, rows))
        return []
    if kind == "insert":
        name, columns, rows = payload
        table = db.table(name)
        names = columns or list(table.schema.names)
        for values in rows:
            if len(values) != len(names):
                raise QueryError(
                    f"INSERT arity mismatch: {len(values)} values "
                    f"for {len(names)} columns"
                )
            table.insert(dict(zip(names, values)))
        return []
    if kind == "insert_select":
        name, columns, plan = payload
        table = db.table(name)
        names = columns or list(table.schema.names)
        for row in db.execute_plan(plan, execution=execution, morsel_size=morsel_size):
            values = list(row.values())
            if len(values) != len(names):
                raise QueryError(
                    "INSERT ... SELECT arity mismatch: "
                    f"{len(values)} values for {len(names)} columns"
                )
            table.insert(dict(zip(names, values)))
        return []
    if kind == "update":
        name, assignments, predicate = payload
        db.table(name).update_where(predicate, assignments)
        return []
    if kind == "delete":
        name, predicate = payload
        db.table(name).delete_where(predicate)
        return []
    if kind == "drop":
        db.drop_table(payload)
        return []
    raise QueryError(f"unhandled statement kind {kind!r}")
