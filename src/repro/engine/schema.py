"""Relation schemas for the in-process relational engine.

The engine stores rows as plain ``dict`` objects keyed by column name; the
:class:`Schema` records declared column names/types, validates inserted rows,
and coerces values.  Types are deliberately coarse (int, float, str, bool) —
enough to support the MCDB, SimSQL and Indemics workloads the paper
describes without reimplementing a full SQL type system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Type

from repro.errors import SchemaError

_TYPE_NAMES: Dict[str, type] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: type = float

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.dtype not in (int, float, str, bool):
            raise SchemaError(
                f"unsupported column type {self.dtype!r} for {self.name!r}"
            )

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type (``None`` passes through)."""
        if value is None:
            return None
        if isinstance(value, self.dtype) and not (
            self.dtype is int and isinstance(value, bool)
        ):
            return value
        try:
            if self.dtype is bool and isinstance(value, str):
                return value.lower() in ("true", "t", "1", "yes")
            return self.dtype(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.dtype.__name__} "
                f"for column {self.name!r}"
            ) from exc


class Schema:
    """An ordered collection of :class:`Column` objects.

    Examples
    --------
    >>> schema = Schema.of(pid=int, age=int, name=str)
    >>> schema.names
    ('pid', 'age', 'name')
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns: Tuple[Column, ...] = tuple(cols)
        self._by_name: Dict[str, Column] = {c.name: c for c in cols}

    @classmethod
    def of(cls, **columns: type) -> "Schema":
        """Build a schema from ``name=type`` keyword arguments."""
        return cls(Column(name, dtype) for name, dtype in columns.items())

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Schema":
        """Build a schema from a ``{name: type-or-typename}`` mapping."""
        cols = []
        for name, dtype in spec.items():
            if isinstance(dtype, str):
                if dtype not in _TYPE_NAMES:
                    raise SchemaError(f"unknown type name {dtype!r}")
                dtype = _TYPE_NAMES[dtype]
            cols.append(Column(name, dtype))
        return cls(cols)

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The ordered columns."""
        return self._columns

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{c.name}: {c.dtype.__name__}" for c in self._columns
        )
        return f"Schema({inner})"

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; schema has {list(self.names)}"
            ) from None

    def validate_row(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and coerce a row mapping against this schema.

        Missing columns become ``None``; unexpected keys raise.
        """
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"row has unknown columns {sorted(extra)}; "
                f"schema has {list(self.names)}"
            )
        return {
            c.name: c.coerce(row.get(c.name)) for c in self._columns
        }

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping``."""
        return Schema(
            Column(mapping.get(c.name, c.name), c.dtype)
            for c in self._columns
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every column name prefixed ``prefix.name``."""
        return Schema(
            Column(f"{prefix}.{c.name}", c.dtype) for c in self._columns
        )

    def project(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema for ``names`` (in the given order)."""
        return Schema(self.column(n) for n in names)
