"""Catalog statistics for cost-based optimization.

Section 2.3 of the paper draws an explicit analogy between estimating the
run-cost/variance statistics of simulation components and "estimating
catalog statistics for a relational database system".  This module is the
database side of that analogy: per-table row counts, per-column distinct
counts and min/max, and the selectivity/cardinality estimation formulas a
textbook System-R style optimizer uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.engine.expressions import (
    BinaryOp,
    Column,
    Expression,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.engine.table import Table

_DEFAULT_SELECTIVITY = {
    "=": 0.1,
    "!=": 0.9,
    "<": 1.0 / 3.0,
    "<=": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    ">=": 1.0 / 3.0,
}


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics for a single column."""

    distinct_count: int
    null_count: int
    minimum: Optional[float]
    maximum: Optional[float]


@dataclass
class TableStatistics:
    """Summary statistics for a table."""

    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def collect(cls, table: Table) -> "TableStatistics":
        """Scan ``table`` once and collect per-column statistics."""
        stats = cls(row_count=len(table))
        for name in table.schema.names:
            values = table.column_values(name)
            non_null = [v for v in values if v is not None]
            numeric = [
                v
                for v in non_null
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            stats.columns[name] = ColumnStatistics(
                distinct_count=len(set(non_null)),
                null_count=len(values) - len(non_null),
                minimum=float(min(numeric)) if numeric else None,
                maximum=float(max(numeric)) if numeric else None,
            )
        return stats

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Column statistics by (possibly qualified) name."""
        if name in self.columns:
            return self.columns[name]
        suffix = "." + name
        matches = [k for k in self.columns if k.endswith(suffix)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        # Also allow qualified lookups against unqualified stats.
        tail = name.rsplit(".", 1)[-1]
        return self.columns.get(tail)


def equality_selectivity(
    stats: TableStatistics, column_name: str
) -> float:
    """Selectivity estimate for ``column = constant`` (1/NDV heuristic)."""
    col_stats = stats.column(column_name)
    if col_stats is None or col_stats.distinct_count == 0:
        return _DEFAULT_SELECTIVITY["="]
    return 1.0 / col_stats.distinct_count


def range_selectivity(
    stats: TableStatistics, column_name: str, op: str, constant: float
) -> float:
    """Selectivity estimate for ``column <op> constant`` via min/max interpolation."""
    col_stats = stats.column(column_name)
    if (
        col_stats is None
        or col_stats.minimum is None
        or col_stats.maximum is None
        or col_stats.maximum <= col_stats.minimum
    ):
        return _DEFAULT_SELECTIVITY.get(op, 0.5)
    span = col_stats.maximum - col_stats.minimum
    fraction = (constant - col_stats.minimum) / span
    fraction = min(max(fraction, 0.0), 1.0)
    if op in ("<", "<="):
        return fraction
    if op in (">", ">="):
        return 1.0 - fraction
    return _DEFAULT_SELECTIVITY.get(op, 0.5)


def predicate_selectivity(
    predicate: Expression, stats: TableStatistics
) -> float:
    """Estimate the fraction of rows satisfying ``predicate``.

    Follows the classical independence assumptions: conjuncts multiply,
    disjuncts combine by inclusion-exclusion, NOT complements.
    """
    if isinstance(predicate, Literal):
        return 1.0 if predicate.value else 0.0
    if isinstance(predicate, UnaryOp) and predicate.op == "not":
        return 1.0 - predicate_selectivity(predicate.operand, stats)
    if isinstance(predicate, InList):
        # ``col IN (v1, ..., vk)``: of the column's NDV distinct values,
        # at most ``min(k_distinct, NDV)`` can match, each holding
        # ~``1/NDV`` of the non-null rows (uniformity assumption) — so
        # the matched fraction is ``min(k, NDV)/NDV`` scaled by the
        # non-null fraction.  Duplicated list literals are deduplicated
        # first; without usable statistics, fall back to the classical
        # ``k × equality-selectivity`` bound.
        distinct_literals = len(set(predicate.values))
        if isinstance(predicate.operand, Column):
            col_stats = stats.column(predicate.operand.name)
            if (
                col_stats is not None
                and col_stats.distinct_count > 0
                and stats.row_count > 0
            ):
                ndv = col_stats.distinct_count
                matched = min(distinct_literals, ndv)
                non_null = 1.0 - col_stats.null_count / stats.row_count
                return min(1.0, (matched / ndv) * non_null)
        names = predicate.operand.columns()
        if len(names) == 1:
            sel = equality_selectivity(stats, next(iter(names)))
            return min(1.0, sel * distinct_literals)
        return 0.3
    if isinstance(predicate, IsNull):
        return 0.1 if not predicate.negated else 0.9
    if isinstance(predicate, BinaryOp):
        op = predicate.op
        if op == "and":
            return predicate_selectivity(
                predicate.left, stats
            ) * predicate_selectivity(predicate.right, stats)
        if op == "or":
            a = predicate_selectivity(predicate.left, stats)
            b = predicate_selectivity(predicate.right, stats)
            return a + b - a * b
        col_expr, lit_expr = None, None
        if isinstance(predicate.left, Column) and isinstance(
            predicate.right, Literal
        ):
            col_expr, lit_expr = predicate.left, predicate.right
            effective_op = op
        elif isinstance(predicate.right, Column) and isinstance(
            predicate.left, Literal
        ):
            col_expr, lit_expr = predicate.right, predicate.left
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            effective_op = flip.get(op, op)
        else:
            return _DEFAULT_SELECTIVITY.get(op, 0.5)
        if effective_op == "=":
            return equality_selectivity(stats, col_expr.name)
        if effective_op == "!=":
            return 1.0 - equality_selectivity(stats, col_expr.name)
        # Coerce defensively: literals can be strings (str-typed
        # predicates), bools, or odd numeric-likes (e.g. NumPy
        # scalars); anything that does not cleanly become a finite
        # float falls back to the default selectivity instead of
        # crashing the optimizer.
        constant: Optional[float] = None
        if not isinstance(lit_expr.value, bool):
            try:
                constant = float(lit_expr.value)
            except (TypeError, ValueError):
                constant = None
        if constant is not None and math.isfinite(constant):
            return range_selectivity(
                stats, col_expr.name, effective_op, constant
            )
        return _DEFAULT_SELECTIVITY.get(effective_op, 0.5)
    return 0.5


def join_cardinality(
    left: TableStatistics,
    right: TableStatistics,
    left_key: Optional[str],
    right_key: Optional[str],
) -> float:
    """Classical equi-join cardinality: ``|L||R| / max(ndv_L, ndv_R)``."""
    if left.row_count == 0 or right.row_count == 0:
        return 0.0
    cross = float(left.row_count) * float(right.row_count)
    if left_key is None or right_key is None:
        return cross
    lstats = left.column(left_key)
    rstats = right.column(right_key)
    ndv = max(
        lstats.distinct_count if lstats else 1,
        rstats.distinct_count if rstats else 1,
        1,
    )
    return cross / ndv
