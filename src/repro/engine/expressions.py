"""Scalar expression trees for predicates and projections.

Expressions are small immutable ASTs evaluated against row dictionaries.
They support Python operator overloading, so predicates read naturally::

    from repro.engine import col, lit
    predicate = (col("age") >= 0) & (col("age") <= 4)

Column references may be qualified (``"person.age"``).  An unqualified name
resolves against a row by exact match first, then by unique ``*.name``
suffix match — mirroring SQL name resolution after joins.
"""

from __future__ import annotations

import math
import operator
from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import QueryError

Row = Mapping[str, Any]


def resolve_column(row: Row, name: str) -> Any:
    """Resolve ``name`` in ``row`` with SQL-style suffix matching.

    Resolution order: exact key; unique ``*.name`` suffix match; and —
    for a qualified ``name`` against a row whose keys carry no
    qualifiers at all (a single unaliased table) — the bare tail.
    """
    if name in row:
        return row[name]
    suffix = "." + name
    matches = [k for k in row if k.endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if len(matches) > 1:
        raise QueryError(
            f"ambiguous column {name!r}: matches {sorted(matches)}"
        )
    if "." in name and not any("." in key for key in row):
        tail = name.rsplit(".", 1)[1]
        if tail in row:
            return row[tail]
    raise QueryError(f"unknown column {name!r}; row has {sorted(row)}")


class Expression(ABC):
    """Base class for scalar expressions."""

    @abstractmethod
    def evaluate(self, row: Row) -> Any:
        """Evaluate this expression against a row."""

    @abstractmethod
    def columns(self) -> FrozenSet[str]:
        """Names of all columns referenced by this expression."""

    # -- operator overloading -------------------------------------------
    def _bin(self, op: str, other: Any, flip: bool = False) -> "BinaryOp":
        other_expr = other if isinstance(other, Expression) else Literal(other)
        left, right = (other_expr, self) if flip else (self, other_expr)
        return BinaryOp(op, left, right)

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, flip=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, flip=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, flip=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, flip=True)

    def __mod__(self, other):
        return self._bin("%", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("=", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._bin("!=", other)

    def __lt__(self, other):
        return self._bin("<", other)

    def __le__(self, other):
        return self._bin("<=", other)

    def __gt__(self, other):
        return self._bin(">", other)

    def __ge__(self, other):
        return self._bin(">=", other)

    def __and__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __invert__(self):
        return UnaryOp("not", self)

    def __neg__(self):
        return UnaryOp("-", self)

    def __hash__(self) -> int:  # Expressions are used in sets during rewrite
        return hash(repr(self))

    def is_in(self, values: Sequence[Any]) -> "InList":
        """Build an ``x IN (...)`` membership predicate."""
        return InList(self, tuple(values))

    def between(self, low: Any, high: Any) -> "BinaryOp":
        """Build a ``low <= x AND x <= high`` predicate."""
        return (self >= low) & (self <= high)


class Column(Expression):
    """Reference to a column by (possibly qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise QueryError("column name must be non-empty")
        self.name = name

    def evaluate(self, row: Row) -> Any:
        return resolve_column(row, self.name)

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Row) -> Any:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


def _null_safe(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    def wrapped(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        return fn(a, b)

    return wrapped


def _sql_and(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _sql_or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _null_safe(operator.add),
    "-": _null_safe(operator.sub),
    "*": _null_safe(operator.mul),
    "/": _null_safe(operator.truediv),
    "%": _null_safe(operator.mod),
    "=": _null_safe(operator.eq),
    "!=": _null_safe(operator.ne),
    "<": _null_safe(operator.lt),
    "<=": _null_safe(operator.le),
    ">": _null_safe(operator.gt),
    ">=": _null_safe(operator.ge),
    "and": _sql_and,
    "or": _sql_or,
}


class BinaryOp(Expression):
    """A binary arithmetic, comparison, or boolean operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _BINARY_OPS:
            raise QueryError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Any:
        return _BINARY_OPS[self.op](
            self.left.evaluate(row), self.right.evaluate(row)
        )

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    """Unary negation or boolean NOT."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression) -> None:
        if op not in ("-", "not"):
            raise QueryError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        if self.op == "-":
            return -value
        return not value

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


class InList(Expression):
    """SQL ``IN`` membership over a literal list."""

    __slots__ = ("operand", "values", "_value_set")

    def __init__(self, operand: Expression, values: Tuple[Any, ...]) -> None:
        self.operand = operand
        self.values = values
        self._value_set = set(values)

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return value in self._value_set

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} in {self.values!r})"


class InSubquery(Expression):
    """SQL ``x IN (SELECT ...)`` over an *uncorrelated* subquery.

    The subquery plan is materialized into an :class:`InList` by the
    database before execution (see
    :meth:`repro.engine.catalog.Database.execute_plan`); evaluating an
    unmaterialized instance is an error.
    """

    __slots__ = ("operand", "plan", "negated")

    def __init__(self, operand: Expression, plan: Any, negated: bool = False) -> None:
        self.operand = operand
        self.plan = plan
        self.negated = negated

    def evaluate(self, row: Row) -> Any:
        raise QueryError(
            "IN (SELECT ...) was not materialized; execute the query "
            "through Database.sql()/execute_plan()"
        )

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        op = "not in" if self.negated else "in"
        return f"({self.operand!r} {op} <subquery>)"


def transform_expression(
    expr: Expression, fn: Callable[[Expression], Optional[Expression]]
) -> Expression:
    """Rebuild an expression bottom-up, letting ``fn`` replace nodes.

    ``fn`` receives each (already child-transformed) node and returns a
    replacement or ``None`` to keep it.
    """
    if isinstance(expr, BinaryOp):
        rebuilt: Expression = BinaryOp(
            expr.op,
            transform_expression(expr.left, fn),
            transform_expression(expr.right, fn),
        )
    elif isinstance(expr, UnaryOp):
        rebuilt = UnaryOp(expr.op, transform_expression(expr.operand, fn))
    elif isinstance(expr, InList):
        rebuilt = InList(
            transform_expression(expr.operand, fn), expr.values
        )
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(
            transform_expression(expr.operand, fn), expr.negated
        )
    elif isinstance(expr, FunctionCall):
        rebuilt = FunctionCall(
            expr.name,
            [transform_expression(a, fn) for a in expr.args],
        )
    elif isinstance(expr, InSubquery):
        rebuilt = InSubquery(
            transform_expression(expr.operand, fn), expr.plan, expr.negated
        )
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


class IsNull(Expression):
    """SQL ``IS NULL`` / ``IS NOT NULL`` test."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def evaluate(self, row: Row) -> Any:
        result = self.operand.evaluate(row) is None
        return not result if self.negated else result

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        op = "is not null" if self.negated else "is null"
        return f"({self.operand!r} {op})"


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "length": len,
    "coalesce": lambda *args: next(
        (a for a in args if a is not None), None
    ),
    "least": min,
    "greatest": max,
}


class FunctionCall(Expression):
    """A call to a built-in scalar function (``abs``, ``sqrt``, ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        lowered = name.lower()
        if lowered not in _FUNCTIONS:
            raise QueryError(
                f"unknown function {name!r}; "
                f"available: {sorted(_FUNCTIONS)}"
            )
        self.name = lowered
        self.args = tuple(args)

    def evaluate(self, row: Row) -> Any:
        values = [a.evaluate(row) for a in self.args]
        if self.name != "coalesce" and any(v is None for v in values):
            return None
        return _FUNCTIONS[self.name](*values)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.columns()
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Vectorized (batch) evaluation
# ---------------------------------------------------------------------------

#: Functions with an exact vectorized replica (``math``-identical values
#: *and* error behaviour).  ``round``/``floor``/``ceil`` return Python
#: ints where NumPy returns floats, and the string functions have no
#: NumPy equivalent over object columns — those stay row-only, which is
#: what exercises the executor's per-node row fallback.
VECTORIZED_FUNCTIONS = frozenset({"abs", "sqrt", "exp", "log"})


def is_vectorizable(expr: Expression) -> bool:
    """True when ``expr`` has an exact columnar evaluation.

    The columnar executor only batches plan nodes whose expressions all
    pass this check; anything else runs through the row interpreter, so
    vectorization is never allowed to change results.
    """
    if isinstance(expr, (Column, Literal)):
        return True
    if isinstance(expr, BinaryOp):
        return is_vectorizable(expr.left) and is_vectorizable(expr.right)
    if isinstance(expr, UnaryOp):
        return is_vectorizable(expr.operand)
    if isinstance(expr, (InList, IsNull)):
        return is_vectorizable(expr.operand)
    if isinstance(expr, FunctionCall):
        return expr.name in VECTORIZED_FUNCTIONS and all(
            is_vectorizable(a) for a in expr.args
        )
    return False


def evaluate_batch(expr: Expression, batch: "columnar.ColumnBatch"):
    """Evaluate ``expr`` over a whole :class:`~repro.engine.columnar
    .ColumnBatch`, returning a :class:`~repro.engine.columnar
    .ColumnVector` byte-identical to per-row evaluation.

    Raises :class:`~repro.errors.QueryError` for expressions that
    :func:`is_vectorizable` rejects.
    """
    from repro.engine import columnar

    if isinstance(expr, Column):
        return batch.resolve(expr.name)
    if isinstance(expr, Literal):
        return columnar.vector_from_scalar(expr.value, batch.length)
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return columnar.logical_and(
                evaluate_batch(expr.left, batch),
                evaluate_batch(expr.right, batch),
            )
        if expr.op == "or":
            return columnar.logical_or(
                evaluate_batch(expr.left, batch),
                evaluate_batch(expr.right, batch),
            )
        left = evaluate_batch(expr.left, batch)
        right = evaluate_batch(expr.right, batch)
        fallback = _BINARY_OPS[expr.op]
        if expr.op in ("+", "-", "*", "/", "%"):
            return columnar.arith(expr.op, fallback, left, right)
        return columnar.compare(expr.op, fallback, left, right)
    if isinstance(expr, UnaryOp):
        operand = evaluate_batch(expr.operand, batch)
        if expr.op == "-":
            return columnar.negate(operand)
        return columnar.logical_not(operand)
    if isinstance(expr, InList):
        return columnar.in_list(
            evaluate_batch(expr.operand, batch),
            expr.values,
            expr._value_set,
        )
    if isinstance(expr, IsNull):
        return columnar.is_null(
            evaluate_batch(expr.operand, batch), expr.negated
        )
    if isinstance(expr, FunctionCall):
        if expr.name not in VECTORIZED_FUNCTIONS:
            raise QueryError(
                f"function {expr.name!r} is not vectorized; "
                "use the row execution mode"
            )
        args = [evaluate_batch(a, batch) for a in expr.args]
        return columnar.call_function(expr.name, _FUNCTIONS[expr.name], args)
    raise QueryError(
        f"expression {expr!r} has no columnar evaluation"
    )


def col(name: str) -> Column:
    """Shorthand constructor for a column reference."""
    return Column(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def conjuncts(predicate: Expression) -> Tuple[Expression, ...]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(predicate, BinaryOp) and predicate.op == "and":
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    return (predicate,)


def combine_and(predicates: Sequence[Expression]) -> Expression:
    """Combine predicates with AND (identity: ``lit(True)``)."""
    preds = list(predicates)
    if not preds:
        return Literal(True)
    out = preds[0]
    for p in preds[1:]:
        out = BinaryOp("and", out, p)
    return out
