"""Logical query plans.

A plan is an immutable tree of nodes; the executor
(:mod:`repro.engine.operators`) interprets it and the optimizer
(:mod:`repro.engine.optimizer`) rewrites it.  Keeping logical plans as plain
dataclasses makes rewrites (predicate pushdown, join reordering) simple
structural transformations — the same architecture the paper invokes when it
argues that simulation-experiment optimization "subsumes the problem of
query optimization".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence, Tuple

from repro.engine.expressions import Expression
from repro.errors import QueryError


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child plan nodes."""
        return ()

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Return a copy of this node with new children."""
        if children:
            raise QueryError(f"{type(self).__name__} takes no children")
        return self


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan a named base table, optionally aliasing its columns."""

    table: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """The name this relation is visible as downstream."""
        return self.alias or self.table


@dataclass(frozen=True)
class Values(PlanNode):
    """An inline relation (list of row dicts), used for literals/tests."""

    rows: Tuple[Any, ...]


@dataclass(frozen=True)
class Filter(PlanNode):
    """Keep rows where ``predicate`` evaluates to ``True``."""

    child: PlanNode
    predicate: Expression

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Project(PlanNode):
    """Compute output columns ``aliases[i] = expressions[i]``."""

    child: PlanNode
    expressions: Tuple[Expression, ...]
    aliases: Tuple[str, ...]

    def __post_init__(self):
        if len(self.expressions) != len(self.aliases):
            raise QueryError("projection aliases/expressions mismatch")
        if len(set(self.aliases)) != len(self.aliases):
            raise QueryError(
                f"duplicate projection aliases {list(self.aliases)}; "
                "alias the columns explicitly"
            )

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Join(PlanNode):
    """Join two relations.

    ``condition`` may be ``None`` for a cross join.  ``how`` is ``"inner"``
    or ``"left"``.  ``algorithm`` is a physical-operator hint set by the
    optimizer — ``None`` (executor default), ``"hash"``, ``"sort_merge"``,
    or ``"co_partitioned"`` — and never changes results, only the
    pair-generation strategy.
    """

    left: PlanNode
    right: PlanNode
    condition: Optional[Expression] = None
    how: str = "inner"
    algorithm: Optional[str] = None

    def __post_init__(self):
        if self.how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {self.how!r}")
        if self.algorithm not in (
            None, "hash", "sort_merge", "co_partitioned"
        ):
            raise QueryError(
                f"unsupported join algorithm {self.algorithm!r}"
            )

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``alias = func(argument)``.

    ``func`` is one of ``count``, ``sum``, ``avg``, ``min``, ``max``,
    ``var``, ``std``.  ``argument`` is ``None`` only for ``count(*)``.
    """

    func: str
    argument: Optional[Expression]
    alias: str
    distinct: bool = False

    _FUNCS = ("count", "sum", "avg", "min", "max", "var", "std")

    def __post_init__(self):
        if self.func not in self._FUNCS:
            raise QueryError(
                f"unknown aggregate {self.func!r}; supported: {self._FUNCS}"
            )
        if self.argument is None and self.func != "count":
            raise QueryError(f"{self.func}(*) is not defined")


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Group-by aggregation."""

    child: PlanNode
    group_by: Tuple[Expression, ...]
    group_aliases: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class OrderBy(PlanNode):
    """Sort by expressions with per-key direction flags."""

    child: PlanNode
    keys: Tuple[Expression, ...]
    descending: Tuple[bool, ...]

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Limit(PlanNode):
    """Keep the first ``count`` rows."""

    child: PlanNode
    count: int

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Distinct(PlanNode):
    """Remove duplicate rows."""

    child: PlanNode

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Union(PlanNode):
    """Bag union of two relations with identical column sets."""

    left: PlanNode
    right: PlanNode

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return replace(self, left=left, right=right)


def map_expressions(node: PlanNode, fn) -> PlanNode:
    """Rebuild a plan with every embedded expression passed through ``fn``.

    ``fn`` maps an :class:`~repro.engine.expressions.Expression` to a
    replacement expression (see
    :func:`repro.engine.expressions.transform_expression`).  Used by the
    database to materialize uncorrelated ``IN (SELECT ...)`` subqueries.
    """
    children = [map_expressions(c, fn) for c in node.children()]
    if children:
        node = node.with_children(children)
    if isinstance(node, Filter):
        return replace(node, predicate=fn(node.predicate))
    if isinstance(node, Project):
        return replace(
            node, expressions=tuple(fn(e) for e in node.expressions)
        )
    if isinstance(node, Join) and node.condition is not None:
        return replace(node, condition=fn(node.condition))
    if isinstance(node, Aggregate):
        return replace(
            node,
            group_by=tuple(fn(g) for g in node.group_by),
            aggregates=tuple(
                AggregateSpec(
                    a.func,
                    None if a.argument is None else fn(a.argument),
                    a.alias,
                    a.distinct,
                )
                for a in node.aggregates
            ),
        )
    if isinstance(node, OrderBy):
        return replace(node, keys=tuple(fn(k) for k in node.keys))
    return node


def walk(node: PlanNode):
    """Yield every node of the plan in depth-first pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def node_label(node: PlanNode) -> str:
    """A short, stable label for one node, used as a metric/trace key.

    Scans carry their table (so ``engine.operator.rows{op=Scan(person)}``
    separates per-relation flow) and joins their strategy-relevant kind;
    everything else is just the class name.  Labels must be stable across
    runs and backends — no ids, no memory addresses.
    """
    if isinstance(node, Scan):
        return f"Scan({node.effective_name})"
    if isinstance(node, Join):
        return f"Join({node.how})"
    return type(node).__name__


def plan_signature(node: PlanNode) -> str:
    """A one-line structural rendering, e.g. ``Project(Filter(Scan(t)))``.

    Attached to ``engine.execute`` tracing spans so a trace identifies
    *which* plan a timing belongs to without the multi-line summary.
    """
    children = node.children()
    if not children:
        return node_label(node)
    inner = ",".join(plan_signature(c) for c in children)
    return f"{node_label(node)}({inner})"


def plan_summary(node: PlanNode, indent: int = 0) -> str:
    """A human-readable indented rendering of the plan tree."""
    pad = "  " * indent
    if isinstance(node, Scan):
        line = f"{pad}Scan({node.table}"
        if node.alias:
            line += f" as {node.alias}"
        line += ")"
    elif isinstance(node, Filter):
        line = f"{pad}Filter({node.predicate!r})"
    elif isinstance(node, Project):
        line = f"{pad}Project({', '.join(node.aliases)})"
    elif isinstance(node, Join):
        cond = repr(node.condition) if node.condition is not None else "cross"
        line = f"{pad}Join[{node.how}]({cond})"
    elif isinstance(node, Aggregate):
        aggs = ", ".join(a.alias for a in node.aggregates)
        line = f"{pad}Aggregate(group={list(node.group_aliases)}, aggs=[{aggs}])"
    else:
        line = f"{pad}{type(node).__name__}"
    parts = [line]
    for child in node.children():
        parts.append(plan_summary(child, indent + 1))
    return "\n".join(parts)
