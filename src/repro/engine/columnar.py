"""Columnar (batch-at-a-time) values for the relational engine.

The row executor evaluates expressions one ``dict`` row at a time; the
columnar mode introduced here evaluates them over whole columns at once:
a :class:`ColumnVector` pairs a NumPy array of values with a boolean
*validity mask* (``False`` marks SQL ``NULL``), and a
:class:`ColumnBatch` is an ordered set of equal-length vectors — one
relation's worth of tuples.

The contract with the row engine is *byte identity*: converting a batch
back to rows must produce exactly the values the row-at-a-time
interpreter would have produced, ``None`` placement, Python types and
float bit patterns included.  That drives several representation rules:

* ``int`` columns use ``int64`` only while every magnitude stays within
  2**53 (exactly representable as ``float64``); beyond that, mixed
  int/float arithmetic and comparisons would round where Python computes
  exactly, so such columns fall back to ``object`` dtype.
* Mixed-type columns (``int`` with ``float``, ``bool`` with ``int``,
  strings, …) stay ``object`` dtype holding the original Python values.
* Vectorized operators replicate the row engine's null semantics
  (null-safe arithmetic/comparison, three-valued AND/OR) and its error
  behaviour (``ZeroDivisionError`` on any evaluated division by zero,
  ``math domain error`` for ``sqrt``/``log`` out of domain).

Anything a vectorized operator cannot replicate exactly is simply not
vectorized — the executor (:class:`repro.engine.operators
.ColumnarExecutor`) falls back to row mode for that plan node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import QueryError

__all__ = [
    "ColumnVector",
    "ColumnBatch",
    "vector_from_values",
    "vector_from_typed",
    "vector_from_scalar",
    "all_null",
    "concat_vectors",
    "keep_mask",
]

#: Largest integer magnitude an ``int64`` column may hold (see module
#: docstring); also the bound under which ``float64`` round-trips ints.
EXACT_INT_BOUND = 2 ** 53

#: Overflow guard for int64 arithmetic: operand magnitudes whose sum or
#: product exceeds this bound route through exact Python integers.
_INT64_SAFE = 2 ** 62

_FILLER = {"bool": False, "int": 0, "float": 0.0}

_NUMERIC_KINDS = ("bool", "int", "float")


class ColumnVector:
    """One column of values plus a validity mask.

    ``kind`` is ``"bool"``, ``"int"``, ``"float"`` or ``"object"``.
    Invariants: numeric/boolean vectors hold a neutral filler (``0``,
    ``0.0``, ``False``) at invalid slots; object vectors hold ``None``
    there and the original Python objects elsewhere.
    """

    __slots__ = ("kind", "values", "valid")

    def __init__(self, kind: str, values: np.ndarray, valid: np.ndarray) -> None:
        self.kind = kind
        self.values = values
        self.valid = valid

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __repr__(self) -> str:
        return f"ColumnVector({self.kind}, n={len(self)})"

    def take(self, indexer: np.ndarray) -> "ColumnVector":
        """Select rows by boolean mask or integer index array."""
        return ColumnVector(
            self.kind, self.values[indexer], self.valid[indexer]
        )

    def to_pylist(self) -> List[Any]:
        """The column as Python scalars, ``None`` at invalid slots.

        ``ndarray.tolist`` converts ``int64``/``float64``/``bool_`` to
        the exact native Python values, which is what makes batch output
        byte-identical to row output.
        """
        if self.kind == "object":
            return list(self.values)
        values = self.values.tolist()
        if bool(self.valid.all()):
            return values
        return [
            v if ok else None
            for v, ok in zip(values, self.valid.tolist())
        ]


def all_null(n: int) -> "ColumnVector":
    """A length-``n`` all-NULL vector."""
    return ColumnVector(
        "object", np.empty(n, dtype=object), np.zeros(n, dtype=bool)
    )


def _object_vector(values: Sequence[Any]) -> ColumnVector:
    n = len(values)
    arr = np.empty(n, dtype=object)
    arr[:] = values
    # ``in`` scans by identity first, so the common all-present case is
    # a C-speed pass with no per-element Python comparisons.
    if None in values:
        valid = np.array([v is not None for v in values], dtype=bool)
    else:
        valid = np.ones(n, dtype=bool)
    return ColumnVector("object", arr, valid)


def _classify(value: Any) -> str:
    if isinstance(value, (bool, np.bool_)):
        return "bool"
    if isinstance(value, (int, np.integer)):
        return "int"
    if isinstance(value, (float, np.floating)):
        return "float"
    return "object"


def vector_from_values(values: Sequence[Any]) -> ColumnVector:
    """Build a vector from arbitrary Python values, inferring the kind.

    Only *homogeneous* bool/int/float columns take the packed NumPy
    representations; anything mixed keeps the original objects so the
    round-trip back to rows is lossless.
    """
    n = len(values)
    kinds = set()
    for v in values:
        if v is None:
            continue
        kind = _classify(v)
        kinds.add(kind)
        if kind == "object" or len(kinds) > 1:
            return _object_vector(values)
    if not kinds:
        return all_null(n)
    kind = kinds.pop()
    if kind == "int" and any(
        v is not None and not -EXACT_INT_BOUND <= v <= EXACT_INT_BOUND
        for v in values
    ):
        return _object_vector(values)
    return vector_from_typed(
        values, {"bool": bool, "int": int, "float": float}[kind]
    )


def vector_from_typed(values: Sequence[Any], dtype: type) -> ColumnVector:
    """Build a vector for a schema-typed column (``None`` allowed).

    ``dtype`` is one of the engine's column types (``int``, ``float``,
    ``bool``, ``str``); values are assumed already coerced.
    """
    n = len(values)
    if dtype is str:
        return _object_vector(values)
    has_null = None in values
    if has_null:
        valid = np.array([v is not None for v in values], dtype=bool)
    else:
        valid = np.ones(n, dtype=bool)
    if dtype is bool:
        if has_null:
            filled = np.array(
                [v is not None and bool(v) for v in values], dtype=bool
            )
        else:
            filled = np.array(values, dtype=bool)
        return ColumnVector("bool", filled, valid)
    if dtype is int:
        try:
            if has_null:
                filled = np.array(
                    [0 if v is None else v for v in values], dtype=np.int64
                )
            else:
                filled = np.array(values, dtype=np.int64)
        except OverflowError:
            return _object_vector(values)
        if n and (
            int(filled.max()) > EXACT_INT_BOUND
            or int(filled.min()) < -EXACT_INT_BOUND
        ):
            return _object_vector(values)
        return ColumnVector("int", filled, valid)
    if dtype is float:
        if has_null:
            filled = np.array(
                [0.0 if v is None else v for v in values], dtype=np.float64
            )
        else:
            filled = np.array(values, dtype=np.float64)
        return ColumnVector("float", filled, valid)
    return _object_vector(values)


def vector_from_scalar(value: Any, n: int) -> ColumnVector:
    """Broadcast one literal value to a length-``n`` vector."""
    if value is None:
        return all_null(n)
    kind = _classify(value)
    if kind == "int" and not -EXACT_INT_BOUND <= value <= EXACT_INT_BOUND:
        kind = "object"
    valid = np.ones(n, dtype=bool)
    if kind == "bool":
        return ColumnVector("bool", np.full(n, bool(value)), valid)
    if kind == "int":
        return ColumnVector(
            "int", np.full(n, int(value), dtype=np.int64), valid
        )
    if kind == "float":
        return ColumnVector(
            "float", np.full(n, float(value), dtype=np.float64), valid
        )
    arr = np.empty(n, dtype=object)
    arr.fill(value)
    return ColumnVector("object", arr, valid)


def concat_vectors(vectors: Sequence[ColumnVector]) -> ColumnVector:
    """Concatenate vectors, promoting kinds as a single batch would.

    Mixed kinds (e.g. an int morsel followed by an all-null morsel) are
    merged through the Python-value path, so the result's kind is exactly
    what ``vector_from_values`` would infer over the combined values —
    identical to never having split the batch.  An empty input yields an
    empty all-null vector (the zero-batch concatenation identity).
    """
    if not vectors:
        return all_null(0)
    kinds = {v.kind for v in vectors}
    if len(kinds) == 1 and "object" not in kinds:
        return ColumnVector(
            vectors[0].kind,
            np.concatenate([v.values for v in vectors]),
            np.concatenate([v.valid for v in vectors]),
        )
    merged: List[Any] = []
    for v in vectors:
        merged.extend(v.to_pylist())
    return vector_from_values(merged)


def keep_mask(vec: ColumnVector) -> np.ndarray:
    """Row-keeping mask replicating the executor's ``is True`` filter.

    The row engine keeps a row only when the predicate evaluates to the
    literal ``True`` — truthy non-booleans (``1``, ``"x"``) are dropped.
    """
    if vec.kind == "bool":
        return vec.valid & vec.values
    if vec.kind == "object":
        n = len(vec)
        return np.fromiter(
            (v is True for v in vec.values), dtype=bool, count=n
        )
    return np.zeros(len(vec), dtype=bool)


# ---------------------------------------------------------------------------
# Vectorized scalar operators
# ---------------------------------------------------------------------------


def _elementwise(
    fn: Callable[..., Any], *vectors: ColumnVector
) -> ColumnVector:
    """Evaluate ``fn`` per element over Python values (exact fallback).

    ``fn`` is the row engine's own (null-safe) scalar function, so this
    path is row-identical by construction — it is the escape hatch for
    object-dtype operands and precision edge cases.
    """
    columns = [v.to_pylist() for v in vectors]
    return vector_from_values([fn(*items) for items in zip(*columns)])


def _as_numeric(vec: ColumnVector) -> np.ndarray:
    """A vector's packed values with bools widened to int64.

    Python treats ``True`` as ``1`` in arithmetic while NumPy's ``bool_``
    arithmetic saturates (``True + True == True``), so booleans must be
    widened before any arithmetic.
    """
    if vec.kind == "bool":
        return vec.values.astype(np.int64)
    return vec.values


def _int_magnitude(values: np.ndarray) -> int:
    if values.size == 0:
        return 0
    return int(np.abs(values).max())


def arith(
    op: str, fallback: Callable[[Any, Any], Any],
    a: ColumnVector, b: ColumnVector,
) -> ColumnVector:
    """Null-safe vectorized ``+ - * / %`` matching Python semantics."""
    if a.kind == "object" or b.kind == "object":
        return _elementwise(fallback, a, b)
    valid = a.valid & b.valid
    av = _as_numeric(a)
    bv = _as_numeric(b)
    any_float = a.kind == "float" or b.kind == "float"
    if op == "/":
        if bool(np.any(valid & (bv == 0))):
            raise ZeroDivisionError("division by zero")
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.true_divide(av, bv)
        return ColumnVector("float", np.where(valid, out, 0.0), valid)
    if op == "%":
        if bool(np.any(valid & (bv == 0))):
            raise ZeroDivisionError("integer division or modulo by zero")
        out = np.remainder(av, bv)
        if any_float:
            return ColumnVector("float", np.where(valid, out, 0.0), valid)
        return ColumnVector("int", np.where(valid, out, 0), valid)
    # + - *
    if not any_float:
        ma, mb = _int_magnitude(av), _int_magnitude(bv)
        too_big = (
            ma * mb > _INT64_SAFE if op == "*" else ma + mb > _INT64_SAFE
        )
        if too_big:
            # Exact arbitrary-precision integers, like the row engine.
            return _elementwise(fallback, a, b)
    fn = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
    out = fn(av, bv)
    kind = "float" if any_float else "int"
    return ColumnVector(kind, np.where(valid, out, _FILLER[kind]), valid)


_COMPARE_FN = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def compare(
    op: str, fallback: Callable[[Any, Any], Any],
    a: ColumnVector, b: ColumnVector,
) -> ColumnVector:
    """Null-safe vectorized comparison."""
    if a.kind == "object" or b.kind == "object":
        return _elementwise(fallback, a, b)
    # int64 values beyond 2**53 cannot be promoted to float64 exactly;
    # Python compares int-to-float exactly, so route through objects.
    for x, y in ((a, b), (b, a)):
        if (
            x.kind == "int"
            and y.kind == "float"
            and _int_magnitude(x.values) > EXACT_INT_BOUND
        ):
            return _elementwise(fallback, a, b)
    valid = a.valid & b.valid
    out = _COMPARE_FN[op](a.values, b.values)
    return ColumnVector("bool", np.where(valid, out, False), valid)


def _is_literally(vec: ColumnVector, which: bool) -> np.ndarray:
    """Per-element ``value is True`` / ``value is False`` (row semantics).

    Only genuine booleans are identical to the singletons — ``0``/``1``
    are not, which the three-valued AND/OR below relies on.
    """
    if vec.kind == "bool":
        return vec.valid & (vec.values if which else ~vec.values)
    if vec.kind == "object":
        n = len(vec)
        target = which
        return np.fromiter(
            (v is target for v in vec.values), dtype=bool, count=n
        )
    return np.zeros(len(vec), dtype=bool)


def _truthy(vec: ColumnVector) -> np.ndarray:
    """Per-element ``bool(value)`` over valid slots (filler slots False)."""
    if vec.kind == "bool":
        return vec.values & vec.valid
    if vec.kind == "object":
        n = len(vec)
        return np.fromiter(
            (v is not None and bool(v) for v in vec.values),
            dtype=bool,
            count=n,
        )
    return (vec.values != 0) & vec.valid


def logical_and(a: ColumnVector, b: ColumnVector) -> ColumnVector:
    """SQL three-valued AND, replicating ``_sql_and`` exactly."""
    false_out = _is_literally(a, False) | _is_literally(b, False)
    null_out = ~false_out & (~a.valid | ~b.valid)
    values = ~false_out & ~null_out & _truthy(a) & _truthy(b)
    return ColumnVector("bool", values, ~null_out)


def logical_or(a: ColumnVector, b: ColumnVector) -> ColumnVector:
    """SQL three-valued OR, replicating ``_sql_or`` exactly."""
    true_out = _is_literally(a, True) | _is_literally(b, True)
    null_out = ~true_out & (~a.valid | ~b.valid)
    values = true_out | (~null_out & (_truthy(a) | _truthy(b)))
    return ColumnVector("bool", values, ~null_out)


def logical_not(a: ColumnVector) -> ColumnVector:
    """Null-safe ``not value`` (``not 5 == False``, like the row engine)."""
    if a.kind == "object":
        return _elementwise(
            lambda v: None if v is None else not v, a
        )
    if a.kind == "bool":
        return ColumnVector("bool", np.where(a.valid, ~a.values, False), a.valid)
    return ColumnVector("bool", np.where(a.valid, a.values == 0, False), a.valid)


def negate(a: ColumnVector) -> ColumnVector:
    """Null-safe unary minus."""
    if a.kind == "object":
        return _elementwise(lambda v: None if v is None else -v, a)
    if a.kind == "bool":
        # Python: -True == -1 (an int).
        return ColumnVector(
            "int", np.where(a.valid, -a.values.astype(np.int64), 0), a.valid
        )
    return ColumnVector(
        a.kind, np.where(a.valid, -a.values, _FILLER[a.kind]), a.valid
    )


def is_null(a: ColumnVector, negated: bool) -> ColumnVector:
    """``IS [NOT] NULL`` — always a valid boolean, even on NULL input."""
    values = a.valid.copy() if negated else ~a.valid
    return ColumnVector("bool", values, np.ones(len(a), dtype=bool))


def in_list(a: ColumnVector, values: Sequence[Any], value_set: set) -> ColumnVector:
    """Null-safe ``x IN (...)`` membership."""
    if a.kind == "object":
        return _elementwise(
            lambda v: None if v is None else v in value_set, a
        )
    members = [
        m for m in values if isinstance(m, (int, float)) and m == m
    ]
    if not members:
        out = np.zeros(len(a), dtype=bool)
    else:
        out = np.isin(a.values, np.asarray(members))
    return ColumnVector("bool", np.where(a.valid, out, False), a.valid)


def call_function(
    name: str, fallback: Callable[..., Any], args: Sequence[ColumnVector]
) -> ColumnVector:
    """Vectorized scalar functions: ``abs``, ``sqrt``, ``exp``, ``log``.

    Each replicates the corresponding :mod:`math` builtin including its
    error behaviour; every other engine function is non-vectorizable and
    handled by the executor's row fallback.
    """
    (a,) = args
    if a.kind == "object":
        return _elementwise(
            lambda v: None if v is None else fallback(v), a
        )
    valid = a.valid
    if name == "abs":
        if a.kind == "float":
            return ColumnVector("float", np.abs(a.values), valid)
        return ColumnVector(
            "int", np.abs(_as_numeric(a)), valid
        )
    x = a.values.astype(np.float64)
    if name == "sqrt":
        if bool(np.any(valid & (x < 0))):
            raise ValueError("math domain error")
        out = np.sqrt(np.where(valid, x, 0.0))
        return ColumnVector("float", out, valid)
    if name == "log":
        if bool(np.any(valid & (x <= 0))):
            raise ValueError("math domain error")
        out = np.log(np.where(valid, x, 1.0))
        return ColumnVector("float", out, valid)
    if name == "exp":
        with np.errstate(over="ignore"):
            out = np.exp(np.where(valid, x, 0.0))
        if bool(np.any(valid & np.isinf(out) & np.isfinite(x))):
            raise OverflowError("math range error")
        return ColumnVector("float", out, valid)
    raise QueryError(f"function {name!r} is not vectorized")


# ---------------------------------------------------------------------------
# Batches
# ---------------------------------------------------------------------------


class ColumnBatch:
    """An ordered set of equal-length column vectors (one relation)."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, ColumnVector], length: int) -> None:
        self.columns = columns
        self.length = length

    @property
    def names(self) -> List[str]:
        """Column names in output order."""
        return list(self.columns)

    @classmethod
    def from_table(cls, table: Any, alias: Optional[str] = None) -> "ColumnBatch":
        """Build a batch from a base table, using its schema's types."""
        prefix = f"{alias}." if alias else ""
        rows = table.rows
        columns: Dict[str, ColumnVector] = {}
        for column in table.schema.columns:
            values = [row[column.name] for row in rows]
            columns[f"{prefix}{column.name}"] = vector_from_typed(
                values, column.dtype
            )
        return cls(columns, len(rows))

    @classmethod
    def from_rows(
        cls, rows: Sequence[Dict[str, Any]], names: Optional[Sequence[str]] = None
    ) -> "ColumnBatch":
        """Build a batch from row dicts (``names`` types an empty input)."""
        if names is None:
            names = list(rows[0]) if rows else []
        columns = {
            name: vector_from_values([row[name] for row in rows])
            for name in names
        }
        return cls(columns, len(rows))

    def resolve(self, name: str) -> ColumnVector:
        """Resolve a column with SQL-style suffix matching.

        Mirrors :func:`repro.engine.expressions.resolve_column`: exact
        key, then unique ``*.name`` suffix, then — for a qualified name
        over unqualified columns — the bare tail.
        """
        if name in self.columns:
            return self.columns[name]
        suffix = "." + name
        matches = [k for k in self.columns if k.endswith(suffix)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        if len(matches) > 1:
            raise QueryError(
                f"ambiguous column {name!r}: matches {sorted(matches)}"
            )
        if "." in name and not any("." in key for key in self.columns):
            tail = name.rsplit(".", 1)[1]
            if tail in self.columns:
                return self.columns[tail]
        raise QueryError(
            f"unknown column {name!r}; row has {sorted(self.columns)}"
        )

    def take(self, indexer: np.ndarray) -> "ColumnBatch":
        """Select rows by boolean mask or integer index array."""
        columns = {
            name: vec.take(indexer) for name, vec in self.columns.items()
        }
        length = next(iter(columns.values())).__len__() if columns else (
            int(np.count_nonzero(indexer))
            if indexer.dtype == np.bool_
            else len(indexer)
        )
        return ColumnBatch(columns, length)

    def to_rows(self) -> List[Dict[str, Any]]:
        """Materialize row dicts byte-identical to the row engine's."""
        names = self.names
        lists = [self.columns[name].to_pylist() for name in names]
        return [
            dict(zip(names, cells)) for cells in zip(*lists)
        ] if names else [{} for _ in range(self.length)]
