"""Fused expression pipelines over column batches.

PR 5's columnar executor evaluates one plan node at a time and
materializes every intermediate batch.  This module compiles a
*vectorizable chain* — consecutive ``Filter``/``Project`` nodes over a
single source — into one :class:`FusedPipeline`: a picklable callable
that runs every stage back-to-back over a single morsel, so
intermediates live only as long as the next stage needs them and the
whole chain ships to a :mod:`repro.parallel` worker as one task.

Fusion is pure closure composition over
:func:`repro.engine.expressions.evaluate_batch` — no new dependency, no
code generation.  Because each stage *is* ``evaluate_batch``, a fused
pipeline inherits the columnar layer's exactness contract (values,
``None`` placement, float bit patterns) and its error behaviour: a
non-vectorizable expression smuggled into a stage raises the very same
``QueryError`` message that unfused batch evaluation raises, which the
tests pin as "fused-vs-unfused error parity".

The executor-facing helpers are :func:`chain_stages` (detect the
longest fusible chain under a node), :func:`limit_chain` (the stricter
shape the vectorized LIMIT path accepts), :func:`compile_stages`, and
:func:`prune_columns` (drop source columns the chain never references
before pickling morsels to workers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import plan as lp
from repro.engine.columnar import (
    ColumnBatch,
    ColumnVector,
    keep_mask,
)
from repro.engine.expressions import (
    Expression,
    evaluate_batch,
    is_vectorizable,
)

__all__ = [
    "FilterStage",
    "ProjectStage",
    "EvalStage",
    "FusedPipeline",
    "chain_stages",
    "limit_chain",
    "compile_stages",
    "prune_columns",
]


class FilterStage:
    """Apply one vectorized predicate and keep the passing rows."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Expression) -> None:
        self.predicate = predicate

    def apply(self, batch: ColumnBatch) -> ColumnBatch:
        return batch.take(self.predicate_mask(batch))

    def predicate_mask(self, batch: ColumnBatch):
        """The boolean keep mask, for callers tracking row positions."""
        return keep_mask(evaluate_batch(self.predicate, batch))

    def __getstate__(self):
        return self.predicate

    def __setstate__(self, state):
        self.predicate = state


class ProjectStage:
    """Compute the projection's output columns from the incoming batch."""

    __slots__ = ("expressions", "aliases")

    def __init__(
        self, expressions: Sequence[Expression], aliases: Sequence[str]
    ) -> None:
        self.expressions = tuple(expressions)
        self.aliases = tuple(aliases)

    def apply(self, batch: ColumnBatch) -> ColumnBatch:
        columns = {
            alias: evaluate_batch(expr, batch)
            for alias, expr in zip(self.aliases, self.expressions)
        }
        return ColumnBatch(columns, batch.length)

    def __getstate__(self):
        return (self.expressions, self.aliases)

    def __setstate__(self, state):
        self.expressions, self.aliases = state


class EvalStage:
    """Evaluate expressions into named vectors (aggregate inputs).

    The fused aggregate path evaluates group-by keys and aggregate
    arguments *per morsel* and ships only the resulting vectors back to
    the driver, which runs the (order-sensitive, hence serial)
    accumulation over the morsel-order concatenation.  Synthetic names
    keep the stage independent of user aliases.
    """

    __slots__ = ("expressions", "names")

    def __init__(
        self, expressions: Sequence[Expression], names: Sequence[str]
    ) -> None:
        self.expressions = tuple(expressions)
        self.names = tuple(names)

    def apply(self, batch: ColumnBatch) -> ColumnBatch:
        columns = {
            name: evaluate_batch(expr, batch)
            for name, expr in zip(self.names, self.expressions)
        }
        return ColumnBatch(columns, batch.length)

    def __getstate__(self):
        return (self.expressions, self.names)

    def __setstate__(self, state):
        self.expressions, self.names = state


class FusedPipeline:
    """A compiled chain of stages applied to one morsel in one task.

    Calling the pipeline returns ``(batch, counts)`` where ``counts[i]``
    is the row count *after* stage ``i`` — exactly the per-operator row
    flow the observability layer reports, so the driver can reconstruct
    serial-identical ``engine.operator.rows`` totals by summing counts
    over morsels in any order.
    """

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[object]) -> None:
        self.stages = tuple(stages)

    def __call__(
        self, batch: ColumnBatch
    ) -> Tuple[ColumnBatch, Tuple[int, ...]]:
        counts: List[int] = []
        for stage in self.stages:
            batch = stage.apply(batch)
            counts.append(batch.length)
        return batch, tuple(counts)

    def __getstate__(self):
        return self.stages

    def __setstate__(self, state):
        self.stages = state


def _is_stage(node: lp.PlanNode) -> bool:
    if isinstance(node, lp.Filter):
        return is_vectorizable(node.predicate)
    if isinstance(node, lp.Project):
        return all(is_vectorizable(e) for e in node.expressions)
    return False


def chain_stages(
    node: lp.PlanNode,
) -> Optional[Tuple[lp.PlanNode, List[lp.PlanNode]]]:
    """The longest fusible ``Filter``/``Project`` chain rooted at ``node``.

    Returns ``(source, stages)`` with ``stages`` ordered source-to-top
    (execution order), or ``None`` when ``node`` itself is not a
    vectorizable stage.  The source may be *any* plan node — the morsel
    executor materializes it through the normal batch/row machinery and
    only the chain above it is fused.
    """
    stages: List[lp.PlanNode] = []
    current = node
    while _is_stage(current):
        stages.append(current)
        current = current.children()[0]
    if not stages:
        return None
    stages.reverse()
    return current, stages


def _uniform_values(node: lp.PlanNode) -> bool:
    if not isinstance(node, lp.Values):
        return False
    rows = node.rows
    return not rows or all(tuple(r) == tuple(rows[0]) for r in rows)


def limit_chain(
    node: lp.PlanNode,
) -> Optional[Tuple[lp.PlanNode, List[lp.PlanNode]]]:
    """The shape the vectorized LIMIT path accepts, or ``None``.

    A ``Limit`` qualifies only when its child is a fusible chain (or
    nothing at all) over a ``Scan`` or uniform ``Values`` source: those
    sources have no side metrics of their own, so the row engine's exact
    short-circuit accounting (how many rows each operator yielded before
    the limit stopped pulling) can be reconstructed from keep masks.
    Anything else — a join below the limit, a non-vectorizable
    predicate — keeps the whole plan in row mode, as before this
    optimization.
    """
    if not isinstance(node, lp.Limit):
        return None
    found = chain_stages(node.child)
    source, stages = found if found is not None else (node.child, [])
    if isinstance(source, lp.Scan) or _uniform_values(source):
        return source, stages
    return None


def compile_stages(stage_nodes: Sequence[lp.PlanNode]) -> List[object]:
    """Compile plan-node stages into their executable stage objects."""
    stages: List[object] = []
    for node in stage_nodes:
        if isinstance(node, lp.Filter):
            stages.append(FilterStage(node.predicate))
        elif isinstance(node, lp.Project):
            stages.append(ProjectStage(node.expressions, node.aliases))
        else:  # pragma: no cover - guarded by chain_stages
            raise TypeError(f"not a fusible stage: {type(node).__name__}")
    return stages


def _resolve_key(columns: Dict[str, ColumnVector], name: str) -> Optional[str]:
    """The batch key ``name`` resolves to, mirroring ``ColumnBatch.resolve``.

    Returns ``None`` when resolution would fail or be ambiguous — the
    caller must then skip pruning entirely, because evaluation against
    the pruned batch could resolve differently (or error differently)
    than against the full batch.
    """
    if name in columns:
        return name
    suffix = "." + name
    matches = [k for k in columns if k.endswith(suffix)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        return None
    if "." in name and not any("." in key for key in columns):
        tail = name.rsplit(".", 1)[1]
        if tail in columns:
            return tail
    return None


def prune_columns(
    batch: ColumnBatch,
    stage_nodes: Sequence[lp.PlanNode],
    extra_exprs: Sequence[Expression] = (),
) -> ColumnBatch:
    """Drop source columns the fused chain never reads.

    Morsels cross a process boundary on the process backend, so unused
    source columns are pure pickling overhead.  Pruning is applied only
    when it provably cannot change results:

    * the chain's output is fully determined by expressions (it contains
      a ``Project``, or ends in an :class:`EvalStage` via
      ``extra_exprs``) — a filter-only chain outputs *all* source
      columns and is never pruned;
    * every referenced name resolves uniquely against the **full**
      column set.  Keeping exactly the resolved targets preserves each
      reference's resolution (removing columns cannot create new suffix
      matches), so evaluation over the pruned batch is identical.
    """
    referenced: set = set()
    saw_project = False
    for node in stage_nodes:
        if isinstance(node, lp.Filter):
            referenced |= node.predicate.columns()
        else:
            for expr in node.expressions:
                referenced |= expr.columns()
            saw_project = True
            # Stages above the first projection reference its aliases,
            # not source columns.
            break
    if not saw_project:
        if not extra_exprs:
            return batch
        for expr in extra_exprs:
            referenced |= expr.columns()
    keep: set = set()
    for name in referenced:
        key = _resolve_key(batch.columns, name)
        if key is None:
            return batch
        keep.add(key)
    if len(keep) == len(batch.columns):
        return batch
    columns = {
        name: vec for name, vec in batch.columns.items() if name in keep
    }
    return ColumnBatch(columns, batch.length)
