"""Morsel-parallel columnar execution.

:class:`MorselExecutor` extends the batch-at-a-time
:class:`~repro.engine.operators.ColumnarExecutor` with morsel
parallelism: the source batch of a fusible ``Filter``/``Project`` chain
is split into fixed-size *morsels* (zero-copy NumPy slices), each morsel
runs the whole fused pipeline (:mod:`repro.engine.fusion`) as one task
on a :mod:`repro.parallel` backend, and the results are merged back **in
morsel order** — so values, row order, :class:`ExecutionMetrics` and the
deterministic ``values`` section of an obs snapshot are byte-identical
to serial columnar execution and to the row interpreter, on every
backend.

Determinism argument, in brief (see DESIGN.md for the full version):

* every fused stage is elementwise or row-local, so evaluating a morsel
  is exactly evaluating those rows within the full batch — splitting
  then concatenating in morsel order reproduces the full-batch result
  row for row;
* anything order-sensitive (group accumulation, whose float additions
  are non-associative) is **not** distributed: morsels only evaluate the
  group keys and aggregate arguments, and the driver runs the serial
  accumulation over the morsel-order concatenation, which is the same
  value sequence the serial executor feeds it;
* workers execute under ``repro.obs.suppressed()`` and the driver maps
  with ``quiet=True``, so no ``parallel.*`` metric leaks into the
  snapshot; per-operator counters are recomputed at the driver from the
  per-morsel row counts, which sum to the serial totals.

The knob: ``REPRO_ENGINE_MORSEL=<size>`` enables the executor globally,
``db.sql(..., morsel_size=...)`` / ``Query.run(morsel_size=...)`` per
query.  When unset, plans run through the unchanged PR 5 executors with
zero added work beyond one environment-variable read.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import plan as lp
from repro.engine.columnar import ColumnBatch, ColumnVector, concat_vectors
from repro.engine.expressions import evaluate_batch
from repro.engine.fusion import (
    EvalStage,
    FusedPipeline,
    chain_stages,
    compile_stages,
    limit_chain,
    prune_columns,
)
from repro.engine.operators import (
    ColumnarExecutor,
    ExecutionMetrics,
    TableProvider,
    _concat_batches,
)
from repro.engine.table import Table
from repro.errors import QueryError
from repro.obs import get_observer
from repro.parallel.backend import Backend, get_backend

__all__ = [
    "MORSEL_ENV_VAR",
    "MORSEL_SCOPE",
    "DEFAULT_MORSEL_SIZE",
    "MorselExecutor",
    "resolve_morsel_size",
    "split_batch",
]

#: Environment knob enabling morsel execution for every query that does
#: not pass an explicit ``morsel_size=`` argument.
MORSEL_ENV_VAR = "REPRO_ENGINE_MORSEL"

#: Fault-plan scope tag for morsel fan-outs (``FaultPlan`` targeting).
MORSEL_SCOPE = "engine.morsel"

#: Morsel size when the executor is constructed directly without one.
DEFAULT_MORSEL_SIZE = 4096


def resolve_morsel_size(requested: Optional[int] = None) -> Optional[int]:
    """Resolve the effective morsel size, or ``None`` when disabled.

    Precedence: explicit ``requested`` argument, then the
    ``REPRO_ENGINE_MORSEL`` environment variable; with neither, morsel
    execution is off and the legacy executors run untouched.
    """
    if requested is None:
        raw = os.environ.get(MORSEL_ENV_VAR, "").strip()
        if not raw:
            return None
        try:
            requested = int(raw)
        except ValueError:
            raise QueryError(
                f"{MORSEL_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    size = int(requested)
    if size < 1:
        raise QueryError(f"morsel size must be >= 1, got {size}")
    return size


def _slice_vector(vec: ColumnVector, lo: int, hi: int) -> ColumnVector:
    # NumPy basic slicing returns views: splitting a batch into morsels
    # copies no data (pickling a view for the process backend serializes
    # only the slice's own elements).
    return ColumnVector(vec.kind, vec.values[lo:hi], vec.valid[lo:hi])


def _slice_batch(batch: ColumnBatch, lo: int, hi: int) -> ColumnBatch:
    columns = {
        name: _slice_vector(vec, lo, hi)
        for name, vec in batch.columns.items()
    }
    return ColumnBatch(columns, hi - lo)


def split_batch(batch: ColumnBatch, size: int) -> List[ColumnBatch]:
    """Split a batch into contiguous morsels of at most ``size`` rows.

    A batch of zero rows yields one empty morsel, so pipelines always
    run at least once and empty results keep their column names.
    """
    if size < 1:
        raise QueryError(f"morsel size must be >= 1, got {size}")
    if batch.length <= size:
        return [batch]
    return [
        _slice_batch(batch, lo, min(lo + size, batch.length))
        for lo in range(0, batch.length, size)
    ]


def _apply_pipeline(payload: Tuple[FusedPipeline, ColumnBatch]):
    """Worker task: run one fused pipeline over one morsel."""
    pipeline, morsel = payload
    return pipeline(morsel)


# -- scan-batch cache -------------------------------------------------------

#: table -> (version, row count, unaliased batch).  The morsel path runs
#: many queries against the same tables (ensemble sweeps, benchmarks),
#: and ``ColumnBatch.from_table`` — a per-row Python conversion — was
#: measured at >80% of the columnar hot path.  The cache is keyed on
#: ``Table.version`` (bumped by every mutating method) plus the row
#: count as a cheap guard against direct ``Table.rows`` edits.  It is
#: deliberately confined to the morsel executor so the plain columnar
#: executor stays the unmodified PR 5 baseline.
_SCAN_CACHE: "weakref.WeakKeyDictionary[Table, Tuple[int, int, ColumnBatch]]"
_SCAN_CACHE = weakref.WeakKeyDictionary()


def _table_batch(table: Table, alias: Optional[str]) -> ColumnBatch:
    entry = _SCAN_CACHE.get(table)
    if (
        entry is not None
        and entry[0] == table.version
        and entry[1] == len(table)
    ):
        base = entry[2]
    else:
        base = ColumnBatch.from_table(table)
        _SCAN_CACHE[table] = (table.version, len(table), base)
    if alias is None:
        # Hand out a fresh mapping; vectors are shared (never mutated).
        return ColumnBatch(dict(base.columns), base.length)
    return ColumnBatch(
        {f"{alias}.{name}": vec for name, vec in base.columns.items()},
        base.length,
    )


class MorselExecutor(ColumnarExecutor):
    """Columnar executor with fused, morsel-parallel chains.

    Inherits every per-node handler (and the row fallback) from
    :class:`ColumnarExecutor`; on top of that it intercepts three plan
    shapes:

    * a fusible ``Filter``/``Project`` chain — fused into one pipeline
      and fanned out over morsels via ``Backend.map``;
    * a batchable ``Aggregate`` over such a chain — the chain plus the
      evaluation of group keys and aggregate arguments runs per morsel,
      then the driver performs the serial accumulation on the
      morsel-order concatenation (float addition is non-associative, so
      partial per-morsel aggregation would break byte identity);
    * ``Limit`` over a chain on a ``Scan``/uniform-``Values`` source —
      evaluated morsel-incrementally with an early stop, reconstructing
      the row engine's exact short-circuit operator counts from the keep
      masks.
    """

    def __init__(
        self,
        provider: TableProvider,
        metrics: Optional[ExecutionMetrics] = None,
        morsel_size: Optional[int] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        super().__init__(provider, metrics)
        resolved = resolve_morsel_size(morsel_size)
        self.morsel_size = (
            resolved if resolved is not None else DEFAULT_MORSEL_SIZE
        )
        self.backend = get_backend(backend)

    # -- dispatch --------------------------------------------------------
    def _batch_handler(self, node: lp.PlanNode):
        if isinstance(node, (lp.Filter, lp.Project)):
            if chain_stages(node) is not None:
                return self._chain_morsel_batch
            return super()._batch_handler(node)
        if isinstance(node, lp.Limit):
            if limit_chain(node) is not None:
                return self._limit_morsel_batch
            return None
        if isinstance(node, lp.Aggregate):
            if super()._batch_handler(node) is not None:
                return self._aggregate_morsel_batch
            return None
        return super()._batch_handler(node)

    # -- shared plumbing -------------------------------------------------
    def _source_batch(self, source: lp.PlanNode) -> ColumnBatch:
        """Materialize a chain's source, with the source's own obs.

        Scans go through the version-keyed table cache and emit their
        operator counter here (the serial executor emits it from
        ``_run_batch``); any other source runs through the normal
        batch/row machinery, which observes itself.
        """
        if isinstance(source, lp.Scan):
            table = self.provider.resolve_table(source.table)
            batch = _table_batch(table, source.alias)
            self.metrics.rows_scanned += batch.length
            observer = get_observer()
            if observer.enabled:
                label = lp.node_label(source)
                observer.counter("engine.operator.rows", op=label).add(
                    batch.length
                )
                observer.timer("engine.operator.seconds", op=label).add(0.0)
            return batch
        return self._child_batch(source)

    def _map_pipeline(
        self, pipeline: FusedPipeline, batch: ColumnBatch
    ) -> List[Tuple[ColumnBatch, Tuple[int, ...]]]:
        morsels = split_batch(batch, self.morsel_size)
        if len(morsels) == 1:
            return [pipeline(morsels[0])]
        return self.backend.map(
            _apply_pipeline,
            [(pipeline, morsel) for morsel in morsels],
            scope=MORSEL_SCOPE,
            quiet=True,
        )

    def _emit_stage_obs(
        self, stage_nodes: Sequence[lp.PlanNode], totals: Sequence[int]
    ) -> None:
        observer = get_observer()
        if not observer.enabled:
            return
        for node, total in zip(stage_nodes, totals):
            label = lp.node_label(node)
            observer.counter("engine.operator.rows", op=label).add(int(total))
            observer.timer("engine.operator.seconds", op=label).add(0.0)

    # -- fused filter/project chain --------------------------------------
    def _chain_morsel_batch(self, node: lp.PlanNode) -> ColumnBatch:
        source, stage_nodes = chain_stages(node)
        src = self._source_batch(source)
        pipeline = FusedPipeline(compile_stages(stage_nodes))
        results = self._map_pipeline(
            pipeline, prune_columns(src, stage_nodes)
        )
        totals = [0] * len(stage_nodes)
        for _, counts in results:
            for i, count in enumerate(counts):
                totals[i] += count
        # The top node's counter comes from the generic _run_batch
        # wrapper (merged length == the serial count); inner stages are
        # emitted here.
        self._emit_stage_obs(stage_nodes[:-1], totals[:-1])
        return _concat_batches([batch for batch, _ in results])

    # -- fused aggregate --------------------------------------------------
    def _aggregate_morsel_batch(self, node: lp.Aggregate) -> ColumnBatch:
        found = chain_stages(node.child)
        source, stage_nodes = (
            found if found is not None else (node.child, [])
        )
        key_names = [f"__key{i}" for i in range(len(node.group_by))]
        arg_names: List[Optional[str]] = []
        eval_exprs = list(node.group_by)
        eval_names = list(key_names)
        for i, spec in enumerate(node.aggregates):
            if spec.argument is None:
                arg_names.append(None)
            else:
                name = f"__arg{i}"
                arg_names.append(name)
                eval_exprs.append(spec.argument)
                eval_names.append(name)
        src = self._source_batch(source)
        stages = compile_stages(stage_nodes)
        stages.append(EvalStage(eval_exprs, eval_names))
        pipeline = FusedPipeline(stages)
        results = self._map_pipeline(
            pipeline, prune_columns(src, stage_nodes, eval_exprs)
        )
        totals = [0] * len(stage_nodes)
        for _, counts in results:
            for i in range(len(stage_nodes)):
                totals[i] += counts[i]
        self._emit_stage_obs(stage_nodes, totals)
        evaluated = [batch for batch, _ in results]
        n = sum(batch.length for batch in evaluated)
        merged = {
            name: concat_vectors([b.columns[name] for b in evaluated])
            for name in eval_names
        }
        key_vecs = [merged[name] for name in key_names]
        arg_vecs = [
            None if name is None else merged[name] for name in arg_names
        ]
        return self._finish_aggregate(node, key_vecs, arg_vecs, n)

    # -- vectorized LIMIT -------------------------------------------------
    def _limit_morsel_batch(self, node: lp.Limit) -> ColumnBatch:
        """Morsel-incremental LIMIT with exact short-circuit accounting.

        The row engine's ``_limit`` pulls ``count`` rows plus one probe
        row from its child before stopping; every operator below it
        therefore reports exactly the rows it yielded up to that point.
        This path replicates those numbers: morsels are evaluated in
        order (serially — fanning out would evaluate past the stopping
        point) while tracking each surviving row's source position, the
        scan stops at the morsel containing the probe row, and the
        per-operator counts are recomputed from positions strictly
        before the stop.  The one documented divergence: evaluation is
        morsel-granular, so expressions may be evaluated for rows
        between the stopping point and the end of that morsel — rows the
        row engine never touches — and an error raised there surfaces.
        """
        source, stage_nodes = limit_chain(node)
        if isinstance(source, lp.Scan):
            table = self.provider.resolve_table(source.table)
            src = _table_batch(table, source.alias)
        else:
            src = ColumnBatch.from_rows([dict(r) for r in source.rows])
        stages = compile_stages(stage_nodes)
        pruned = prune_columns(src, stage_nodes)
        n = src.length
        target = node.count + 1  # the row engine's probe pull
        size = self.morsel_size
        bounds = [
            (lo, min(lo + size, n)) for lo in range(0, n, size)
        ] or [(0, 0)]
        outputs: List[ColumnBatch] = []
        stage_positions: List[List[np.ndarray]] = []
        survivors = 0
        stop = n  # source rows pulled; n when the child is exhausted
        for lo, hi in bounds:
            morsel = _slice_batch(pruned, lo, hi)
            positions = np.arange(lo, hi, dtype=np.int64)
            per_stage: List[np.ndarray] = []
            for stage_node, stage in zip(stage_nodes, stages):
                if isinstance(stage_node, lp.Filter):
                    mask = stage.predicate_mask(morsel)
                    morsel = morsel.take(mask)
                    positions = positions[mask]
                else:
                    morsel = stage.apply(morsel)
                per_stage.append(positions)
            outputs.append(morsel)
            stage_positions.append(per_stage)
            if survivors + len(positions) >= target:
                stop = int(positions[target - survivors - 1]) + 1
                survivors = target
                break
            survivors += len(positions)
        observer = get_observer()
        if observer.enabled:
            label = lp.node_label(source)
            observer.counter("engine.operator.rows", op=label).add(stop)
            observer.timer("engine.operator.seconds", op=label).add(0.0)
            for j, stage_node in enumerate(stage_nodes):
                pulled = sum(
                    int(np.count_nonzero(per_stage[j] < stop))
                    for per_stage in stage_positions
                )
                slabel = lp.node_label(stage_node)
                observer.counter("engine.operator.rows", op=slabel).add(
                    pulled
                )
                observer.timer("engine.operator.seconds", op=slabel).add(0.0)
        if isinstance(source, lp.Scan):
            self.metrics.rows_scanned += stop
        merged = _concat_batches(outputs)
        kept = min(node.count, merged.length)
        return merged.take(np.arange(kept, dtype=np.int64))
