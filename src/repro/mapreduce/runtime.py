"""An in-process MapReduce runtime with faithful phase semantics.

The runtime executes jobs split-by-split and partition-by-partition exactly
as a real cluster would — map tasks see only their split, combiners run per
map task, the shuffle hashes keys to reduce partitions, reducers see values
grouped by key — while counting every record that would cross the network.
This is the substrate on which SimSQL query execution
(:mod:`repro.simsql.mapreduce_exec`), Splash time alignment
(:mod:`repro.harmonize.time_alignment`) and DSGD
(:mod:`repro.harmonize.dsgd`) run.

Map tasks and reduce partitions are independent by construction, so the
cluster fans them out through a :mod:`repro.parallel` backend.  Each task
accumulates its own :class:`JobCounters`; the driver merges them in task
order, so counters (and outputs) are identical whichever backend runs the
job.
"""

from __future__ import annotations

import zlib
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.mapreduce.counters import COUNTER_FIELDS, JobCounters
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.obs import get_observer
from repro.parallel.backend import Backend, get_backend


def _partition_index(key: Any, num_partitions: int) -> int:
    """Deterministic key-to-partition assignment.

    CRC-32 over the key's repr: stable across processes (no hash
    randomization) and a single C-speed pass instead of a per-character
    Python loop.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % num_partitions


def _run_map_task(
    job: MapReduceJob, split: List[KeyValue]
) -> Tuple[List[KeyValue], JobCounters]:
    """One map task: apply the mapper (and local combiner) to one split.

    Module-level (not a method) so the closure pickles for the process
    backend; returns the task's own counters for deterministic merging.
    """
    counters = JobCounters()
    out: List[KeyValue] = []
    for key, value in split:
        for pair in job.mapper(key, value):
            counters.records_mapped += 1
            out.append(pair)
    if job.combiner is None:
        return out, counters
    # Combiner runs locally per map task, on that task's output only.
    grouped: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for key, value in out:
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(value)
    combined: List[KeyValue] = []
    for key in order:
        combined.extend(job.combiner(key, grouped[key]))
    return combined, counters


def _run_reduce_task(
    job: MapReduceJob, partition: List[Tuple[Any, List[Any]]]
) -> Tuple[List[KeyValue], JobCounters]:
    """One reduce task: apply the reducer to one shuffled partition."""
    counters = JobCounters()
    out: List[KeyValue] = []
    for key, values in partition:
        counters.records_reduced += len(values)
        out.extend(job.reducer(key, values))
    return out, counters


class Cluster:
    """A simulated MapReduce cluster.

    Parameters
    ----------
    num_workers:
        Number of map slots; inputs are split round-robin across workers.
    backend:
        Execution backend for map tasks and reduce partitions — a
        :class:`~repro.parallel.backend.Backend`, a backend name, or
        ``None`` to resolve from the ``REPRO_BACKEND`` environment
        variable (default ``serial``).  Outputs and counters are
        identical for every backend.

    Examples
    --------
    >>> from repro.mapreduce.job import MapReduceJob, sum_reducer
    >>> def mapper(_, word):
    ...     yield word, 1
    >>> job = MapReduceJob("wc", mapper, sum_reducer)
    >>> cluster = Cluster(num_workers=2)
    >>> sorted(cluster.run(job, [(None, "a"), (None, "b"), (None, "a")]))
    [('a', 2), ('b', 1)]
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: Union[str, Backend, None] = None,
    ) -> None:
        if num_workers < 1:
            raise SimulationError("cluster needs at least one worker")
        self.num_workers = num_workers
        self.backend = get_backend(backend)
        self.history: List[Tuple[str, JobCounters]] = []

    # -- public API ---------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[KeyValue],
        counters: Optional[JobCounters] = None,
        num_reducers: Optional[int] = None,
    ) -> List[KeyValue]:
        """Execute one job over ``inputs`` and return the reduce output.

        ``num_reducers`` overrides the job's configured reducer count for
        this run only, without mutating the (frozen) job.
        """
        counters = counters if counters is not None else JobCounters()
        if num_reducers is None:
            num_reducers = job.num_reducers
        if num_reducers < 1:
            raise SimulationError("num_reducers must be >= 1")
        observer = get_observer()
        # Callers may hand in pre-loaded counters; only this job's deltas
        # are re-emitted into the metrics registry afterwards.
        baseline = JobCounters().merge(counters)
        with observer.span("mapreduce.job", job=job.name):
            with observer.span("mapreduce.split"):
                splits = self._split(list(inputs), counters)
            map_outputs: List[List[KeyValue]] = []
            with observer.span("mapreduce.map", tasks=len(splits)):
                for task_output, task_counters in self.backend.map(
                    partial(_run_map_task, job), splits
                ):
                    map_outputs.append(task_output)
                    counters.absorb(task_counters)
            with observer.span("mapreduce.shuffle"):
                partitions = self._shuffle(
                    job, map_outputs, counters, num_reducers
                )
            output: List[KeyValue] = []
            with observer.span("mapreduce.reduce", partitions=len(partitions)):
                for task_output, task_counters in self.backend.map(
                    partial(_run_reduce_task, job), partitions
                ):
                    output.extend(task_output)
                    counters.absorb(task_counters)
            counters.records_written += len(output)
        self.history.append((job.name, counters))
        if observer.enabled:
            self._emit_metrics(observer, counters, baseline)
        return output

    @staticmethod
    def _emit_metrics(
        observer, counters: JobCounters, baseline: JobCounters
    ) -> None:
        """Re-emit one job's counter deltas into the metrics registry.

        This is what puts the paper's shuffle-volume comparison (DSGD vs
        direct solvers, Section 2.2) in the same place as every other
        claim: ``mapreduce.shuffle_bytes`` / ``mapreduce.records_shuffled``
        accumulate next to the engine, MCDB, and filtering metrics.
        """
        observer.counter("mapreduce.jobs").inc()
        for name in COUNTER_FIELDS:
            delta = getattr(counters, name) - getattr(baseline, name)
            observer.counter(f"mapreduce.{name}").add(delta)
        for name in sorted(counters.custom):
            delta = counters.custom[name] - baseline.custom.get(name, 0)
            if delta:
                observer.counter("mapreduce.custom", name=name).add(delta)

    def run_chain(
        self,
        jobs: Sequence[MapReduceJob],
        inputs: Iterable[KeyValue],
    ) -> Tuple[List[KeyValue], JobCounters]:
        """Execute a pipeline of jobs, feeding each job's output to the next.

        Returns the final output along with merged counters over all stages.
        """
        total = JobCounters()
        current: List[KeyValue] = list(inputs)
        for job in jobs:
            stage_counters = JobCounters()
            current = self.run(job, current, stage_counters)
            total = total.merge(stage_counters)
        return current, total

    def last_counters(self) -> JobCounters:
        """Counters of the most recently executed job."""
        if not self.history:
            raise SimulationError("no job has been executed yet")
        return self.history[-1][1]

    # -- phases ------------------------------------------------------------
    def _split(
        self, inputs: List[KeyValue], counters: JobCounters
    ) -> List[List[KeyValue]]:
        counters.records_read += len(inputs)
        splits: List[List[KeyValue]] = [[] for _ in range(self.num_workers)]
        for i, record in enumerate(inputs):
            splits[i % self.num_workers].append(record)
        return [s for s in splits if s]

    def _shuffle(
        self,
        job: MapReduceJob,
        map_outputs: List[List[KeyValue]],
        counters: JobCounters,
        num_reducers: int,
    ) -> List[List[Tuple[Any, List[Any]]]]:
        partitions: List[Dict[Any, List[Any]]] = [
            {} for _ in range(num_reducers)
        ]
        # Keys repeat heavily in typical shuffles; memoize the partition
        # index per shuffle so each distinct key is hashed once.
        index_cache: Dict[Any, int] = {}
        for task_output in map_outputs:
            for key, value in task_output:
                counters.account_shuffle(key, value)
                index = index_cache.get(key)
                if index is None:
                    index = _partition_index(key, num_reducers)
                    index_cache[key] = index
                partitions[index].setdefault(key, []).append(value)
        # Keys are sorted within each partition, mirroring Hadoop's sort.
        return [
            sorted(p.items(), key=lambda kv: repr(kv[0]))
            for p in partitions
        ]
