"""An in-process MapReduce runtime with faithful phase semantics.

The runtime executes jobs split-by-split and partition-by-partition exactly
as a real cluster would — map tasks see only their split, combiners run per
map task, the shuffle hashes keys to reduce partitions, reducers see values
grouped by key — while counting every record that would cross the network.
This is the substrate on which SimSQL query execution
(:mod:`repro.simsql.mapreduce_exec`), Splash time alignment
(:mod:`repro.harmonize.time_alignment`) and DSGD
(:mod:`repro.harmonize.dsgd`) run.

Map tasks and reduce partitions are independent by construction, so the
cluster fans them out through a :mod:`repro.parallel` backend.  Each task
accumulates its own :class:`JobCounters`; the driver merges them in task
order, so counters (and outputs) are identical whichever backend runs the
job.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.exec.keys import partition_index as _partition_index
from repro.exec.substrate import Substrate
from repro.faults.retry import RetryPolicy, TaskFailed
from repro.mapreduce.checkpoint import ChainCheckpoint
from repro.mapreduce.counters import (
    COUNTER_FIELDS,
    RECOVERY_FIELDS,
    JobCounters,
)
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.obs import get_observer
from repro.parallel.backend import Backend


def _run_map_task(
    job: MapReduceJob, split: List[KeyValue]
) -> Tuple[List[KeyValue], JobCounters]:
    """One map task: apply the mapper (and local combiner) to one split.

    Module-level (not a method) so the closure pickles for the process
    backend; returns the task's own counters for deterministic merging.
    """
    counters = JobCounters()
    out: List[KeyValue] = []
    for key, value in split:
        for pair in job.mapper(key, value):
            counters.records_mapped += 1
            out.append(pair)
    if job.combiner is None:
        return out, counters
    # Combiner runs locally per map task, on that task's output only.
    grouped: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for key, value in out:
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(value)
    combined: List[KeyValue] = []
    for key in order:
        combined.extend(job.combiner(key, grouped[key]))
    return combined, counters


def _run_reduce_task(
    job: MapReduceJob, partition: List[Tuple[Any, List[Any]]]
) -> Tuple[List[KeyValue], JobCounters]:
    """One reduce task: apply the reducer to one shuffled partition."""
    counters = JobCounters()
    out: List[KeyValue] = []
    for key, values in partition:
        counters.records_reduced += len(values)
        out.extend(job.reducer(key, values))
    return out, counters


class Cluster:
    """A simulated MapReduce cluster.

    Parameters
    ----------
    num_workers:
        Number of map slots; inputs are split round-robin across workers.
    backend:
        Execution backend for map tasks and reduce partitions — a
        :class:`~repro.parallel.backend.Backend`, a backend name, or
        ``None`` to resolve from the ``REPRO_BACKEND`` environment
        variable (default ``serial``).  Outputs and counters are
        identical for every backend.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` governing how
        failed map/reduce tasks are re-executed (``None`` uses the
        default policy whenever a fault plan is active, and runs the
        zero-overhead path otherwise).  A retried task re-runs on its
        original split/partition, so recovered jobs produce the same
        output and record counters as failure-free ones;
        ``counters.tasks_retried`` records that recovery happened, and a
        task that exhausts its attempts raises
        :class:`~repro.faults.retry.TaskFailed` after incrementing
        ``counters.tasks_failed``.

    Examples
    --------
    >>> from repro.mapreduce.job import MapReduceJob, sum_reducer
    >>> def mapper(_, word):
    ...     yield word, 1
    >>> job = MapReduceJob("wc", mapper, sum_reducer)
    >>> cluster = Cluster(num_workers=2)
    >>> sorted(cluster.run(job, [(None, "a"), (None, "b"), (None, "a")]))
    [('a', 2), ('b', 1)]
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: Union[str, Backend, None] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if num_workers < 1:
            raise SimulationError("cluster needs at least one worker")
        self.num_workers = num_workers
        self.substrate = Substrate(backend)
        self.backend = self.substrate.backend
        self.retry = retry
        self.history: List[Tuple[str, JobCounters]] = []

    # -- public API ---------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[KeyValue],
        counters: Optional[JobCounters] = None,
        num_reducers: Optional[int] = None,
    ) -> List[KeyValue]:
        """Execute one job over ``inputs`` and return the reduce output.

        ``num_reducers`` overrides the job's configured reducer count for
        this run only, without mutating the (frozen) job.
        """
        counters = counters if counters is not None else JobCounters()
        if num_reducers is None:
            num_reducers = job.num_reducers
        if num_reducers < 1:
            raise SimulationError("num_reducers must be >= 1")
        observer = get_observer()
        # Callers may hand in pre-loaded counters; only this job's deltas
        # are re-emitted into the metrics registry afterwards.
        baseline = JobCounters().merge(counters)
        try:
            with observer.span("mapreduce.job", job=job.name):
                with observer.span("mapreduce.split"):
                    splits = self._split(list(inputs), counters)
                map_outputs: List[List[KeyValue]] = []
                with observer.span("mapreduce.map", tasks=len(splits)):
                    map_results, map_stats = self.substrate.submit_with_stats(
                        partial(_run_map_task, job),
                        splits,
                        scope="mapreduce.map",
                        retry=self.retry,
                    )
                    counters.tasks_retried += map_stats.tasks_retried
                    for task_output, task_counters in map_results:
                        map_outputs.append(task_output)
                        counters.absorb(task_counters)
                with observer.span("mapreduce.shuffle"):
                    partitions = self._shuffle(
                        job, map_outputs, counters, num_reducers
                    )
                output: List[KeyValue] = []
                with observer.span(
                    "mapreduce.reduce", partitions=len(partitions)
                ):
                    red_results, red_stats = self.substrate.submit_with_stats(
                        partial(_run_reduce_task, job),
                        partitions,
                        scope="mapreduce.reduce",
                        retry=self.retry,
                    )
                    counters.tasks_retried += red_stats.tasks_retried
                    for task_output, task_counters in red_results:
                        output.extend(task_output)
                        counters.absorb(task_counters)
                counters.records_written += len(output)
        except TaskFailed:
            # The job is lost, but its partial accounting is not: record
            # the terminal failure so post-mortems see which job died and
            # how far it got, then let the error (with its attempt
            # history) propagate to the caller.
            counters.tasks_failed += 1
            self.history.append((job.name, counters))
            if observer.enabled:
                self._emit_metrics(observer, counters, baseline)
            raise
        self.history.append((job.name, counters))
        if observer.enabled:
            self._emit_metrics(observer, counters, baseline)
        return output

    @staticmethod
    def _emit_metrics(
        observer, counters: JobCounters, baseline: JobCounters
    ) -> None:
        """Re-emit one job's counter deltas into the metrics registry.

        This is what puts the paper's shuffle-volume comparison (DSGD vs
        direct solvers, Section 2.2) in the same place as every other
        claim: ``mapreduce.shuffle_bytes`` / ``mapreduce.records_shuffled``
        accumulate next to the engine, MCDB, and filtering metrics.
        """
        observer.counter("mapreduce.jobs").inc()
        for name in COUNTER_FIELDS:
            delta = getattr(counters, name) - getattr(baseline, name)
            if name in RECOVERY_FIELDS and not delta:
                # Recovery counters appear only when recovery happened,
                # so fault-free snapshots stay byte-identical to runs of
                # the library predating fault injection.
                continue
            observer.counter(f"mapreduce.{name}").add(delta)
        for name in sorted(counters.custom):
            delta = counters.custom[name] - baseline.custom.get(name, 0)
            if delta:
                observer.counter("mapreduce.custom", name=name).add(delta)

    def run_chain(
        self,
        jobs: Sequence[MapReduceJob],
        inputs: Iterable[KeyValue],
        checkpoint: Optional[ChainCheckpoint] = None,
    ) -> Tuple[List[KeyValue], JobCounters]:
        """Execute a pipeline of jobs, feeding each job's output to the next.

        Returns the final output along with merged counters over all
        stages.  With a :class:`~repro.mapreduce.checkpoint.ChainCheckpoint`,
        every completed link's output and running counters are recorded
        (and persisted, for file-backed checkpoints), and a re-run after
        a crash resumes from the first incomplete link — completed links
        are never re-executed, and the resumed chain's final output and
        counters are byte-identical to an uninterrupted run.
        """
        jobs = list(jobs)
        total = JobCounters()
        current: List[KeyValue] = list(inputs)
        first_link = 0
        if checkpoint is not None:
            resumed = checkpoint.bind([job.name for job in jobs])
            if resumed is not None:
                first_link = resumed.link + 1
                current = list(resumed.output)
                total = JobCounters().merge(resumed.counters)
        for link in range(first_link, len(jobs)):
            stage_counters = JobCounters()
            current = self.run(jobs[link], current, stage_counters)
            total = total.merge(stage_counters)
            if checkpoint is not None:
                checkpoint.record(link, current, total)
        return current, total

    def last_counters(self) -> JobCounters:
        """Counters of the most recently executed job."""
        if not self.history:
            raise SimulationError("no job has been executed yet")
        return self.history[-1][1]

    # -- phases ------------------------------------------------------------
    def _split(
        self, inputs: List[KeyValue], counters: JobCounters
    ) -> List[List[KeyValue]]:
        counters.records_read += len(inputs)
        splits: List[List[KeyValue]] = [[] for _ in range(self.num_workers)]
        for i, record in enumerate(inputs):
            splits[i % self.num_workers].append(record)
        return [s for s in splits if s]

    def _shuffle(
        self,
        job: MapReduceJob,
        map_outputs: List[List[KeyValue]],
        counters: JobCounters,
        num_reducers: int,
    ) -> List[List[Tuple[Any, List[Any]]]]:
        partitions: List[Dict[Any, List[Any]]] = [
            {} for _ in range(num_reducers)
        ]
        # Keys repeat heavily in typical shuffles; memoize the partition
        # index per shuffle so each distinct key is hashed once.
        index_cache: Dict[Any, int] = {}
        for task_output in map_outputs:
            for key, value in task_output:
                counters.account_shuffle(key, value)
                index = index_cache.get(key)
                if index is None:
                    index = _partition_index(key, num_reducers)
                    index_cache[key] = index
                partitions[index].setdefault(key, []).append(value)
        # Keys are sorted within each partition, mirroring Hadoop's sort.
        return [
            sorted(p.items(), key=lambda kv: repr(kv[0]))
            for p in partitions
        ]
