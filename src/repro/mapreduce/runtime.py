"""An in-process MapReduce runtime with faithful phase semantics.

The runtime executes jobs split-by-split and partition-by-partition exactly
as a real cluster would — map tasks see only their split, combiners run per
map task, the shuffle hashes keys to reduce partitions, reducers see values
grouped by key — while counting every record that would cross the network.
This is the substrate on which SimSQL query execution
(:mod:`repro.simsql.mapreduce_exec`), Splash time alignment
(:mod:`repro.harmonize.time_alignment`) and DSGD
(:mod:`repro.harmonize.dsgd`) run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.job import KeyValue, MapReduceJob


def _partition_index(key: Any, num_partitions: int) -> int:
    """Deterministic key-to-partition assignment.

    Uses a stable string-based hash so results do not depend on Python's
    per-process hash randomization.
    """
    text = repr(key)
    acc = 0
    for ch in text:
        acc = (acc * 31 + ord(ch)) % 1_000_000_007
    return acc % num_partitions


class Cluster:
    """A simulated MapReduce cluster.

    Parameters
    ----------
    num_workers:
        Number of map slots; inputs are split round-robin across workers.

    Examples
    --------
    >>> from repro.mapreduce.job import MapReduceJob, sum_reducer
    >>> def mapper(_, word):
    ...     yield word, 1
    >>> job = MapReduceJob("wc", mapper, sum_reducer)
    >>> cluster = Cluster(num_workers=2)
    >>> sorted(cluster.run(job, [(None, "a"), (None, "b"), (None, "a")]))
    [('a', 2), ('b', 1)]
    """

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise SimulationError("cluster needs at least one worker")
        self.num_workers = num_workers
        self.history: List[Tuple[str, JobCounters]] = []

    # -- public API ---------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[KeyValue],
        counters: Optional[JobCounters] = None,
    ) -> List[KeyValue]:
        """Execute one job over ``inputs`` and return the reduce output."""
        counters = counters if counters is not None else JobCounters()
        splits = self._split(list(inputs), counters)
        map_outputs = [
            self._run_map_task(job, split, counters) for split in splits
        ]
        partitions = self._shuffle(job, map_outputs, counters)
        output: List[KeyValue] = []
        for partition in partitions:
            output.extend(self._run_reduce_task(job, partition, counters))
        counters.records_written += len(output)
        self.history.append((job.name, counters))
        return output

    def run_chain(
        self,
        jobs: Sequence[MapReduceJob],
        inputs: Iterable[KeyValue],
    ) -> Tuple[List[KeyValue], JobCounters]:
        """Execute a pipeline of jobs, feeding each job's output to the next.

        Returns the final output along with merged counters over all stages.
        """
        total = JobCounters()
        current: Iterable[KeyValue] = inputs
        for job in jobs:
            stage_counters = JobCounters()
            current = self.run(job, current, stage_counters)
            total = total.merge(stage_counters)
        return list(current), total

    def last_counters(self) -> JobCounters:
        """Counters of the most recently executed job."""
        if not self.history:
            raise SimulationError("no job has been executed yet")
        return self.history[-1][1]

    # -- phases ------------------------------------------------------------
    def _split(
        self, inputs: List[KeyValue], counters: JobCounters
    ) -> List[List[KeyValue]]:
        counters.records_read += len(inputs)
        splits: List[List[KeyValue]] = [[] for _ in range(self.num_workers)]
        for i, record in enumerate(inputs):
            splits[i % self.num_workers].append(record)
        return [s for s in splits if s]

    def _run_map_task(
        self,
        job: MapReduceJob,
        split: List[KeyValue],
        counters: JobCounters,
    ) -> List[KeyValue]:
        out: List[KeyValue] = []
        for key, value in split:
            for pair in job.mapper(key, value):
                counters.records_mapped += 1
                out.append(pair)
        if job.combiner is None:
            return out
        # Combiner runs locally per map task, on that task's output only.
        grouped: Dict[Any, List[Any]] = {}
        order: List[Any] = []
        for key, value in out:
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(value)
        combined: List[KeyValue] = []
        for key in order:
            combined.extend(job.combiner(key, grouped[key]))
        return combined

    def _shuffle(
        self,
        job: MapReduceJob,
        map_outputs: List[List[KeyValue]],
        counters: JobCounters,
    ) -> List[List[Tuple[Any, List[Any]]]]:
        partitions: List[Dict[Any, List[Any]]] = [
            {} for _ in range(job.num_reducers)
        ]
        for task_output in map_outputs:
            for key, value in task_output:
                counters.account_shuffle(key, value)
                bucket = partitions[_partition_index(key, job.num_reducers)]
                bucket.setdefault(key, []).append(value)
        # Keys are sorted within each partition, mirroring Hadoop's sort.
        return [
            sorted(p.items(), key=lambda kv: repr(kv[0]))
            for p in partitions
        ]

    def _run_reduce_task(
        self,
        job: MapReduceJob,
        partition: List[Tuple[Any, List[Any]]],
        counters: JobCounters,
    ) -> List[KeyValue]:
        out: List[KeyValue] = []
        for key, values in partition:
            counters.records_reduced += len(values)
            out.extend(job.reducer(key, values))
        return out
