"""Simulated MapReduce substrate (stands in for Hadoop).

SimSQL executes queries on Hadoop and Splash compiles data transformations
to Hadoop jobs; this subpackage provides an in-process runtime with the
same programming contract (mapper/combiner/reducer, hash shuffle, per-key
grouping) plus counters that expose shuffle volume — the quantity the
paper's DSGD discussion turns on.
"""

from repro.mapreduce.checkpoint import ChainCheckpoint, ChainState
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.job import (
    MapReduceJob,
    identity_mapper,
    identity_reducer,
    sum_reducer,
)
from repro.mapreduce.runtime import Cluster

__all__ = [
    "ChainCheckpoint",
    "ChainState",
    "Cluster",
    "JobCounters",
    "MapReduceJob",
    "identity_mapper",
    "identity_reducer",
    "sum_reducer",
]
