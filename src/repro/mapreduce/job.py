"""MapReduce job specifications.

A job is just three callables — ``mapper``, optional ``combiner``, and
``reducer`` — following the Hadoop contract the paper's Splash/SimSQL
systems target:

* ``mapper(key, value)`` yields zero or more ``(key, value)`` pairs;
* ``combiner(key, values)`` (optional) pre-aggregates map output locally;
* ``reducer(key, values)`` yields zero or more ``(key, value)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

KeyValue = Tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KeyValue]]
Reducer = Callable[[Any, Iterable[Any]], Iterable[KeyValue]]


@dataclass(frozen=True)
class MapReduceJob:
    """Specification of one MapReduce job.

    Examples
    --------
    Word count::

        def mapper(_, line):
            for word in line.split():
                yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        job = MapReduceJob("wordcount", mapper, reducer)
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Reducer] = None
    num_reducers: int = 4

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")


def identity_mapper(key: Any, value: Any) -> Iterator[KeyValue]:
    """A mapper that forwards its input pair unchanged."""
    yield key, value


def identity_reducer(key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
    """A reducer that forwards each value unchanged."""
    for value in values:
        yield key, value


def sum_reducer(key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
    """A reducer (and combiner) that sums numeric values per key."""
    yield key, sum(values)
