"""Counters for the simulated MapReduce runtime.

The paper's DSGD argument (Section 2.2) is fundamentally about *shuffle
volume*: direct tridiagonal solvers "do not translate well to a MapReduce
environment, because massive amounts of data shuffling are required",
whereas stratified SGD shuffles a negligible amount.  These counters make
that comparison measurable on the in-process runtime.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: The built-in record-flow counters, in declaration order.  Shared with
#: the runtime, which re-emits them into the ``repro.obs`` metrics
#: registry under ``mapreduce.<name>``.
COUNTER_FIELDS: Tuple[str, ...] = (
    "records_read",
    "records_mapped",
    "records_shuffled",
    "shuffle_bytes",
    "records_reduced",
    "records_written",
    "tasks_retried",
    "tasks_failed",
)

#: The recovery subset of :data:`COUNTER_FIELDS`: zero in a fault-free
#: run, so the runtime emits them into the metrics registry only when
#: nonzero — keeping fault-free snapshots identical to pre-faults ones.
RECOVERY_FIELDS: Tuple[str, ...] = ("tasks_retried", "tasks_failed")


@dataclass
class JobCounters:
    """Record-flow counters for one MapReduce job."""

    records_read: int = 0
    records_mapped: int = 0
    records_shuffled: int = 0
    shuffle_bytes: int = 0
    records_reduced: int = 0
    records_written: int = 0
    #: Tasks that failed at least one attempt but eventually succeeded.
    tasks_retried: int = 0
    #: Tasks that exhausted every attempt (the job raised ``TaskFailed``).
    tasks_failed: int = 0
    custom: Dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, amount: int = 1) -> None:
        """Increment a user-defined counter."""
        self.custom[name] = self.custom.get(name, 0) + amount

    def account_shuffle(self, key: Any, value: Any) -> None:
        """Count one intermediate record crossing the shuffle."""
        self.records_shuffled += 1
        self.shuffle_bytes += _approximate_size(key) + _approximate_size(value)

    def absorb(self, other: "JobCounters") -> None:
        """Add another task's counters into this one, in place.

        The parallel runtime gives every map/reduce task a private
        ``JobCounters`` and absorbs them in task order, so totals are
        identical no matter which backend (or worker) ran each task.
        """
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name, count in other.custom.items():
            self.increment(name, count)

    def merge(self, other: "JobCounters") -> "JobCounters":
        """Combine counters from two jobs (for multi-job pipelines).

        Implemented as copy + :meth:`absorb` so the two aggregation
        paths cannot drift.
        """
        merged = JobCounters()
        merged.absorb(self)
        merged.absorb(other)
        return merged

    def summary(self) -> str:
        """One-line human-readable rendering."""
        text = (
            f"read={self.records_read} mapped={self.records_mapped} "
            f"shuffled={self.records_shuffled} "
            f"(~{self.shuffle_bytes} B) reduced={self.records_reduced} "
            f"written={self.records_written}"
        )
        if self.tasks_retried:
            text += f" retried={self.tasks_retried}"
        if self.tasks_failed:
            text += f" failed={self.tasks_failed}"
        if self.custom:
            rendered = " ".join(
                f"{name}={self.custom[name]}" for name in sorted(self.custom)
            )
            text += f" custom[{rendered}]"
        return text


#: Containers nested deeper than this are charged a flat estimate
#: instead of being walked, so pathological records (or cyclic-ish
#: structures built from deep nesting) cannot blow the stack.
_MAX_SIZE_DEPTH = 16

#: Flat fallback charge for objects the estimator will not inspect.
_FALLBACK_SIZE = 64


def _approximate_size(obj: Any, _depth: int = 0) -> int:
    """Cheap size estimate of a record for shuffle accounting.

    Strings count their UTF-8 encoding (what would actually cross the
    wire), not their character count; ``bytes``/``bytearray`` count
    their length directly.
    """
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if _depth >= _MAX_SIZE_DEPTH:
        return _FALLBACK_SIZE
    if isinstance(obj, (list, tuple)):
        return sum(_approximate_size(x, _depth + 1) for x in obj) + 8
    if isinstance(obj, dict):
        return (
            sum(
                _approximate_size(k, _depth + 1)
                + _approximate_size(v, _depth + 1)
                for k, v in obj.items()
            )
            + 8
        )
    try:
        return sys.getsizeof(obj)
    except TypeError:
        return _FALLBACK_SIZE
