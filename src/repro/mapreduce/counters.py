"""Counters for the simulated MapReduce runtime.

The paper's DSGD argument (Section 2.2) is fundamentally about *shuffle
volume*: direct tridiagonal solvers "do not translate well to a MapReduce
environment, because massive amounts of data shuffling are required",
whereas stratified SGD shuffles a negligible amount.  These counters make
that comparison measurable on the in-process runtime.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class JobCounters:
    """Record-flow counters for one MapReduce job."""

    records_read: int = 0
    records_mapped: int = 0
    records_shuffled: int = 0
    shuffle_bytes: int = 0
    records_reduced: int = 0
    records_written: int = 0
    custom: Dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, amount: int = 1) -> None:
        """Increment a user-defined counter."""
        self.custom[name] = self.custom.get(name, 0) + amount

    def account_shuffle(self, key: Any, value: Any) -> None:
        """Count one intermediate record crossing the shuffle."""
        self.records_shuffled += 1
        self.shuffle_bytes += _approximate_size(key) + _approximate_size(value)

    def absorb(self, other: "JobCounters") -> None:
        """Add another task's counters into this one, in place.

        The parallel runtime gives every map/reduce task a private
        ``JobCounters`` and absorbs them in task order, so totals are
        identical no matter which backend (or worker) ran each task.
        """
        self.records_read += other.records_read
        self.records_mapped += other.records_mapped
        self.records_shuffled += other.records_shuffled
        self.shuffle_bytes += other.shuffle_bytes
        self.records_reduced += other.records_reduced
        self.records_written += other.records_written
        for name, count in other.custom.items():
            self.increment(name, count)

    def merge(self, other: "JobCounters") -> "JobCounters":
        """Combine counters from two jobs (for multi-job pipelines)."""
        merged = JobCounters(
            records_read=self.records_read + other.records_read,
            records_mapped=self.records_mapped + other.records_mapped,
            records_shuffled=self.records_shuffled + other.records_shuffled,
            shuffle_bytes=self.shuffle_bytes + other.shuffle_bytes,
            records_reduced=self.records_reduced + other.records_reduced,
            records_written=self.records_written + other.records_written,
        )
        merged.custom = dict(self.custom)
        for name, count in other.custom.items():
            merged.custom[name] = merged.custom.get(name, 0) + count
        return merged

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"read={self.records_read} mapped={self.records_mapped} "
            f"shuffled={self.records_shuffled} "
            f"(~{self.shuffle_bytes} B) reduced={self.records_reduced} "
            f"written={self.records_written}"
        )


def _approximate_size(obj: Any) -> int:
    """Cheap size estimate of a record for shuffle accounting."""
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_approximate_size(x) for x in obj) + 8
    if isinstance(obj, dict):
        return (
            sum(
                _approximate_size(k) + _approximate_size(v)
                for k, v in obj.items()
            )
            + 8
        )
    try:
        return sys.getsizeof(obj)
    except TypeError:
        return 64
