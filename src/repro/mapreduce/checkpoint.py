"""Chain-link checkpointing for multi-job MapReduce pipelines.

The ecosystem platforms the paper surveys run *chains* of dependent jobs
(SimSQL's database-valued Markov chains are exactly that), and a crash
in link ``k`` must not force links ``0..k-1`` to re-execute.
:class:`ChainCheckpoint` records, after every completed link, the link's
output and the counters merged so far; a re-run of
:meth:`~repro.mapreduce.runtime.Cluster.run_chain` with the same
checkpoint resumes from the first incomplete link.  Because every job is
a deterministic function of its input, a resumed chain produces
byte-identical final output and counters to an uninterrupted run.

Checkpoints can live purely in memory (surviving an exception inside the
same process) or persist to a pickle file (surviving a process crash);
persistence is atomic (write-to-temp + rename) so a crash *during*
checkpointing never leaves a corrupt file behind.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.job import KeyValue


class ChainState(NamedTuple):
    """The durable record of the last completed chain link."""

    #: Index of the last completed job in the chain (0-based).
    link: int
    #: That link's full output (the next link's input).
    output: List[KeyValue]
    #: Counters merged over links ``0..link`` inclusive.
    counters: JobCounters


class ChainCheckpoint:
    """Resumable progress record for one job chain.

    Parameters
    ----------
    path:
        Optional pickle file.  When given, existing state is loaded
        eagerly (so a fresh process resumes a crashed chain) and every
        :meth:`record` persists atomically.  ``None`` keeps the
        checkpoint in memory only.

    Examples
    --------
    >>> checkpoint = ChainCheckpoint()          # doctest: +SKIP
    >>> cluster.run_chain(jobs, inputs, checkpoint=checkpoint)
    ...     # crashes in link 2 -> links 0 and 1 are checkpointed
    >>> cluster.run_chain(jobs, inputs, checkpoint=checkpoint)
    ...     # resumes at link 2; identical final output and counters
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._job_names: Optional[Tuple[str, ...]] = None
        self._state: Optional[ChainState] = None
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # -- persistence --------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            self._job_names = tuple(payload["job_names"])
            self._state = ChainState(
                payload["link"],
                list(payload["output"]),
                payload["counters"],
            )
        except Exception as exc:
            raise SimulationError(
                f"could not load chain checkpoint {self.path!r}: {exc}"
            ) from exc

    def _persist(self) -> None:
        if self.path is None or self._state is None:
            return
        payload = {
            "job_names": self._job_names,
            "link": self._state.link,
            "output": self._state.output,
            "counters": self._state.counters,
        }
        directory = os.path.dirname(self.path) or "."
        fd, temp_path = tempfile.mkstemp(
            prefix=".chain-checkpoint-", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(temp_path, self.path)  # atomic on POSIX
        except Exception:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    # -- chain protocol -----------------------------------------------------
    def bind(self, job_names: Sequence[str]) -> Optional[ChainState]:
        """Attach this checkpoint to a chain; return resumable state.

        The job-name sequence is the chain's signature: binding a
        checkpoint that holds progress for a *different* chain raises
        :class:`~repro.errors.SimulationError` instead of silently
        feeding one pipeline's intermediate data into another.
        """
        names = tuple(job_names)
        if self._job_names is not None and self._job_names != names:
            raise SimulationError(
                "chain checkpoint belongs to a different job chain: "
                f"recorded {list(self._job_names)}, asked to resume "
                f"{list(names)}"
            )
        self._job_names = names
        if self._state is not None and self._state.link >= len(names):
            raise SimulationError(
                f"chain checkpoint records completed link "
                f"{self._state.link} but the chain has only "
                f"{len(names)} job(s)"
            )
        return self._state

    def record(
        self, link: int, output: List[KeyValue], counters: JobCounters
    ) -> None:
        """Record link ``link`` as completed (and persist, if on disk)."""
        if self._state is not None and link <= self._state.link:
            raise SimulationError(
                f"chain checkpoint already records link {self._state.link}; "
                f"refusing to rewind to link {link}"
            )
        self._state = ChainState(
            link, list(output), JobCounters().merge(counters)
        )
        self._persist()

    def latest(self) -> Optional[ChainState]:
        """The last completed link's state, or ``None`` if none yet."""
        return self._state

    def clear(self) -> None:
        """Forget all progress (and remove the on-disk file, if any)."""
        self._state = None
        self._job_names = None
        if self.path is not None and os.path.exists(self.path):
            os.unlink(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        location = self.path if self.path is not None else "memory"
        done = self._state.link if self._state is not None else None
        return f"<ChainCheckpoint {location!r} last_link={done}>"


__all__ = ["ChainCheckpoint", "ChainState"]
