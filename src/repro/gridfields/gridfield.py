"""Gridfields: data bound to grid cells, plus the core operators.

"A gridfield results from binding data to a grid by specifying, for each
dimension k, a function f_k that operates on cells of dimension k and
returns a data value."  We store bindings as per-dimension dictionaries of
named attributes.  The operators implemented are the ones the paper
discusses:

* ``bind`` — attach an attribute to the cells of one dimension;
* ``restrict`` — the relational-selection analogue: keep the cells of one
  dimension satisfying a predicate (inducing a subgrid);
* ``regrid`` — map a source gridfield's cells onto a target gridfield's
  cells via a many-to-one assignment function, aggregating the bound
  values;
* ``merge`` — combine attribute sets of two gridfields over the
  intersection of their grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import GridError
from repro.gridfields.grid import CellId, Grid

AggregateFn = Callable[[List[float]], float]

AGGREGATES: Dict[str, AggregateFn] = {
    "mean": lambda values: float(np.mean(values)),
    "sum": lambda values: float(np.sum(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
    "count": lambda values: float(len(values)),
}


@dataclass
class OpCost:
    """Work counters for gridfield operators (for the optimizer benchmark)."""

    cells_examined: int = 0
    assignments_evaluated: int = 0
    values_aggregated: int = 0

    def merge(self, other: "OpCost") -> "OpCost":
        """Sum of two cost records."""
        return OpCost(
            self.cells_examined + other.cells_examined,
            self.assignments_evaluated + other.assignments_evaluated,
            self.values_aggregated + other.values_aggregated,
        )


class GridField:
    """A grid with named attributes bound per dimension."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        # attributes[dim][name][cell_id] = value
        self._attributes: Dict[int, Dict[str, Dict[CellId, float]]] = {}

    # -- binding -----------------------------------------------------------
    def bind(
        self, dim: int, name: str, values: Mapping[CellId, float]
    ) -> "GridField":
        """Attach attribute ``name`` to the ``dim``-cells (in place).

        Every cell of the dimension must receive a value (a gridfield's
        binding is a total function on the cells of its dimension).
        """
        cells = self.grid.cells(dim)
        if not cells:
            raise GridError(f"grid has no {dim}-cells to bind {name!r} to")
        missing = cells - set(values)
        if missing:
            raise GridError(
                f"binding {name!r} misses {len(missing)} of "
                f"{len(cells)} {dim}-cells"
            )
        extra = set(values) - cells
        if extra:
            raise GridError(
                f"binding {name!r} covers {len(extra)} unknown cells"
            )
        self._attributes.setdefault(dim, {})[name] = {
            c: float(values[c]) for c in cells
        }
        return self

    def bind_by_function(
        self, dim: int, name: str, fn: Callable[[CellId], float]
    ) -> "GridField":
        """Bind by evaluating ``fn`` on every cell (the paper's f_k)."""
        return self.bind(
            dim, name, {c: fn(c) for c in self.grid.cells(dim)}
        )

    # -- access ------------------------------------------------------------
    def attribute(self, dim: int, name: str) -> Dict[CellId, float]:
        """The values of one attribute."""
        try:
            return self._attributes[dim][name]
        except KeyError:
            raise GridError(
                f"no attribute {name!r} on {dim}-cells; "
                f"have {self.attribute_names(dim)}"
            ) from None

    def attribute_names(self, dim: int) -> List[str]:
        """Attribute names bound to dimension ``dim``."""
        return sorted(self._attributes.get(dim, {}))

    # -- operators ----------------------------------------------------------
    def restrict(
        self,
        dim: int,
        predicate: Callable[[CellId, Dict[str, float]], bool],
        cost: Optional[OpCost] = None,
    ) -> "GridField":
        """Keep the ``dim``-cells satisfying ``predicate``.

        The predicate sees the cell id and its attribute values.  Cells of
        other dimensions survive; incidences to dropped cells are removed
        by the induced subgrid.  This is the operator the paper notes is
        "analogous to standard relational selection".
        """
        cost = cost if cost is not None else OpCost()
        keep: Set[CellId] = set()
        for cell_id in self.grid.cells(dim):
            cost.cells_examined += 1
            attrs = {
                name: values[cell_id]
                for name, values in self._attributes.get(dim, {}).items()
            }
            if predicate(cell_id, attrs):
                keep.add(cell_id)
        keep_map = {
            d: (keep if d == dim else set(self.grid.cells(d)))
            for d in self.grid.dimensions
        }
        new_grid = self.grid.subgrid(keep_map)
        out = GridField(new_grid)
        for d, named in self._attributes.items():
            for name, values in named.items():
                out.bind(
                    d,
                    name,
                    {c: v for c, v in values.items() if c in new_grid.cells(d)},
                )
        return out

    def regrid(
        self,
        target: "GridField",
        source_dim: int,
        target_dim: int,
        assignment: Callable[[CellId], Optional[CellId]],
        attribute: str,
        aggregate: str = "mean",
        output_name: Optional[str] = None,
        default: float = float("nan"),
        cost: Optional[OpCost] = None,
    ) -> "GridField":
        """Map source cells onto target cells and aggregate bound values.

        ``assignment`` is the many-to-one map from source ``source_dim``
        cells to target ``target_dim`` cells (``None`` drops the source
        cell).  Target cells receiving no source cell get ``default``.
        Returns a *new* gridfield on the target grid with the aggregated
        attribute added.
        """
        if aggregate not in AGGREGATES:
            raise GridError(
                f"unknown aggregate {aggregate!r}; have {sorted(AGGREGATES)}"
            )
        cost = cost if cost is not None else OpCost()
        source_values = self.attribute(source_dim, attribute)
        target_cells = target.grid.cells(target_dim)
        buckets: Dict[CellId, List[float]] = {}
        for cell_id, value in source_values.items():
            cost.assignments_evaluated += 1
            assigned = assignment(cell_id)
            if assigned is None:
                continue
            if assigned not in target_cells:
                raise GridError(
                    f"assignment maps {cell_id!r} to unknown target "
                    f"cell {assigned!r}"
                )
            buckets.setdefault(assigned, []).append(value)
        agg_fn = AGGREGATES[aggregate]
        out_values: Dict[CellId, float] = {}
        for cell_id in target_cells:
            values = buckets.get(cell_id)
            if values:
                cost.values_aggregated += len(values)
                out_values[cell_id] = agg_fn(values)
            else:
                out_values[cell_id] = default
        out = GridField(target.grid)
        for d, named in target._attributes.items():
            for name, values in named.items():
                out.bind(d, name, values)
        out.bind(target_dim, output_name or attribute, out_values)
        return out

    def merge(self, other: "GridField") -> "GridField":
        """Combine attributes over the intersection of the two grids."""
        grid = self.grid.intersection(other.grid)
        out = GridField(grid)
        for source in (self, other):
            for d, named in source._attributes.items():
                for name, values in named.items():
                    cells = grid.cells(d)
                    if not cells:
                        continue
                    subset = {c: v for c, v in values.items() if c in cells}
                    if len(subset) == len(cells):
                        out.bind(d, name, subset)
        return out
