"""Grids of heterogeneous cells with an incidence relation.

Howe & Maier's gridfield algebra (Section 2.2 of the paper) models
scientific meshes as *grids*: "a collection of heterogeneous abstract
cells of various dimensions" with an incidence relation ``x <= y`` meaning
``x = y`` or ``dim(x) < dim(y)`` and ``x`` touches ``y`` (a line segment
coinciding with the side of a square, a node being a corner of an edge).

Cells are identified by hashable ids grouped by dimension.  The incidence
relation is stored upward (cell → the higher-dimensional cells it
bounds); the downward direction is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import GridError

CellId = Any


class Grid:
    """A grid: cells per dimension plus incidence."""

    def __init__(self) -> None:
        self._cells: Dict[int, Set[CellId]] = {}
        self._up: Dict[Tuple[int, CellId], Set[Tuple[int, CellId]]] = {}

    # -- construction ----------------------------------------------------
    def add_cell(self, dim: int, cell_id: CellId) -> None:
        """Register a cell of dimension ``dim``."""
        if dim < 0:
            raise GridError(f"dimension must be >= 0, got {dim}")
        self._cells.setdefault(dim, set()).add(cell_id)

    def add_incidence(
        self, low_dim: int, low_id: CellId, high_dim: int, high_id: CellId
    ) -> None:
        """Record ``(low_dim, low_id) <= (high_dim, high_id)``."""
        if low_dim >= high_dim:
            raise GridError(
                f"incidence requires dim {low_dim} < dim {high_dim}"
            )
        if low_id not in self.cells(low_dim):
            raise GridError(f"unknown {low_dim}-cell {low_id!r}")
        if high_id not in self.cells(high_dim):
            raise GridError(f"unknown {high_dim}-cell {high_id!r}")
        self._up.setdefault((low_dim, low_id), set()).add((high_dim, high_id))

    # -- access ------------------------------------------------------------
    @property
    def dimensions(self) -> List[int]:
        """Dimensions present, ascending."""
        return sorted(d for d, cells in self._cells.items() if cells)

    def cells(self, dim: int) -> FrozenSet[CellId]:
        """Ids of all cells of dimension ``dim``."""
        return frozenset(self._cells.get(dim, set()))

    def size(self, dim: int) -> int:
        """Number of cells of dimension ``dim``."""
        return len(self._cells.get(dim, ()))

    def incident_up(self, dim: int, cell_id: CellId) -> FrozenSet[Tuple[int, CellId]]:
        """Higher-dimensional cells this cell bounds."""
        return frozenset(self._up.get((dim, cell_id), set()))

    def incident_down(
        self, dim: int, cell_id: CellId
    ) -> FrozenSet[Tuple[int, CellId]]:
        """Lower-dimensional cells bounding this cell."""
        out = set()
        for (low_dim, low_id), highs in self._up.items():
            if (dim, cell_id) in highs:
                out.add((low_dim, low_id))
        return frozenset(out)

    def leq(self, a: Tuple[int, CellId], b: Tuple[int, CellId]) -> bool:
        """The incidence partial order ``a <= b`` from the paper."""
        if a == b:
            return True
        return b in self._up.get(a, set())

    # -- set-like operations ----------------------------------------------
    def union(self, other: "Grid") -> "Grid":
        """Cell-wise union of two grids (incidences merged)."""
        out = Grid()
        for g in (self, other):
            for dim, cells in g._cells.items():
                for cell_id in cells:
                    out.add_cell(dim, cell_id)
        for g in (self, other):
            for (low_dim, low_id), highs in g._up.items():
                for high_dim, high_id in highs:
                    out.add_incidence(low_dim, low_id, high_dim, high_id)
        return out

    def intersection(self, other: "Grid") -> "Grid":
        """Cell-wise intersection (incidences restricted to kept cells)."""
        out = Grid()
        for dim in set(self._cells) & set(other._cells):
            for cell_id in self.cells(dim) & other.cells(dim):
                out.add_cell(dim, cell_id)
        for (low_dim, low_id), highs in self._up.items():
            if low_id not in out.cells(low_dim):
                continue
            for high_dim, high_id in highs:
                if high_id in out.cells(high_dim) and (
                    (low_dim, low_id) in other._up
                    and (high_dim, high_id) in other._up[(low_dim, low_id)]
                ):
                    out.add_incidence(low_dim, low_id, high_dim, high_id)
        return out

    def subgrid(self, keep: Dict[int, Set[CellId]]) -> "Grid":
        """The grid induced by keeping only the given cells."""
        out = Grid()
        for dim, cells in keep.items():
            unknown = cells - self._cells.get(dim, set())
            if unknown:
                raise GridError(
                    f"cannot keep unknown {dim}-cells {sorted(map(repr, unknown))[:3]}"
                )
            for cell_id in cells:
                out.add_cell(dim, cell_id)
        for (low_dim, low_id), highs in self._up.items():
            if low_id not in out.cells(low_dim):
                continue
            for high_dim, high_id in highs:
                if high_id in out.cells(high_dim):
                    out.add_incidence(low_dim, low_id, high_dim, high_id)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self._cells == other._cells and self._up == other._up

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{self.size(d)}x{d}-cells" for d in self.dimensions
        )
        return f"Grid({parts})"


def regular_grid_2d(nx: int, ny: int) -> Grid:
    """A structured 2-D grid of ``nx * ny`` quadrilateral 2-cells.

    0-cells are nodes ``(i, j)``; 1-cells are edges
    ``("h", i, j)`` / ``("v", i, j)``; 2-cells are quads ``(i, j)`` with
    ``0 <= i < nx`` and ``0 <= j < ny``.  All incidences are populated —
    the structure the CORIE estuary simulations bind data onto.
    """
    if nx < 1 or ny < 1:
        raise GridError("need nx >= 1 and ny >= 1")
    grid = Grid()
    for i in range(nx + 1):
        for j in range(ny + 1):
            grid.add_cell(0, (i, j))
    for i in range(nx):
        for j in range(ny + 1):
            grid.add_cell(1, ("h", i, j))
    for i in range(nx + 1):
        for j in range(ny):
            grid.add_cell(1, ("v", i, j))
    for i in range(nx):
        for j in range(ny):
            grid.add_cell(2, (i, j))
    # node -> edge incidence
    for i in range(nx):
        for j in range(ny + 1):
            grid.add_incidence(0, (i, j), 1, ("h", i, j))
            grid.add_incidence(0, (i + 1, j), 1, ("h", i, j))
    for i in range(nx + 1):
        for j in range(ny):
            grid.add_incidence(0, (i, j), 1, ("v", i, j))
            grid.add_incidence(0, (i, j + 1), 1, ("v", i, j))
    # node/edge -> quad incidence
    for i in range(nx):
        for j in range(ny):
            for corner in ((i, j), (i + 1, j), (i, j + 1), (i + 1, j + 1)):
                grid.add_incidence(0, corner, 2, (i, j))
            grid.add_incidence(1, ("h", i, j), 2, (i, j))
            grid.add_incidence(1, ("h", i, j + 1), 2, (i, j))
            grid.add_incidence(1, ("v", i, j), 2, (i, j))
            grid.add_incidence(1, ("v", i + 1, j), 2, (i, j))
    return grid
