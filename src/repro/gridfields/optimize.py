"""Algebraic optimization of gridfield plans: commuting restrict and regrid.

The paper highlights that "certain 'restriction' operations ... can commute
with the regrid operator, creating opportunities for optimization".  The
canonical case: a query regrids a fine source field onto a coarse target
and then restricts the *target* cells by a predicate on the target's own
geometry (not on the aggregated values).  Because the restriction does not
depend on the regridded data, it can be applied to the target *first*, and
only source cells assigned to surviving target cells need to be
aggregated — the gridfield analogue of relational predicate pushdown.

Both plans are implemented with shared cost accounting; equality of their
outputs is the correctness property the tests check, and the cost gap is
the AN-GF benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import GridError
from repro.gridfields.grid import CellId
from repro.gridfields.gridfield import GridField, OpCost


def regrid_then_restrict(
    source: GridField,
    target: GridField,
    source_dim: int,
    target_dim: int,
    assignment: Callable[[CellId], Optional[CellId]],
    attribute: str,
    predicate: Callable[[CellId, Dict[str, float]], bool],
    aggregate: str = "mean",
) -> Tuple[GridField, OpCost]:
    """The naive plan: aggregate everything, then filter target cells."""
    cost = OpCost()
    regridded = source.regrid(
        target,
        source_dim,
        target_dim,
        assignment,
        attribute,
        aggregate=aggregate,
        cost=cost,
    )
    restricted = regridded.restrict(target_dim, predicate, cost=cost)
    return restricted, cost


def restrict_then_regrid(
    source: GridField,
    target: GridField,
    source_dim: int,
    target_dim: int,
    assignment: Callable[[CellId], Optional[CellId]],
    attribute: str,
    predicate: Callable[[CellId, Dict[str, float]], bool],
    aggregate: str = "mean",
) -> Tuple[GridField, OpCost]:
    """The commuted plan: filter the target first, regrid only survivors.

    Valid when ``predicate`` depends only on the target cell and its
    *pre-existing* attributes (not on the attribute produced by the
    regrid) — the commutation precondition from the paper.
    """
    cost = OpCost()
    restricted_target = target.restrict(target_dim, predicate, cost=cost)
    surviving = restricted_target.grid.cells(target_dim)

    def pruned_assignment(cell_id: CellId) -> Optional[CellId]:
        assigned = assignment(cell_id)
        if assigned is None or assigned not in surviving:
            return None
        return assigned

    regridded = source.regrid(
        restricted_target,
        source_dim,
        target_dim,
        pruned_assignment,
        attribute,
        aggregate=aggregate,
        cost=cost,
    )
    return regridded, cost


def plans_agree(
    a: GridField, b: GridField, dim: int, attribute: str, tol: float = 1e-12
) -> bool:
    """Check that two plans produced identical attribute bindings."""
    cells_a = a.grid.cells(dim)
    cells_b = b.grid.cells(dim)
    if cells_a != cells_b:
        return False
    va = a.attribute(dim, attribute)
    vb = b.attribute(dim, attribute)
    for cell_id in cells_a:
        x, y = va[cell_id], vb[cell_id]
        if x != x and y != y:  # both NaN
            continue
        if abs(x - y) > tol:
            return False
    return True
