"""The gridfield algebra of Howe & Maier (Section 2.2 of the paper).

Grids with incidence relations (:mod:`repro.gridfields.grid`), data
bindings with restrict/regrid/merge operators
(:mod:`repro.gridfields.gridfield`), and the restrict-regrid commutation
rewrite (:mod:`repro.gridfields.optimize`).
"""

from repro.gridfields.grid import Grid, regular_grid_2d
from repro.gridfields.gridfield import AGGREGATES, GridField, OpCost
from repro.gridfields.optimize import (
    plans_agree,
    regrid_then_restrict,
    restrict_then_regrid,
)

__all__ = [
    "AGGREGATES",
    "Grid",
    "GridField",
    "OpCost",
    "plans_agree",
    "regrid_then_restrict",
    "regular_grid_2d",
    "restrict_then_regrid",
]
