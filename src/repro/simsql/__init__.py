"""SimSQL — database-valued Markov chains (Section 2.1 of the paper).

Extends MCDB with versioned, recursively defined stochastic tables so the
database itself evolves as a Markov chain ``D[0], D[1], ...``; chains run
sequentially (:mod:`repro.simsql.markov`) or on the MapReduce substrate
(:mod:`repro.simsql.mapreduce_exec`).
"""

from repro.simsql.mapreduce_exec import (
    run_grouped_interaction_on_cluster,
    run_transition_on_cluster,
)
from repro.simsql.markov import (
    DatabaseMarkovChain,
    TableTransition,
    row_wise_transition,
)
from repro.simsql.versioning import VersionStore

__all__ = [
    "DatabaseMarkovChain",
    "TableTransition",
    "VersionStore",
    "row_wise_transition",
    "run_grouped_interaction_on_cluster",
    "run_transition_on_cluster",
]
