"""Database-valued Markov chains (SimSQL, Section 2.1).

Where MCDB generates realizations of a *static* database-valued random
variable, SimSQL generates realizations of a database-valued Markov chain
``D[0], D[1], D[2], ...``: "the stochastic mechanism that generates a
realization of the i-th database state D[i] may explicitly depend on the
prior state D[i-1]".

A chain is specified by a set of :class:`TableTransition` objects — one per
stochastic table — each a function from the previous database state to the
table's next realization.  Transitions within a tick run in declaration
order and may read tables already realized *in the same tick* (SimSQL's
recursive definitions: A[i] feeds B[i] feeds A[i+1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.errors import SimulationError
from repro.simsql.versioning import VersionStore

#: A transition receives (previous-state database, rng) and returns the
#: next realization of one table.  The database passed in contains the
#: deterministic tables, every table from tick i-1, and any same-tick
#: tables realized by earlier transitions.
TransitionFn = Callable[[Database, np.random.Generator], Table]


@dataclass(frozen=True)
class TableTransition:
    """Transition rule for one stochastic table of the chain."""

    name: str
    transition: TransitionFn
    #: Builds the tick-0 realization; falls back to ``transition`` when
    #: ``None`` (with an initial database containing only deterministic
    #: tables).
    initial: Optional[TransitionFn] = None


class DatabaseMarkovChain:
    """A database-valued Markov chain simulator.

    Parameters
    ----------
    base:
        The deterministic database (shared, never copied).
    transitions:
        One :class:`TableTransition` per stochastic table, in the order
        they should be realized within each tick.
    retain:
        Version-retention window forwarded to :class:`VersionStore`.
    """

    def __init__(
        self,
        base: Database,
        transitions: Sequence[TableTransition],
        retain: Optional[int] = None,
    ) -> None:
        if not transitions:
            raise SimulationError("chain needs at least one transition")
        names = [t.name for t in transitions]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate transition names in {names}")
        self.base = base
        self.transitions = list(transitions)
        self.retain = retain

    def _state_database(
        self, store: VersionStore, tick: int, realized: Dict[str, Table]
    ) -> Database:
        """Assemble the database visible to a transition at ``tick``."""
        state = Database()
        for name in self.base.table_names():
            state.register(self.base.table(name))
        # Previous-tick realizations, under their plain names.
        if tick > 0:
            for transition in self.transitions:
                prev = store.get(transition.name, tick - 1)
                snapshot = prev.copy(transition.name)
                state.register(snapshot)
        # Same-tick tables realized so far, under `name__next`.
        for name, table in realized.items():
            snapshot = table.copy(f"{name}__next")
            state.register(snapshot, replace=True)
        return state

    def run(
        self,
        steps: int,
        rng: np.random.Generator,
        observer: Optional[Callable[[int, Database], None]] = None,
    ) -> VersionStore:
        """Simulate one sample path of ``steps + 1`` states (ticks 0..steps).

        ``observer(tick, state_db)`` is invoked after each tick with a
        database containing that tick's realizations — this is the hook
        used to run SQL queries against the evolving chain.
        """
        if steps < 0:
            raise SimulationError("steps must be >= 0")
        store = VersionStore(retain=self.retain)
        for tick in range(steps + 1):
            realized: Dict[str, Table] = {}
            for transition in self.transitions:
                state = self._state_database(store, tick, realized)
                if tick == 0 and transition.initial is not None:
                    table = transition.initial(state, rng)
                else:
                    table = transition.transition(state, rng)
                if table.name != transition.name:
                    table = table.copy(transition.name)
                realized[transition.name] = table
            for name, table in realized.items():
                store.put(name, tick, table)
            if observer is not None:
                tick_db = Database()
                for name in self.base.table_names():
                    tick_db.register(self.base.table(name))
                for name, table in realized.items():
                    tick_db.register(table.copy(name))
                observer(tick, tick_db)
        return store

    def monte_carlo(
        self,
        steps: int,
        n_chains: int,
        functional: Callable[[VersionStore], float],
        seed: int = 0,
    ) -> np.ndarray:
        """Run ``n_chains`` independent sample paths; apply ``functional``.

        Returns one functional value per chain — samples of the
        distribution of a path statistic (SimSQL's Monte Carlo use case).
        """
        if n_chains < 1:
            raise SimulationError("n_chains must be >= 1")
        out = np.empty(n_chains)
        for i in range(n_chains):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(i,))
            )
            store = self.run(steps, rng)
            out[i] = float(functional(store))
        return out


def row_wise_transition(
    source_table: str,
    update: Callable[[dict, Database, np.random.Generator], dict],
) -> TransitionFn:
    """Build a transition that maps each row of the prior realization.

    ``update(row, state_db, rng)`` returns the row's next-state dict.  This
    is the most common SimSQL pattern (each tuple evolves independently
    given the previous database state) and is exactly the shape that
    parallelizes embarrassingly on MapReduce — see
    :func:`repro.simsql.mapreduce_exec.run_transition_on_cluster`.
    """

    def transition(state: Database, rng: np.random.Generator) -> Table:
        source = state.table(source_table)
        rows = [update(dict(row), state, rng) for row in source]
        if not rows:
            raise SimulationError(
                f"row-wise transition over empty table {source_table!r}"
            )
        return Table.from_rows(source_table, rows)

    return transition
