"""Versioned storage for stochastic database tables.

SimSQL "allows both versioning and recursive definitions of stochastic
database tables": table ``A``'s realization at tick ``i`` may parametrize
table ``B`` at tick ``i``, which in turn parametrizes ``A`` at tick
``i + 1``.  The :class:`VersionStore` keeps the realized snapshots,
indexed by ``(table, version)``, with an optional retention window so long
chains do not hold every state in memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.table import Table
from repro.errors import SimulationError


class VersionStore:
    """Snapshot storage for database-valued Markov chains.

    Parameters
    ----------
    retain:
        How many most-recent versions of each table to keep; ``None``
        keeps everything (needed when a query inspects the full history).
    """

    def __init__(self, retain: Optional[int] = None) -> None:
        if retain is not None and retain < 1:
            raise SimulationError("retain must be >= 1 or None")
        self.retain = retain
        self._snapshots: Dict[str, Dict[int, Table]] = {}
        self._latest: Dict[str, int] = {}

    def put(self, name: str, version: int, table: Table) -> None:
        """Store the realization of ``name`` at ``version``."""
        if version < 0:
            raise SimulationError(f"version must be >= 0, got {version}")
        versions = self._snapshots.setdefault(name, {})
        if version in versions:
            raise SimulationError(
                f"version {version} of table {name!r} already stored"
            )
        versions[version] = table.copy(f"{name}@{version}")
        self._latest[name] = max(self._latest.get(name, -1), version)
        if self.retain is not None:
            cutoff = self._latest[name] - self.retain + 1
            for old in [v for v in versions if v < cutoff]:
                del versions[old]

    def get(self, name: str, version: int) -> Table:
        """Fetch the realization of ``name`` at ``version``."""
        try:
            return self._snapshots[name][version]
        except KeyError:
            available = sorted(self._snapshots.get(name, {}))
            raise SimulationError(
                f"no snapshot of {name!r} at version {version}; "
                f"available versions: {available}"
            ) from None

    def latest(self, name: str) -> Table:
        """Fetch the most recent realization of ``name``."""
        if name not in self._latest:
            raise SimulationError(f"no snapshots stored for {name!r}")
        return self.get(name, self._latest[name])

    def latest_version(self, name: str) -> int:
        """The most recent stored version number of ``name``."""
        if name not in self._latest:
            raise SimulationError(f"no snapshots stored for {name!r}")
        return self._latest[name]

    def versions(self, name: str) -> List[int]:
        """All retained version numbers of ``name``, ascending."""
        return sorted(self._snapshots.get(name, {}))

    def table_names(self) -> List[str]:
        """Names of all tables with at least one snapshot."""
        return sorted(self._snapshots)

    def total_rows(self) -> int:
        """Total rows currently retained (memory diagnostic)."""
        return sum(
            len(t)
            for versions in self._snapshots.values()
            for t in versions.values()
        )
